//! Polynomial chaos study of a single bonding wire: propagate the paper's
//! elongation uncertainty `δ ~ N(0.17, 0.048)` through the analytic fin
//! model with a 1D Wiener–Hermite expansion and compare against plain
//! Monte Carlo — exponential vs `1/√M` convergence on the same problem —
//! then fit an error-controlled [`Surrogate`] on the same QoI and check
//! its cross-validated error estimate against the true error.
//!
//! Run with `cargo run --release --example pce_study`.

use etherm::bondwire::analytic::FinModel;
use etherm::bondwire::BondWire;
use etherm::materials::library;
use etherm::package::paper_elongation_distribution;
use etherm::uq::special::normal_quantile;
use etherm::uq::{fit_projection_1d, Distribution, RunningStats, Surrogate, SurrogateOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Peak steady temperature of a 25.4 µm copper wire of length `l` carrying
/// 0.45 A between 300 K pads (the analytic baseline of DESIGN.md A8).
///
/// The nominal wire is built once; each evaluation only re-parameterizes
/// its length — the same compile-once/run-many discipline as the field
/// solver's `Session`, at analytic-model scale.
fn peak_temperature(nominal: &BondWire, l: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let mut fin = FinModel::new(nominal.with_length(l)?, 300.0, 300.0, 300.0, 25.0, 0.45);
    let (_, t_max) = fin.solve_self_consistent(1e-10, 200);
    Ok(t_max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nominal = BondWire::new("w", 1.3e-3, 25.4e-6, library::copper())?;
    let delta = paper_elongation_distribution();
    let (mu, sd) = (delta.mean(), delta.std_dev());
    let d_direct = 1.3e-3; // direct pad–chip distance (m)
    let length_of = |dlt: f64| d_direct / (1.0 - dlt.min(0.9));

    println!("QoI: peak fin temperature of one wire, L = d/(1−δ), δ ~ N({mu}, {sd})\n");

    // Reference: high-order PCE (converged to quadrature accuracy).
    let reference = fit_projection_1d(
        |xi| peak_temperature(&nominal, length_of(mu + sd * xi)).expect("fin solves"),
        9,
        24,
    )?;
    println!(
        "reference (degree 9, 24-point Gauss–Hermite): mean = {:.4} K, std = {:.4} K\n",
        reference.mean(),
        reference.std_dev()
    );

    println!("PCE spectral convergence (n_quad = degree + 3 evaluations):");
    println!("{:>7} {:>14} {:>14} {:>10}", "degree", "mean [K]", "std [K]", "evals");
    for degree in [1usize, 2, 3, 4, 5] {
        let model = fit_projection_1d(
            |xi| peak_temperature(&nominal, length_of(mu + sd * xi)).expect("fin solves"),
            degree,
            degree + 3,
        )?;
        println!(
            "{:>7} {:>14.6} {:>14.6} {:>10}",
            degree,
            model.mean(),
            model.std_dev(),
            degree + 3
        );
    }

    println!("\nMonte Carlo convergence on the same QoI:");
    println!("{:>7} {:>14} {:>14} {:>10}", "M", "mean [K]", "std [K]", "|Δmean|");
    let mut rng = StdRng::seed_from_u64(1);
    for m in [16usize, 64, 256, 1024] {
        let mut stats = RunningStats::new();
        for _ in 0..m {
            let xi = normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12));
            stats.push(peak_temperature(&nominal, length_of(mu + sd * xi))?);
        }
        println!(
            "{:>7} {:>14.6} {:>14.6} {:>10.2e}",
            m,
            stats.mean(),
            stats.sample_std(),
            (stats.mean() - reference.mean()).abs()
        );
    }

    // Surrogate fast path: a regression-fitted chaos with a held-out error
    // model. Serving decisions use `err(ξ)` only — the truth is evaluated
    // here purely to audit the estimate.
    let mut rng = StdRng::seed_from_u64(2);
    let design: Vec<Vec<f64>> = (0..48)
        .map(|_| vec![normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12))])
        .collect();
    let mut responses = Vec::with_capacity(design.len());
    for p in &design {
        responses.push(peak_temperature(&nominal, length_of(mu + sd * p[0]))?);
    }
    let opts = SurrogateOptions {
        degree: 3,
        ..SurrogateOptions::default()
    };
    let surrogate = Surrogate::fit(&design, &responses, 1, opts)?;
    println!(
        "\nsurrogate fast path: degree 3 fit on {} solves, cv error = {:.2e} K",
        surrogate.n_samples(),
        surrogate.cv_error()
    );
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>8}",
        "xi", "pred [K]", "err est [K]", "true err [K]", "served?"
    );
    let tolerance = 1.5 * surrogate.cv_error();
    for z in [-2.5, -1.0, 0.0, 1.0, 2.5, 4.0] {
        let (pred, err) = surrogate.predict_with_error(&[z]);
        let truth = peak_temperature(&nominal, length_of(mu + sd * z))?;
        println!(
            "{:>7.1} {:>14.4} {:>14.2e} {:>14.2e} {:>8}",
            z,
            pred,
            err,
            (pred - truth).abs(),
            if err <= tolerance { "yes" } else { "no" }
        );
    }
    println!(
        "inside the design the estimate tracks the held-out residuals; at ξ = 4\n\
         (outside every training sample) it inflates like the first untracked\n\
         order and the serving tier would fall back to the full model instead."
    );

    println!("\nA degree-3 chaos (6 solves) already matches the reference to ~µK, while");
    println!("MC still wanders by ~0.1 K after 1024 solves — the 'other methods' the");
    println!("paper alludes to in §IV-C pay off whenever the QoI is smooth in δ.");
    Ok(())
}
