//! Quickstart: build a tiny electrothermal model — two copper pads in epoxy
//! joined by one bonding wire — drive it with a DC voltage and watch the
//! wire heat up.
//!
//! Run with `cargo run --release --example quickstart`.

use etherm::bondwire::BondWire;
use etherm::core::{ElectrothermalModel, Simulator, SolverOptions};
use etherm::fit::boundary::ThermalBoundary;
use etherm::grid::{BoxRegion, CellPaint, GridBuilder, MaterialId};
use etherm::materials::{library, MaterialTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Geometry: a 2 × 0.5 × 0.25 mm epoxy block with two copper pads.
    let pad_a = BoxRegion::new((0.0, 0.0, 0.0), (0.5e-3, 0.5e-3, 0.25e-3));
    let pad_b = BoxRegion::new((1.5e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    let mold = BoxRegion::new((0.0, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    let grid = GridBuilder::new()
        .with_box(&mold)
        .with_box(&pad_a)
        .with_box(&pad_b)
        .with_target_spacing(0.125e-3)
        .build()?;
    println!("mesh: {} nodes", grid.n_nodes());

    // 2. Materials: epoxy background, copper pads.
    let mut paint = CellPaint::new(&grid, MaterialId(0));
    paint.paint(&grid, &pad_a, MaterialId(1));
    paint.paint(&grid, &pad_b, MaterialId(1));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    materials.add(library::copper());

    // 3. Model: one 25.4 µm copper wire bridging the pads' top inner edges.
    let mut model = ElectrothermalModel::new(grid, paint, materials)?;
    let wire = BondWire::new("w1", 1.2e-3, 25.4e-6, library::copper())?;
    model.add_wire(wire, (0.5e-3, 0.25e-3, 0.25e-3), (1.5e-3, 0.25e-3, 0.25e-3))?;

    // 4. Boundary conditions: ±20 mV PEC at the outer pad ends, convective
    //    cooling everywhere.
    let left: Vec<usize> = model
        .grid()
        .nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.5e-3, 0.25e-3));
    let right: Vec<usize> = model
        .grid()
        .nodes_in_box((2.0e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    model.set_electric_potential(&left, 20e-3);
    model.set_electric_potential(&right, -20e-3);
    model.set_thermal_boundary(ThermalBoundary::paper_default());

    // 5. Solve 50 s of the coupled transient with implicit Euler.
    let sim = Simulator::new(&model, SolverOptions::default())?;
    let solution = sim.run_transient(50.0, 50, &[])?;

    // 6. Inspect the wire temperature (the paper's Eq. 5 quantity).
    let series = solution.wire_series(0);
    println!("wire temperature over time:");
    for i in (0..=50).step_by(10) {
        println!("  t = {:4.1} s : {:6.2} K", solution.times[i], series[i]);
    }
    let (j, t_end) = solution.hottest_wire().expect("one wire");
    println!("hottest wire #{j} ends at {t_end:.2} K");
    println!(
        "dissipated wire power: {:.2} mW",
        solution.wire_powers[0][50] * 1e3
    );
    Ok(())
}
