//! Bonding-wire calculator: closed-form design estimates for wire
//! temperature and allowable current (the paper's introduction motivates
//! exactly this workflow — choose material and thickness).
//!
//! Run with `cargo run --release --example wire_calculator -- [current_A]`.

use etherm::bondwire::analytic::{allowable_current, preece_fusing_current, FinModel};
use etherm::bondwire::{BondWire, T_CRITICAL};
use etherm::materials::library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let current: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    println!("wire calculator @ I = {current} A, pads at 300 K, L = 1.55 mm\n");
    println!("material   d[um]   R[mOhm]   T_max[K]   I_allow[A]   I_preece[A]");
    for (name, material) in [
        ("copper", library::copper()),
        ("gold", library::gold()),
        ("aluminum", library::aluminum()),
    ] {
        for d_um in [15.0, 25.4, 38.0, 50.0] {
            let wire = BondWire::new(name, 1.55e-3, d_um * 1e-6, material.clone())?;
            let mut fin = FinModel::new(wire.clone(), 300.0, 300.0, 300.0, 0.0, current);
            let (_, t_max) = fin.solve_self_consistent(1e-9, 200);
            let i_allow = allowable_current(&wire, 300.0, 300.0, 0.0, T_CRITICAL, 20.0);
            let marker = if t_max > T_CRITICAL { "  <-- EXCEEDS T_crit!" } else { "" };
            println!(
                "{name:9} {d_um:6.1}   {:7.2}   {t_max:8.1}   {i_allow:10.3}   {:10.3}{marker}",
                wire.resistance(300.0) * 1e3,
                preece_fusing_current(d_um * 1e-6),
            );
        }
        println!();
    }

    // Show a full temperature profile for the paper's wire at the requested
    // current.
    let wire = BondWire::new("paper wire", 1.55e-3, 25.4e-6, library::copper())?;
    let mut fin = FinModel::new(wire, 300.0, 300.0, 300.0, 0.0, current);
    fin.solve_self_consistent(1e-9, 200);
    println!("temperature profile of the 25.4 um copper wire at {current} A:");
    for (x, t) in fin.profile(10) {
        let bar_len = ((t - 300.0) / 5.0).clamp(0.0, 60.0) as usize;
        println!("  x = {:5.3} mm  {:7.1} K  {}", x * 1e3, t, "#".repeat(bar_len));
    }
    Ok(())
}
