//! Degradation and lifetime analysis: combine the coupled transient with
//! the critical-temperature criterion and the Arrhenius damage model — the
//! paper's "future research" direction of more sophisticated degradation
//! modeling, on top of the same simulation stack.
//!
//! Run with `cargo run --release --example lifetime_analysis -- [voltage_mV]`.

use etherm::bondwire::degradation::{assess_against_critical, ArrheniusDamage};
use etherm::bondwire::{BondWire, T_CRITICAL};
use etherm::core::{ElectrothermalModel, Simulator, SolverOptions};
use etherm::fit::boundary::ThermalBoundary;
use etherm::grid::{BoxRegion, CellPaint, GridBuilder, MaterialId};
use etherm::materials::{library, MaterialTable};

fn build(v_mv: f64) -> Result<ElectrothermalModel, Box<dyn std::error::Error>> {
    let mold = BoxRegion::new((0.0, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    let pad_a = BoxRegion::new((0.0, 0.0, 0.0), (0.5e-3, 0.5e-3, 0.25e-3));
    let pad_b = BoxRegion::new((1.5e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    let grid = GridBuilder::new()
        .with_box(&mold)
        .with_box(&pad_a)
        .with_box(&pad_b)
        .with_target_spacing(0.15e-3)
        .build()?;
    let mut paint = CellPaint::new(&grid, MaterialId(0));
    paint.paint(&grid, &pad_a, MaterialId(1));
    paint.paint(&grid, &pad_b, MaterialId(1));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    materials.add(library::copper());
    let mut model = ElectrothermalModel::new(grid, paint, materials)?;
    let wire = BondWire::new("w", 1.2e-3, 25.4e-6, library::copper())?;
    model.add_wire(wire, (0.5e-3, 0.25e-3, 0.25e-3), (1.5e-3, 0.25e-3, 0.25e-3))?;
    let left = model.grid().nodes_in_box((0.0, 0.0, 0.0), (0.0, 0.5e-3, 0.25e-3));
    let right = model
        .grid()
        .nodes_in_box((2.0e-3, 0.0, 0.0), (2.0e-3, 0.5e-3, 0.25e-3));
    model.set_electric_potential(&left, v_mv * 1e-3 / 2.0);
    model.set_electric_potential(&right, -v_mv * 1e-3 / 2.0);
    model.set_thermal_boundary(ThermalBoundary::paper_default());
    Ok(model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v_mv: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(40.0);

    println!("lifetime analysis of a single-wire package at V = {v_mv} mV\n");
    println!("voltage  T_end    margin    crossing    damage/50s      est. lifetime");
    for scale in [0.5, 1.0, 1.5, 2.0, 2.5] {
        let model = build(v_mv * scale)?;
        let sim = Simulator::new(&model, SolverOptions::fast())?;
        let sol = sim.run_transient(50.0, 50, &[])?;
        let series = sol.wire_series(0);
        let assessment = assess_against_critical(&sol.times, series);
        let damage_model = ArrheniusDamage::default();
        let damage = damage_model.accumulate(&sol.times, series);
        let lifetime = damage_model
            .lifetime_at(*series.last().expect("series"))
            .map_or("inf".to_string(), |s| format!("{:.1} h", s / 3600.0));
        println!(
            "{:5.0}mV  {:6.1}K  {:+7.1}K  {:>9}  {:.3e}  {:>12}",
            v_mv * scale,
            assessment.peak_temperature,
            assessment.margin,
            assessment
                .first_crossing
                .map_or("never".to_string(), |t| format!("{t:.1} s")),
            damage,
            lifetime,
        );
    }
    println!("\ncritical temperature: {T_CRITICAL} K; damage = 1 means end of life;");
    println!("lifetime = steady-state Arrhenius extrapolation at the end temperature.");
    Ok(())
}
