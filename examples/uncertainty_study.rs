//! Uncertainty study on a custom two-wire package: propagate uncertain
//! wire elongations through the coupled solver and report expectation,
//! standard deviation and the Monte Carlo error (paper Eq. 6) — the
//! complete Fig. 7 workflow on a model small enough to run in seconds.
//!
//! The model is built and compiled *once*; a small batched training
//! campaign fits one error-controlled PCE surrogate per QoI
//! (`train_surrogates`), and the Monte Carlo sweep then runs through the
//! serving tier (`SurrogateWithFallback`): samples whose certified error
//! estimate is within tolerance are answered in microseconds, the rest
//! fall back to full transient solves through reusable solver `Session`s
//! — and are logged for active-learning refinement.
//!
//! Run with `cargo run --release --example uncertainty_study -- [samples]`.

use etherm::bondwire::BondWire;
use etherm::core::{
    CompiledModel, ElectrothermalModel, EnsembleOptions, FullSolve, QoiEvaluator, SolverOptions,
};
use etherm::grid::{BoxRegion, CellPaint, GridBuilder, MaterialId};
use etherm::materials::{library, MaterialTable};
use etherm::package::ElongationScenario;
use etherm::uq::dist::Distribution;
use etherm::uq::{draw_samples, McOptions, McResult, MonteCarloSampler, Normal};
use etherm::reliability::{train_surrogates, SurrogateTrainingPlan, SurrogateWithFallback};
use std::sync::Arc;

/// Direct bond-to-bond distances of the two wires (m).
const D1: f64 = 1.0e-3;
const D2: f64 = 1.3e-3;

fn build_model() -> Result<ElectrothermalModel, Box<dyn std::error::Error>> {
    let mold = BoxRegion::new((0.0, 0.0, 0.0), (3.0e-3, 1.0e-3, 0.3e-3));
    let chip = BoxRegion::new((1.2e-3, 0.2e-3, 0.0), (1.8e-3, 0.8e-3, 0.2e-3));
    let pad_a = BoxRegion::new((0.0, 0.2e-3, 0.0), (0.6e-3, 0.8e-3, 0.15e-3));
    let pad_b = BoxRegion::new((2.4e-3, 0.2e-3, 0.0), (3.0e-3, 0.8e-3, 0.15e-3));
    let grid = GridBuilder::new()
        .with_box(&mold)
        .with_box(&chip)
        .with_box(&pad_a)
        .with_box(&pad_b)
        .with_target_spacing(0.2e-3)
        .build()?;
    let mut paint = CellPaint::new(&grid, MaterialId(0));
    for b in [&chip, &pad_a, &pad_b] {
        paint.paint(&grid, b, MaterialId(1));
    }
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    materials.add(library::copper());
    let mut model = ElectrothermalModel::new(grid, paint, materials)?;
    // Nominal lengths at the mean elongation; samples override them per run.
    let w1 = BondWire::new("w1", D1 / (1.0 - 0.17), 25.4e-6, library::copper())?;
    let w2 = BondWire::new("w2", D2 / (1.0 - 0.17), 25.4e-6, library::copper())?;
    model.add_wire(w1, (1.2e-3, 0.5e-3, 0.2e-3), (0.6e-3, 0.5e-3, 0.15e-3))?;
    model.add_wire(w2, (1.8e-3, 0.5e-3, 0.2e-3), (2.4e-3, 0.5e-3, 0.15e-3))?;
    let left = model.grid().nodes_in_box((0.0, 0.2e-3, 0.0), (0.0, 0.8e-3, 0.15e-3));
    let right = model
        .grid()
        .nodes_in_box((3.0e-3, 0.2e-3, 0.0), (3.0e-3, 0.8e-3, 0.15e-3));
    model.set_electric_potential(&left, 20e-3);
    model.set_electric_potential(&right, -20e-3);
    Ok(model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(60);

    // Paper distribution for the relative elongation.
    let delta = Normal::new(0.17, 0.048)?;
    let dists: Vec<&dyn Distribution> = vec![&delta, &delta];
    let mut gen = MonteCarloSampler::new(42);
    let inputs = draw_samples(&mut gen, &dists, samples);

    // Compile once; the scenario maps each sample δ_j to L_j = d_j/(1−δ_j)
    // and reads the two end temperatures back.
    let compiled = Arc::new(CompiledModel::compile(build_model()?, SolverOptions::fast())?);
    let scenario = ElongationScenario::new(vec![0, 1], vec![D1, D2], 30.0, 30, |sol| {
        vec![
            *sol.wire_series(0).last().expect("series"),
            *sol.wire_series(1).last().expect("series"),
        ]
    });
    let options = EnsembleOptions::default();

    // Training campaign: a small seeded design through the batched engine,
    // one error-controlled surrogate per QoI.
    let marginals: Vec<Box<dyn Distribution>> = vec![
        Box::new(Normal::new(0.17, 0.048)?),
        Box::new(Normal::new(0.17, 0.048)?),
    ];
    let plan = SurrogateTrainingPlan::new(40, 7);
    let trained = train_surrogates(&compiled, &scenario, &marginals, &plan, &options)?;
    let cv = trained
        .surrogates
        .iter()
        .map(|s| s.cv_error())
        .fold(0.0f64, f64::max);
    let tolerance = (5.0 * cv).max(0.01);
    println!(
        "training: {} batched solves, worst cv error {:.2e} K -> serving tolerance {:.2e} K",
        plan.n_train, cv, tolerance
    );

    // Monte Carlo sweep through the serving tier: certified samples are
    // answered by the surrogates, the rest fall back to full transients.
    let full = FullSolve::new(&compiled, &scenario, 2, options);
    let mut evaluator = SurrogateWithFallback::new(full, trained.surrogates, marginals, tolerance)?;
    let outputs = evaluator.evaluate(&inputs)?;
    let result = McResult::from_ordered(inputs, outputs, McOptions::default());

    println!("\nuncertainty study: M = {samples} samples, delta ~ N(0.17, 0.048) per wire");
    for (j, stats) in result.outputs.iter().enumerate() {
        println!(
            "  wire {j}: E[T(30 s)] = {:.2} K, sigma = {:.3} K, error_MC = sigma/sqrt(M) = {:.3} K",
            stats.mean(),
            stats.sample_std(),
            stats.mc_error()
        );
    }
    let m0 = result.output(0).mean();
    let m1 = result.output(1).mean();
    println!(
        "\nboth wires share the package's thermal bath; the {} wire dissipates more power\n\
         (larger conductance at fixed voltage) and its bond region runs {:.2} K hotter/cooler.",
        if m0 > m1 { "shorter (w1)" } else { "longer (w2)" },
        (m0 - m1).abs()
    );
    println!(
        "surrogate fast path: {} served / {} full solves (max served error estimate {:.2e} K,\n\
         certified <= tolerance); {} fallback points logged for refinement.",
        evaluator.served(),
        evaluator.full_solves(),
        evaluator.max_served_error(),
        evaluator.pending_refinement()
    );
    let c = evaluator.counters();
    println!(
        "solver reuse: {} preconditioner rebuilds for {} solves across the whole campaign.",
        c.precond_rebuilds,
        c.electrical_solves + c.thermal_solves
    );
    Ok(())
}
