//! Electroquasistatic transient (paper §II-A's "straightforward"
//! generalization): switch a voltage onto a two-layer dielectric bar and
//! watch the interface charge relax from the capacitive divider to the
//! resistive divider with the Maxwell–Wagner time constant.
//!
//! Run with `cargo run --release --example eqs_transient`.

use etherm::fit::eqs::{charge_relaxation_time, EqsSolver, EPSILON_0};
use etherm::fit::DofMap;
use etherm::grid::{Axis, Grid3};
use etherm::report::{ChartOptions, LineChart};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1 mm bar: left half "wet epoxy" (leakier), right half standard epoxy.
    let n = 20;
    let grid = Grid3::new(
        Axis::uniform(0.0, 1e-3, n)?,
        Axis::uniform(0.0, 1e-4, 1)?,
        Axis::uniform(0.0, 1e-4, 1)?,
    );
    let (s1, e1) = (5e-6, 6.0 * EPSILON_0); // moisture-loaded epoxy
    let (s2, e2) = (1e-6, 4.0 * EPSILON_0); // paper Table I epoxy
    let mid = 0.5e-3;
    let sigma: Vec<f64> = (0..grid.n_cells())
        .map(|c| if grid.cell_center(c).0 < mid { s1 } else { s2 })
        .collect();
    let eps: Vec<f64> = (0..grid.n_cells())
        .map(|c| if grid.cell_center(c).0 < mid { e1 } else { e2 })
        .collect();
    let solver = EqsSolver::new(&grid, &sigma, &eps);

    println!(
        "layer relaxation times: τ₁ = {:.2e} s, τ₂ = {:.2e} s",
        charge_relaxation_time(e1, s1),
        charge_relaxation_time(e2, s2)
    );

    // Dirichlet: 1 V step across the bar at t = 0.
    let v = 1.0;
    let (nx, _, _) = grid.node_dims();
    let fixed: Vec<(usize, f64)> = (0..grid.n_nodes())
        .filter_map(|node| match grid.node_coords_of(node).0 {
            0 => Some((node, 0.0)),
            i if i == nx - 1 => Some((node, v)),
            _ => None,
        })
        .collect();
    let map = DofMap::new(grid.n_nodes(), &fixed);

    // Lumped analytic reference.
    let (g1, g2) = (s1 / mid, s2 / mid);
    let (c1, c2) = (e1 / mid, e2 / mid);
    let u0 = v * c2 / (c1 + c2);
    let u_inf = v * g2 / (g1 + g2);
    let tau = (c1 + c2) / (g1 + g2);
    println!("interface: u(0⁺) = {u0:.3} V (capacitive) → u(∞) = {u_inf:.3} V (resistive), τ = {tau:.2e} s\n");

    let interface = grid.nearest_node(mid, 0.0, 0.0);
    let dt = tau / 100.0;
    let mut phi = vec![0.0; grid.n_nodes()];
    let mut times = Vec::new();
    let mut us = Vec::new();
    let mut t = 0.0;
    for _ in 0..400 {
        let (next, report) = solver.step(&map, &phi, dt)?;
        assert!(report.converged);
        phi = next;
        t += dt;
        times.push(t / tau);
        us.push(phi[interface]);
    }

    let mut chart = LineChart::new(ChartOptions {
        x_label: "t/τ".into(),
        y_label: "interface potential (V)".into(),
        ..ChartOptions::default()
    });
    chart.add_series(&times, &us, '*');
    chart.add_threshold(u_inf, "u_inf");
    println!("{}", chart.render());

    let exact_end = u_inf + (u0 - u_inf) * (-t / tau).exp();
    println!(
        "after 4τ: FIT u = {:.5} V, analytic = {exact_end:.5} V (|err| = {:.1e} V)",
        us[us.len() - 1],
        (us[us.len() - 1] - exact_end).abs()
    );
    println!("The stationary-current model the paper uses is the t ≫ τ limit of this solver.");
    Ok(())
}
