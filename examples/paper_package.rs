//! The paper's full 28-pad / 12-wire package: build it, run one nominal
//! transient, and print the wire-temperature table plus the temperature
//! field at the end time — a one-command tour of the whole reproduction.
//!
//! Run with `cargo run --release --example paper_package`.

use etherm::core::export::VtkExporter;
use etherm::core::qoi::field_slice_at_z;
use etherm::core::{Simulator, SolverOptions};
use etherm::package::{build_model, BuildOptions, PackageGeometry};
use etherm::report::HeatMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Geometry calibrated so nominal wire lengths average Table II's 1.55 mm.
    let geometry = PackageGeometry::paper();
    println!(
        "package: {:.1} x {:.1} x {:.2} mm, {} pads, chip {:.2} mm half-width",
        geometry.mold_width * 1e3,
        geometry.mold_width * 1e3,
        geometry.mold_height * 1e3,
        geometry.n_pads(),
        geometry.chip_half_width * 1e3
    );

    // Fig. 7 preset = Table I/II values + the calibrated thermal environment.
    let mut options = BuildOptions::paper_fig7();
    options.target_spacing_xy = 0.42e-3; // MC production mesh
    options.target_spacing_z = 0.22e-3;
    let built = build_model(&geometry, &options)?;
    println!("mesh: {} nodes, {} wires\n", built.model.grid().n_nodes(), built.model.wires().len());

    let sim = Simulator::new(&built.model, SolverOptions::fast())?;
    let sol = sim.run_transient(50.0, 50, &[50.0])?;

    println!("wire temperatures (T_bw = X^T T, paper Eq. 5):");
    println!("  wire   L[mm]   T(10s)   T(30s)   T(50s)   P[mW]");
    for j in 0..12 {
        let s = sol.wire_series(j);
        println!(
            "  {:4}  {:6.3}  {:7.1}  {:7.1}  {:7.1}  {:6.1}",
            j,
            built.nominal_lengths[j] * 1e3,
            s[10],
            s[30],
            s[50],
            sol.wire_powers[j][50] * 1e3
        );
    }
    let (j, t) = sol.hottest_wire().expect("wires");
    println!("\nhottest wire: #{j} at {t:.1} K (critical: 523 K)");

    // Fig. 8-style field plot at the wire-bond plane.
    let (_, state) = &sol.snapshots[0];
    let (_, chip_hi) = geometry.chip_box();
    let slice = field_slice_at_z(built.model.grid(), state, chip_hi.2);
    println!("\ntemperature field at t = 50 s (wire-bond plane):");
    println!(
        "{}",
        HeatMap::new(slice.nx, slice.ny, slice.values.clone())?.render()
    );

    // Export the full 3D field for ParaView, into the gitignored bench
    // output directory rather than the repo root.
    let mut vtk = VtkExporter::new(built.model.grid(), "etherm paper package, t = 50 s");
    vtk.add_field("temperature", state)?;
    std::fs::create_dir_all("bench_out")?;
    let out = std::path::Path::new("bench_out/paper_package_t50.vtk");
    vtk.write_to(out)?;
    println!("wrote {} (open in ParaView/VisIt)", out.display());
    Ok(())
}
