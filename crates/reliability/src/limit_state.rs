//! The limit-state abstraction and the estimator interface.
//!
//! Every estimator in this crate works in the **standard-normal space**
//! `U = (u₁ … u_d) ~ N(0, I)`: the physical uncertain parameters are
//! reached through the per-marginal isoprobabilistic transform
//! `xᵢ = Fᵢ⁻¹(Φ(uᵢ))` (`etherm_uq::Distribution::from_std_normal`). A
//! [`LimitState`] evaluates the scalar response `Y(u)` for a batch of
//! points; **failure is `Y ≥ threshold`**, matching the degradation
//! criterion `max_t maxⱼ T_bw,j ≥ T_critical`.
//!
//! The batch interface is what lets the simulator-backed implementation
//! ([`crate::EnsembleLimitState`]) fan each batch out over worker sessions
//! while keeping results in sample order — estimators stay deterministic
//! for any worker count.

use crate::error::ReliabilityError;
use etherm_uq::special::normal_quantile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scalar limit-state response over the standard-normal space; failure is
/// `Y ≥ threshold`.
pub trait LimitState {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// Failure threshold on the response.
    fn threshold(&self) -> f64;

    /// Evaluates the responses for a batch of standard-normal points,
    /// returned in batch order. `NaN` responses are treated as "not failed"
    /// by the estimators (they compare with `≥`), but indicate a broken
    /// model and should be avoided.
    ///
    /// # Errors
    ///
    /// Implementation-defined (solver failures, invalid parameters).
    fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError>;

    /// Evaluates responses that may be **truncated at `exit`**: the
    /// implementation may stop an evaluation as soon as its response is
    /// known to reach `exit`, reporting any value `ỹ` with
    /// `exit ≤ ỹ ≤ y` for a true response `y ≥ exit`; responses below
    /// `exit` must be exact. Consumers that only compare against bounds
    /// `b ≤ exit` therefore get exact indicators for truncated responses,
    /// and must re-evaluate (via [`LimitState::evaluate`]) before comparing
    /// a truncated response against anything larger.
    ///
    /// The default forwards to [`LimitState::evaluate`] — no truncation,
    /// always sound.
    ///
    /// # Errors
    ///
    /// As for [`LimitState::evaluate`].
    fn evaluate_truncated(
        &mut self,
        points: &[Vec<f64>],
        exit: f64,
    ) -> Result<Vec<f64>, ReliabilityError> {
        let _ = exit;
        self.evaluate(points)
    }
}

/// Per-level diagnostics of an estimate. Plain Monte Carlo and importance
/// sampling report a single pseudo-level; subset simulation one entry per
/// threshold of its ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Threshold of this level (the final entry is the failure threshold).
    pub threshold: f64,
    /// Estimated conditional probability `P(Y ≥ threshold | previous)`.
    pub conditional_probability: f64,
    /// Accepted-transition fraction of the conditional-sampling chains
    /// (`NaN` for a direct-sampling level).
    pub acceptance_rate: f64,
    /// Au–Beck chain-correlation factor γ entering this level's CoV
    /// (`0` for a direct-sampling level).
    pub gamma: f64,
    /// Number of Markov chains (0 for a direct-sampling level).
    pub n_chains: usize,
    /// Samples of this level.
    pub n_samples: usize,
    /// `NaN` responses in this level's sample population — quarantined
    /// samples of an ensemble-backed limit state running under
    /// `FailurePolicy::Quarantine`. They count as "not failed".
    pub quarantined: usize,
}

/// A failure-probability estimate with its accuracy and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEstimate {
    /// Estimated failure probability `P(Y ≥ threshold)`.
    pub probability: f64,
    /// Coefficient of variation `δ = σ[p̂]/p̂` of the estimator
    /// (`∞` when no failure was observed).
    pub cov: f64,
    /// Limit-state evaluations spent (= transient solves for a
    /// simulator-backed state).
    pub n_evaluations: usize,
    /// Threshold ladder and per-level diagnostics.
    pub levels: Vec<LevelStats>,
    /// Total `NaN` responses over every evaluation of the run (quarantined
    /// samples, counted as "not failed"). A non-zero count means the
    /// estimate is biased low by at most `quarantined / n_evaluations` and
    /// the campaign should be inspected.
    pub quarantined: usize,
}

impl FailureEstimate {
    /// Standard error `σ[p̂] = p̂·δ`.
    pub fn std_error(&self) -> f64 {
        self.probability * self.cov
    }

    /// Whether two estimates agree within `k` combined standard errors
    /// (`|p₁ − p₂| ≤ k·√(σ₁² + σ₂²)`).
    pub fn agrees_with(&self, other: &FailureEstimate, k: f64) -> bool {
        let combined = (self.std_error().powi(2) + other.std_error().powi(2)).sqrt();
        (self.probability - other.probability).abs() <= k * combined
    }

    /// Plain-Monte-Carlo evaluations needed to reach this estimate's CoV at
    /// this probability: `N = (1 − p)/(p·δ²)` — the solve-budget yardstick
    /// of the efficiency gate.
    pub fn equivalent_mc_evaluations(&self) -> f64 {
        if self.probability <= 0.0 || !self.cov.is_finite() || self.cov <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 - self.probability) / (self.probability * self.cov * self.cov)
    }
}

/// A failure-probability estimator over a [`LimitState`].
pub trait FailureEstimator {
    /// Short name for reports ("subset-simulation", "monte-carlo", …).
    fn name(&self) -> &'static str;

    /// Runs the estimator. Deterministic: a fixed seed yields bit-identical
    /// results for any batch-evaluation parallelism.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures and invalid options.
    fn estimate(
        &self,
        limit_state: &mut dyn LimitState,
    ) -> Result<FailureEstimate, ReliabilityError>;
}

/// Seeded standard-normal stream: inversion sampling through the Acklam
/// quantile, so every estimator draws from exactly one deterministic,
/// platform-independent source.
#[derive(Debug)]
pub(crate) struct StdNormal {
    rng: StdRng,
}

impl StdNormal {
    pub(crate) fn new(seed: u64) -> Self {
        StdNormal {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One `N(0, 1)` variate.
    pub(crate) fn next(&mut self) -> f64 {
        normal_quantile(self.uniform())
    }

    /// One `U(0, 1)` variate, clamped away from the endpoints so quantile
    /// transforms stay finite.
    pub(crate) fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16)
    }

    /// Fills a fresh `d`-dimensional standard-normal point.
    pub(crate) fn point(&mut self, d: usize) -> Vec<f64> {
        (0..d).map(|_| self.next()).collect()
    }
}

/// SplitMix64-style mixing of (seed, level, chain) into independent
/// deterministic substreams — chain RNGs never depend on scheduling.
pub(crate) fn substream(seed: u64, level: u64, chain: u64) -> u64 {
    let mut z = seed
        ^ level.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ chain.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_normal_stream_is_deterministic_and_standard() {
        let mut a = StdNormal::new(7);
        let mut b = StdNormal::new(7);
        let xs: Vec<f64> = (0..5000).map(|_| a.next()).collect();
        let ys: Vec<f64> = (0..5000).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
        let p = a.point(3);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn substreams_differ() {
        let a = substream(1, 0, 0);
        assert_eq!(a, substream(1, 0, 0));
        assert_ne!(a, substream(1, 0, 1));
        assert_ne!(a, substream(1, 1, 0));
        assert_ne!(a, substream(2, 0, 0));
    }

    #[test]
    fn estimate_accessors() {
        let e = FailureEstimate {
            probability: 1e-3,
            cov: 0.2,
            n_evaluations: 1000,
            levels: vec![],
            quarantined: 0,
        };
        assert!((e.std_error() - 2e-4).abs() < 1e-18);
        // (1 - 1e-3)/(1e-3·0.04) ≈ 24 975.
        assert!((e.equivalent_mc_evaluations() - 24_975.0).abs() < 0.5);
        let f = FailureEstimate {
            probability: 1.1e-3,
            ..e.clone()
        };
        assert!(e.agrees_with(&f, 3.0));
        let g = FailureEstimate {
            probability: 1e-2,
            ..e.clone()
        };
        assert!(!e.agrees_with(&g, 3.0));
        let zero = FailureEstimate {
            probability: 0.0,
            cov: f64::INFINITY,
            n_evaluations: 10,
            levels: vec![],
            quarantined: 0,
        };
        assert_eq!(zero.equivalent_mc_evaluations(), f64::INFINITY);
    }
}
