//! Rare-event reliability engine: failure probabilities for the coupled
//! electrothermal package under uncertain wire geometry.
//!
//! The source paper frames bonding-wire degradation as a threshold
//! question — does `max_t maxⱼ T_bw,j(t)` reach `T_critical = 523 K`, and
//! with what probability under the measured elongation scatter (a 6σ
//! framing, i.e. failure probabilities far below what brute-force Monte
//! Carlo over full transients can resolve)? This crate answers it with a
//! dedicated estimator stack over the compile-once/run-many session
//! machinery of `etherm_core`:
//!
//! * [`LimitState`] / [`FailureEstimator`] — the estimator interface in
//!   standard-normal space (per-marginal isoprobabilistic transforms from
//!   `etherm_uq::Distribution::from_std_normal`),
//! * [`SubsetSimulation`] — Au–Beck subset simulation: adaptive threshold
//!   ladder, modified-Metropolis conditional chains, Au–Beck CoV with
//!   chain-correlation factors; seeded and bit-deterministic for any
//!   worker count,
//! * [`MonteCarloEstimator`] / [`ImportanceSamplingEstimator`] — the
//!   direct-sampling baselines behind the same trait,
//! * [`EnsembleLimitState`] — the simulator binding: batches fan out over
//!   `etherm_core::run_ensemble` worker sessions whose transients
//!   early-exit the moment the limit state is decided
//!   (`Session::run_transient_observed` + `ThresholdObserver`),
//! * [`find_critical_load`] — fusing-current search: bisection on the
//!   session drive scale for the largest load the package survives,
//!   cross-checkable against the Preece/Onderdonk rules in
//!   `etherm_bondwire::analytic`; [`find_critical_load_sampled`] sweeps it
//!   over a `Distribution`-valued degradation threshold for the fusing
//!   current as a random variable,
//! * [`train_surrogates`] / [`SurrogateWithFallback`] / [`QoiLimitState`]
//!   — the error-controlled surrogate fast path: per-QoI PCE surrogates
//!   fitted through the batched ensemble engine serve microsecond answers
//!   whenever their cross-validated error estimate is within tolerance,
//!   fall back to full transients otherwise (logging the points for
//!   active-learning refinement), and plug into any estimator through the
//!   [`LimitState`] adapter — full solves are reserved for near-threshold
//!   samples,
//! * [`LimitState::evaluate_truncated`] + `SubsetSimulation::intermediate_exit`
//!   — intermediate-threshold early exit: conditional-level transients may
//!   stop at a predicted next threshold, with ambiguous responses re-run
//!   exactly, so the ladder is unchanged bit-for-bit at a fraction of the
//!   step count.

#![forbid(unsafe_code)]

mod ensemble_state;
mod error;
mod fusing;
mod limit_state;
mod montecarlo;
mod subset;
mod surrogate;

pub use ensemble_state::EnsembleLimitState;
pub use error::ReliabilityError;
pub use fusing::{
    find_critical_load, find_critical_load_sampled, CriticalLoad, FusingSearchOptions,
    SampledCriticalLoad,
};
pub use limit_state::{FailureEstimate, FailureEstimator, LevelStats, LimitState};
pub use montecarlo::{ImportanceSamplingEstimator, MonteCarloEstimator};
pub use subset::SubsetSimulation;
pub use surrogate::{
    train_surrogates, QoiLimitState, SurrogateTrainingPlan, SurrogateWithFallback,
    TrainedSurrogate,
};
