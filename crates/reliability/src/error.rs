//! Error type of the reliability engine.

use etherm_core::CoreError;
use etherm_uq::UqError;
use std::fmt;

/// Errors from failure-probability estimation or the fusing-current search.
#[derive(Debug, Clone, PartialEq)]
pub enum ReliabilityError {
    /// Inconsistent estimator or search options.
    InvalidOptions(String),
    /// The underlying transient solver failed.
    Core(CoreError),
    /// A limit-state evaluation produced unusable output (wrong length,
    /// non-finite response where one was required).
    Evaluation(String),
    /// Subset simulation exhausted its level budget without reaching the
    /// failure threshold (the event is rarer than `p0^max_levels`).
    NotConverged(String),
    /// A surrogate fit or refit failed (degenerate design, bad options).
    Surrogate(UqError),
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            ReliabilityError::Core(e) => write!(f, "solver error: {e}"),
            ReliabilityError::Evaluation(msg) => write!(f, "evaluation error: {msg}"),
            ReliabilityError::NotConverged(msg) => write!(f, "not converged: {msg}"),
            ReliabilityError::Surrogate(e) => write!(f, "surrogate error: {e}"),
        }
    }
}

impl std::error::Error for ReliabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReliabilityError::Core(e) => Some(e),
            ReliabilityError::Surrogate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ReliabilityError {
    fn from(e: CoreError) -> Self {
        ReliabilityError::Core(e)
    }
}

impl From<UqError> for ReliabilityError {
    fn from(e: UqError) -> Self {
        ReliabilityError::Surrogate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ReliabilityError::InvalidOptions("p0".into());
        assert!(e.to_string().contains("p0"));
        assert!(std::error::Error::source(&e).is_none());
        let e = ReliabilityError::from(CoreError::InvalidModel("m".into()));
        assert!(e.to_string().contains('m'));
        assert!(std::error::Error::source(&e).is_some());
        let e = ReliabilityError::Evaluation("len".into());
        assert!(e.to_string().contains("len"));
        let e = ReliabilityError::NotConverged("levels".into());
        assert!(e.to_string().contains("levels"));
        let e = ReliabilityError::from(UqError::DegenerateDesign("rank".into()));
        assert!(e.to_string().contains("surrogate"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
