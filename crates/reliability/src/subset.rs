//! Subset simulation (Au & Beck 2001): rare-event probability estimation
//! by a ladder of adaptive intermediate thresholds.
//!
//! The failure probability factorizes over nested events
//! `P(Y ≥ b_m) = P(Y ≥ b₁) · Π P(Y ≥ b_{i+1} | Y ≥ b_i)`, with the
//! intermediate thresholds `b_i` chosen adaptively so every conditional
//! probability is ≈ `p0` (default 0.25). Level 0 is plain Monte Carlo;
//! each conditional level re-populates the failure domain with
//! **modified-Metropolis conditional-sampling** Markov chains started from
//! the previous level's seeds: each component moves by the correlated
//! proposal `ξ = ρ·u + √(1−ρ²)·z`, which leaves the N(0,1) marginal
//! exactly invariant (marginal acceptance ratio 1), and the whole
//! candidate is accepted iff its response stays above the current
//! threshold. A target probability of `1e-3` thus costs a handful of
//! levels × N evaluations instead of the ≫ 10⁵ plain MC draws the same
//! CoV would need.
//!
//! Determinism: level-0 draws come from one seeded stream; every chain owns
//! a [`substream`]-derived RNG keyed by `(seed, level, chain index)`, and
//! candidate batches are evaluated in chain order — the result is
//! bit-identical for a fixed seed regardless of how the batch evaluation is
//! parallelized (the ensemble engine merges in sample order).

use crate::error::ReliabilityError;
use crate::limit_state::{
    substream, FailureEstimate, FailureEstimator, LevelStats, LimitState, StdNormal,
};
use crate::montecarlo::{checked_evaluate, checked_evaluate_truncated};

/// Subset-simulation estimator.
#[derive(Debug, Clone)]
pub struct SubsetSimulation {
    /// Samples per level `N` (level 0 and each conditional level).
    pub n_per_level: usize,
    /// Target conditional probability per level (`0 < p0 < 1`, default
    /// 0.25 — short chains keep the Au–Beck γ small); `round(N·p0)`
    /// samples seed the next level's chains.
    pub p0: f64,
    /// RNG seed.
    pub seed: u64,
    /// Correlation ρ of the component-wise conditional-sampling proposal
    /// `ξ = ρ·u + √(1−ρ²)·z` (default 0.8). Closer to 1 = smaller steps:
    /// higher domain acceptance but slower mixing.
    pub proposal_correlation: f64,
    /// Level budget: the event must be reachable within `p0^max_levels`
    /// (default 12 ⇒ probabilities down to ~6e-8 at p0 = 0.25).
    pub max_levels: usize,
    /// Intermediate-threshold early exit (default off). When on, the
    /// candidates of a conditional level at threshold `b` are evaluated
    /// through [`LimitState::evaluate_truncated`] with an exit predictor
    /// `e = min(threshold, b + 3·(b − b_prev))`: a transient whose response
    /// already crossed `e` stops there instead of running to completion.
    /// Truncated responses are exact for every comparison up to `e`
    /// (`e ≥ b`, so chain acceptance is unaffected); before each ladder
    /// decision, stored responses whose truncation cap cannot decide the
    /// comparison are re-evaluated in full, so the estimator remains
    /// unbiased and bit-deterministic — only the solve cost changes.
    pub intermediate_exit: bool,
}

impl SubsetSimulation {
    /// Standard configuration: `p0 = 0.25`, `ρ = 0.8`, 12 levels.
    pub fn new(n_per_level: usize, seed: u64) -> Self {
        SubsetSimulation {
            n_per_level,
            p0: 0.25,
            seed,
            proposal_correlation: 0.8,
            max_levels: 12,
            intermediate_exit: false,
        }
    }

    fn validate(&self) -> Result<usize, ReliabilityError> {
        if self.n_per_level < 10 {
            return Err(ReliabilityError::InvalidOptions(format!(
                "n_per_level = {} too small (need ≥ 10)",
                self.n_per_level
            )));
        }
        if !(self.p0 > 0.0 && self.p0 < 1.0) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "p0 = {} outside (0, 1)",
                self.p0
            )));
        }
        if !(self.proposal_correlation > 0.0 && self.proposal_correlation < 1.0) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "proposal_correlation = {} outside (0, 1)",
                self.proposal_correlation
            )));
        }
        let nc = ((self.n_per_level as f64 * self.p0).round() as usize).max(1);
        if nc >= self.n_per_level {
            return Err(ReliabilityError::InvalidOptions(format!(
                "p0 = {} keeps every sample as a seed",
                self.p0
            )));
        }
        Ok(nc)
    }
}

/// One Markov chain's states at a conditional level, in transition order
/// (first entry = seed). `caps[i]` is the truncation cap of state `i`:
/// `∞` for an exact response, the exit threshold `e` for a response
/// reported by a truncated evaluation (then `ys[i] ≥ e` and the true
/// response is `≥ ys[i]`).
struct Chain {
    points: Vec<Vec<f64>>,
    ys: Vec<f64>,
    caps: Vec<f64>,
}

/// NaN-safe descending order on responses (NaN sorts last), ties broken by
/// index for determinism.
fn order_desc(ys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ys.len()).collect();
    order.sort_by(|&a, &b| {
        let (ya, yb) = (ys[a], ys[b]);
        yb.partial_cmp(&ya)
            .unwrap_or_else(|| ya.is_nan().cmp(&yb.is_nan()))
            .then(a.cmp(&b))
    });
    order
}

/// Au–Beck chain-correlation factor γ of the indicator `Y ≥ b` over the
/// level's chains: `γ = 2 Σ_{k≥1} (1 − k·Nc/N)·R(k)/R(0)` with `R(k)` the
/// lag-`k` autocovariance along chains. Clamped to `≥ 0`; 0 when the
/// indicator is degenerate.
fn au_beck_gamma(chains: &[Chain], b: f64) -> f64 {
    let n: usize = chains.iter().map(|c| c.ys.len()).sum();
    if n == 0 {
        return 0.0;
    }
    let p = chains
        .iter()
        .flat_map(|c| c.ys.iter())
        .filter(|&&y| y >= b)
        .count() as f64
        / n as f64;
    let r0 = p * (1.0 - p);
    if r0 <= 0.0 {
        return 0.0;
    }
    let n_chains = chains.len();
    let max_len = chains.iter().map(|c| c.ys.len()).max().unwrap_or(0);
    let mut gamma = 0.0;
    for k in 1..max_len {
        let mut sum = 0.0;
        let mut count = 0usize;
        for chain in chains {
            let len = chain.ys.len();
            for j in 0..len.saturating_sub(k) {
                let a = (chain.ys[j] >= b) as usize as f64;
                let c = (chain.ys[j + k] >= b) as usize as f64;
                sum += a * c;
                count += 1;
            }
        }
        if count == 0 {
            break;
        }
        let rk = sum / count as f64 - p * p;
        gamma += 2.0 * (1.0 - (k * n_chains) as f64 / n as f64) * rk / r0;
    }
    gamma.max(0.0)
}

impl FailureEstimator for SubsetSimulation {
    fn name(&self) -> &'static str {
        "subset-simulation"
    }

    fn estimate(
        &self,
        limit_state: &mut dyn LimitState,
    ) -> Result<FailureEstimate, ReliabilityError> {
        let nc = self.validate()?;
        let n = self.n_per_level;
        let d = limit_state.dim();
        let threshold = limit_state.threshold();

        // Level 0: plain Monte Carlo.
        let mut draw = StdNormal::new(substream(self.seed, 0, u64::MAX));
        let points: Vec<Vec<f64>> = (0..n).map(|_| draw.point(d)).collect();
        let ys = checked_evaluate(limit_state, &points)?;
        let mut n_evaluations = n;
        // NaN responses over all evaluations — quarantined samples of an
        // ensemble-backed limit state; `≥` comparisons count them as "not
        // failed" everywhere below.
        let mut total_quarantined = ys.iter().filter(|y| y.is_nan()).count();
        // Current population, as chains (level 0 = one "chain" per sample:
        // independent draws carry no serial correlation, γ = 0).
        let mut chains: Vec<Chain> = points
            .into_iter()
            .zip(ys)
            .map(|(p, y)| Chain {
                points: vec![p],
                ys: vec![y],
                caps: vec![f64::INFINITY],
            })
            .collect();

        let mut probability = 1.0;
        let mut cov_sq = 0.0;
        let mut levels = Vec::new();
        let mut prev_b: Option<f64> = None;

        for level in 0..=self.max_levels {
            // Fix-up pass (intermediate-exit runs only; a no-op otherwise):
            // a truncated response is exact for comparisons up to its cap,
            // but cannot decide this level's ladder if it ranks below the
            // decision bound — re-evaluate those states in full until the
            // ladder decision is exact. Every pass converts at least one
            // state to exact, so the loop terminates.
            let (flat_ys, order, b_candidate) = loop {
                let flat_ys: Vec<f64> =
                    chains.iter().flat_map(|c| c.ys.iter().copied()).collect();
                let order = order_desc(&flat_ys);
                let b_candidate = flat_ys[order[nc - 1]];
                let bound = b_candidate.min(threshold);
                // Rejected chain transitions repeat their state, so only
                // re-evaluate the first of each run of equal points and
                // propagate the exact value forward afterwards.
                let mut ambiguous: Vec<(usize, usize)> = Vec::new();
                for (ci, chain) in chains.iter().enumerate() {
                    for (pi, (&y, &cap)) in chain.ys.iter().zip(&chain.caps).enumerate() {
                        if cap.is_finite()
                            && y < bound
                            && (pi == 0 || chain.points[pi] != chain.points[pi - 1])
                        {
                            ambiguous.push((ci, pi));
                        }
                    }
                }
                if ambiguous.is_empty() {
                    break (flat_ys, order, b_candidate);
                }
                let pts: Vec<Vec<f64>> = ambiguous
                    .iter()
                    .map(|&(ci, pi)| chains[ci].points[pi].clone())
                    .collect();
                n_evaluations += pts.len();
                let ys_exact = checked_evaluate(limit_state, &pts)?;
                total_quarantined += ys_exact.iter().filter(|y| y.is_nan()).count();
                for (&(ci, pi), y) in ambiguous.iter().zip(ys_exact) {
                    chains[ci].ys[pi] = y;
                    chains[ci].caps[pi] = f64::INFINITY;
                }
                for chain in &mut chains {
                    for pi in 1..chain.ys.len() {
                        if chain.caps[pi].is_finite()
                            && chain.caps[pi - 1].is_infinite()
                            && chain.points[pi] == chain.points[pi - 1]
                        {
                            chain.ys[pi] = chain.ys[pi - 1];
                            chain.caps[pi] = f64::INFINITY;
                        }
                    }
                }
            };
            let level_quarantined = flat_ys.iter().filter(|y| y.is_nan()).count();
            let n_fail = flat_ys.iter().filter(|&&y| y >= threshold).count();
            let direct = level == 0;
            let gamma = if direct {
                0.0
            } else {
                au_beck_gamma(&chains, b_candidate.min(threshold))
            };

            if b_candidate >= threshold {
                // Final level: estimate P(Y ≥ threshold | current domain).
                // The nc-th largest response is at or above the threshold,
                // so n_fail ≥ nc ≥ 1 here — p_l can never be zero.
                let p_l = n_fail as f64 / n as f64;
                probability *= p_l;
                cov_sq += (1.0 - p_l) / (n as f64 * p_l) * (1.0 + gamma);
                levels.push(LevelStats {
                    threshold,
                    conditional_probability: p_l,
                    acceptance_rate: levels
                        .last()
                        .map(|l: &LevelStats| l.acceptance_rate)
                        .filter(|_| !direct)
                        .unwrap_or(f64::NAN),
                    gamma,
                    n_chains: if direct { 0 } else { chains.len() },
                    n_samples: n,
                    quarantined: level_quarantined,
                });
                return Ok(FailureEstimate {
                    probability,
                    cov: cov_sq.sqrt(),
                    n_evaluations,
                    levels,
                    quarantined: total_quarantined,
                });
            }
            if level == self.max_levels {
                return Err(ReliabilityError::NotConverged(format!(
                    "threshold {threshold} not reached after {} levels (ladder at {b_candidate})",
                    self.max_levels
                )));
            }

            // Intermediate threshold: exactly nc seeds survive.
            let b = b_candidate;
            let p_cond = nc as f64 / n as f64;
            cov_sq += (1.0 - p_cond) / (n as f64 * p_cond) * (1.0 + gamma);

            // Intermediate-exit predictor for this level's candidates: a
            // transient may stop once its response reaches `e`; `e ≥ b`
            // keeps chain acceptance exact, and the extrapolated gap leaves
            // headroom so few of the stored responses need a fix-up re-run
            // at the next ladder decision. The first conditional level has
            // no gap estimate yet and runs untruncated.
            let exit = if self.intermediate_exit {
                match prev_b {
                    Some(pb) if b > pb => (b + 3.0 * (b - pb)).min(threshold),
                    _ => threshold,
                }
            } else {
                threshold
            };
            let truncating = self.intermediate_exit && exit < threshold;

            // Seeds: the nc highest responses (deterministic tie-break).
            let flat: Vec<(&Vec<f64>, f64, f64)> = chains
                .iter()
                .flat_map(|c| {
                    c.points
                        .iter()
                        .zip(c.ys.iter().copied())
                        .zip(c.caps.iter().copied())
                        .map(|((p, y), cap)| (p, y, cap))
                })
                .collect();
            let seeds: Vec<(Vec<f64>, f64, f64)> = order[..nc]
                .iter()
                .map(|&i| (flat[i].0.clone(), flat[i].1, flat[i].2))
                .collect();

            // Chain lengths: distribute N states over nc chains.
            let base = n / nc;
            let extra = n % nc;
            let mut new_chains: Vec<Chain> = seeds
                .into_iter()
                .map(|(p, y, cap)| Chain {
                    points: vec![p],
                    ys: vec![y],
                    caps: vec![cap],
                })
                .collect();
            let target_len =
                |c: usize| -> usize { base + usize::from(c < extra) };
            let mut rngs: Vec<StdNormal> = (0..nc)
                .map(|c| StdNormal::new(substream(self.seed, level as u64 + 1, c as u64)))
                .collect();

            let mut proposed = 0usize;
            let mut accepted = 0usize;
            let max_len = base + usize::from(extra > 0);
            for step in 1..max_len {
                // Every still-growing chain proposes one candidate; both
                // passes below walk the chains in the same order, so batch
                // indices are sequential.
                let mut batch: Vec<Vec<f64>> = Vec::new();
                for (c, chain) in new_chains.iter().enumerate() {
                    if step >= target_len(c) {
                        continue;
                    }
                    proposed += 1;
                    let current = chain.points.last().expect("chain non-empty");
                    let rho = self.proposal_correlation;
                    let tangent = (1.0 - rho * rho).sqrt();
                    // Conditional-sampling proposal (the modern form of the
                    // modified-Metropolis component update): per component
                    // ξ = ρ·u + √(1−ρ²)·z leaves the N(0,1) marginal
                    // exactly invariant, so the marginal acceptance ratio
                    // is 1 and every component moves — the only rejection
                    // left is the limit-state domain check below, which
                    // keeps chain correlation (γ) far below the classic
                    // random-walk variant's.
                    let candidate: Vec<f64> = current
                        .iter()
                        .map(|&u| rho * u + tangent * rngs[c].next())
                        .collect();
                    batch.push(candidate);
                }
                let ys_cand = if batch.is_empty() {
                    Vec::new()
                } else {
                    n_evaluations += batch.len();
                    if truncating {
                        checked_evaluate_truncated(limit_state, &batch, exit)?
                    } else {
                        checked_evaluate(limit_state, &batch)?
                    }
                };
                total_quarantined += ys_cand.iter().filter(|y| y.is_nan()).count();
                let mut bi = 0usize;
                for (c, chain) in new_chains.iter_mut().enumerate() {
                    if step >= target_len(c) {
                        continue;
                    }
                    if ys_cand[bi] >= b {
                        chain.points.push(batch[bi].clone());
                        chain.ys.push(ys_cand[bi]);
                        // A truncated evaluation reports exactly when the
                        // response reached `exit`; below that it is exact.
                        chain.caps.push(if truncating && ys_cand[bi] >= exit {
                            exit
                        } else {
                            f64::INFINITY
                        });
                        accepted += 1;
                    } else {
                        // Domain-rejected: the chain repeats its state.
                        chain.points.push(chain.points.last().unwrap().clone());
                        chain.ys.push(*chain.ys.last().unwrap());
                        chain.caps.push(*chain.caps.last().unwrap());
                    }
                    bi += 1;
                }
                debug_assert_eq!(bi, ys_cand.len());
            }
            debug_assert_eq!(
                new_chains.iter().map(|c| c.ys.len()).sum::<usize>(),
                n,
                "conditional level must re-populate exactly N samples"
            );
            levels.push(LevelStats {
                threshold: b,
                conditional_probability: p_cond,
                acceptance_rate: if proposed > 0 {
                    accepted as f64 / proposed as f64
                } else {
                    f64::NAN
                },
                gamma,
                n_chains: nc,
                n_samples: n,
                quarantined: level_quarantined,
            });
            probability *= p_cond;
            chains = new_chains;
            prev_b = Some(b);
        }
        unreachable!("loop returns or errors within max_levels + 1 iterations");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_uq::special::normal_cdf;

    /// `Y(u) = Σ uᵢ/√d`: exactly standard normal, `P(Y ≥ β) = Φ(−β)`.
    struct LinearState {
        d: usize,
        beta: f64,
        evaluations: usize,
    }

    impl LimitState for LinearState {
        fn dim(&self) -> usize {
            self.d
        }
        fn threshold(&self) -> f64 {
            self.beta
        }
        fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
            self.evaluations += points.len();
            Ok(points
                .iter()
                .map(|u| u.iter().sum::<f64>() / (self.d as f64).sqrt())
                .collect())
        }
    }

    fn exact_p(beta: f64) -> f64 {
        normal_cdf(-beta)
    }

    #[test]
    fn recovers_known_tail_probability_in_1d() {
        // β = 3 → p = 1.35e-3: far beyond what N = 1000 plain MC could see,
        // routine for 3–4 subset levels.
        let mut ls = LinearState {
            d: 1,
            beta: 3.0,
            evaluations: 0,
        };
        let ss = SubsetSimulation::new(1000, 42);
        let est = ss.estimate(&mut ls).unwrap();
        let p = exact_p(3.0);
        assert!(est.cov > 0.0 && est.cov < 0.6, "cov = {}", est.cov);
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
        assert!(est.levels.len() >= 3);
        assert_eq!(est.n_evaluations, ls.evaluations);
        // Ladder is increasing and ends at the threshold.
        for w in est.levels.windows(2) {
            assert!(w[1].threshold > w[0].threshold);
        }
        assert_eq!(est.levels.last().unwrap().threshold, 3.0);
        // Conditional levels report healthy chains.
        for l in &est.levels[1..est.levels.len() - 1] {
            assert!(l.acceptance_rate > 0.1 && l.acceptance_rate < 0.9);
            assert!(l.n_chains > 0);
        }
        // Far cheaper than the MC reference at equal CoV.
        assert!(est.equivalent_mc_evaluations() > 5.0 * est.n_evaluations as f64);
    }

    #[test]
    fn recovers_known_tail_probability_in_12d() {
        // The paper's dimensionality (12 iid elongations).
        let mut ls = LinearState {
            d: 12,
            beta: 2.7,
            evaluations: 0,
        };
        let ss = SubsetSimulation::new(1200, 7);
        let est = ss.estimate(&mut ls).unwrap();
        let p = exact_p(2.7);
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
    }

    #[test]
    fn bit_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut ls = LinearState {
                d: 3,
                beta: 2.5,
                evaluations: 0,
            };
            SubsetSimulation::new(300, seed).estimate(&mut ls).unwrap()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must be bit-identical");
        let c = run(12);
        assert_ne!(a.probability, c.probability);
    }

    #[test]
    fn non_rare_event_finishes_at_level_zero() {
        let mut ls = LinearState {
            d: 2,
            beta: 0.5, // p ≈ 0.31
            evaluations: 0,
        };
        let est = SubsetSimulation::new(500, 3).estimate(&mut ls).unwrap();
        assert_eq!(est.levels.len(), 1);
        assert_eq!(est.n_evaluations, 500);
        let p = exact_p(0.5);
        assert!((est.probability - p).abs() < 3.0 * p * est.cov);
        assert_eq!(est.levels[0].gamma, 0.0);
        assert!(est.levels[0].acceptance_rate.is_nan());
    }

    #[test]
    fn level_budget_exhaustion_is_reported() {
        let mut ls = LinearState {
            d: 1,
            beta: 40.0, // p ~ 1e-350: unreachable
            evaluations: 0,
        };
        let ss = SubsetSimulation {
            max_levels: 3,
            ..SubsetSimulation::new(100, 5)
        };
        match ss.estimate(&mut ls) {
            Err(ReliabilityError::NotConverged(msg)) => {
                assert!(msg.contains("levels"), "{msg}")
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_options() {
        let mut ls = LinearState {
            d: 1,
            beta: 2.0,
            evaluations: 0,
        };
        for ss in [
            SubsetSimulation::new(5, 1),
            SubsetSimulation {
                p0: 1.5,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                p0: 0.999,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                proposal_correlation: 0.0,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                proposal_correlation: 1.0,
                ..SubsetSimulation::new(100, 1)
            },
        ] {
            assert!(matches!(
                ss.estimate(&mut ls),
                Err(ReliabilityError::InvalidOptions(_))
            ));
        }
    }

    /// Wraps a limit state with honest truncation semantics: a truncated
    /// evaluation reports `exit + 0.01·(y − exit)` for `y ≥ exit` (in
    /// `[exit, y]`, order-preserving, tie-free) and the exact value below.
    /// Counts how much work each path did.
    struct TruncatingState {
        inner: LinearState,
        scale: f64,
        truncated_values: usize,
        seen_truncated_call: bool,
        rerun_samples: usize,
    }

    impl TruncatingState {
        fn new(d: usize, beta: f64, scale: f64) -> Self {
            TruncatingState {
                inner: LinearState {
                    d,
                    beta,
                    evaluations: 0,
                },
                scale,
                truncated_values: 0,
                seen_truncated_call: false,
                rerun_samples: 0,
            }
        }
    }

    impl LimitState for TruncatingState {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn threshold(&self) -> f64 {
            (self.scale * self.inner.threshold()).exp()
        }
        fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
            // After the first truncated call, plain evaluations can only be
            // fix-up re-runs (candidates switch to the truncated path from
            // the second conditional level on).
            if self.seen_truncated_call {
                self.rerun_samples += points.len();
            }
            let ys = self.inner.evaluate(points)?;
            Ok(ys.iter().map(|y| (self.scale * y).exp()).collect())
        }
        fn evaluate_truncated(
            &mut self,
            points: &[Vec<f64>],
            exit: f64,
        ) -> Result<Vec<f64>, ReliabilityError> {
            self.seen_truncated_call = true;
            let ys = self.inner.evaluate(points)?;
            Ok(ys
                .iter()
                .map(|y| {
                    let y = (self.scale * y).exp();
                    if y >= exit {
                        self.truncated_values += 1;
                        exit + 0.01 * (y - exit)
                    } else {
                        y
                    }
                })
                .collect())
        }
    }

    #[test]
    fn intermediate_exit_estimate_stays_unbiased() {
        // Y = exp(u/√d · scale): exact p = Φ(−β). Mild growth, so the
        // 3-gap predictor mostly holds and truncation is exercised heavily.
        let beta = 2.8;
        let p = exact_p(beta);
        let mut plain = TruncatingState::new(2, beta, 1.0);
        let ss = SubsetSimulation::new(900, 21);
        let reference = ss.estimate(&mut plain).unwrap();
        assert_eq!(plain.truncated_values, 0, "flag off must never truncate");

        let mut trunc = TruncatingState::new(2, beta, 1.0);
        let ss_exit = SubsetSimulation {
            intermediate_exit: true,
            ..SubsetSimulation::new(900, 21)
        };
        let est = ss_exit.estimate(&mut trunc).unwrap();
        assert!(trunc.truncated_values > 0, "truncated path never used");
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
        assert!(est.agrees_with(&reference, 3.0));
        // Re-runs (if any) are billed as evaluations.
        assert_eq!(
            est.n_evaluations,
            trunc.inner.evaluations,
            "every solve must be billed"
        );
    }

    #[test]
    fn intermediate_exit_rerun_path_triggers_and_stays_sound() {
        // Y = exp(6·u): the ladder accelerates multiplicatively, the
        // predictor undershoots the next threshold, and stored truncated
        // responses must be re-evaluated before the ladder decision.
        let beta = 2.5;
        let p = exact_p(beta);
        let mut trunc = TruncatingState::new(1, beta, 6.0);
        let ss = SubsetSimulation {
            intermediate_exit: true,
            ..SubsetSimulation::new(600, 9)
        };
        let est = ss.estimate(&mut trunc).unwrap();
        assert!(trunc.truncated_values > 0);
        assert!(trunc.rerun_samples > 0, "fix-up re-run path never triggered");
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
        assert_eq!(est.n_evaluations, trunc.inner.evaluations);
    }

    #[test]
    fn intermediate_exit_is_bit_deterministic() {
        let run = || {
            let mut ls = TruncatingState::new(2, 2.6, 1.0);
            let ss = SubsetSimulation {
                intermediate_exit: true,
                ..SubsetSimulation::new(400, 33)
            };
            ss.estimate(&mut ls).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn order_desc_is_nan_safe_and_stable() {
        let ys = [1.0, f64::NAN, 3.0, 1.0, 2.0];
        let order = order_desc(&ys);
        assert_eq!(order, vec![2, 4, 0, 3, 1]);
    }
}
