//! Subset simulation (Au & Beck 2001): rare-event probability estimation
//! by a ladder of adaptive intermediate thresholds.
//!
//! The failure probability factorizes over nested events
//! `P(Y ≥ b_m) = P(Y ≥ b₁) · Π P(Y ≥ b_{i+1} | Y ≥ b_i)`, with the
//! intermediate thresholds `b_i` chosen adaptively so every conditional
//! probability is ≈ `p0` (default 0.25). Level 0 is plain Monte Carlo;
//! each conditional level re-populates the failure domain with
//! **modified-Metropolis conditional-sampling** Markov chains started from
//! the previous level's seeds: each component moves by the correlated
//! proposal `ξ = ρ·u + √(1−ρ²)·z`, which leaves the N(0,1) marginal
//! exactly invariant (marginal acceptance ratio 1), and the whole
//! candidate is accepted iff its response stays above the current
//! threshold. A target probability of `1e-3` thus costs a handful of
//! levels × N evaluations instead of the ≫ 10⁵ plain MC draws the same
//! CoV would need.
//!
//! Determinism: level-0 draws come from one seeded stream; every chain owns
//! a [`substream`]-derived RNG keyed by `(seed, level, chain index)`, and
//! candidate batches are evaluated in chain order — the result is
//! bit-identical for a fixed seed regardless of how the batch evaluation is
//! parallelized (the ensemble engine merges in sample order).

use crate::error::ReliabilityError;
use crate::limit_state::{
    substream, FailureEstimate, FailureEstimator, LevelStats, LimitState, StdNormal,
};
use crate::montecarlo::checked_evaluate;

/// Subset-simulation estimator.
#[derive(Debug, Clone)]
pub struct SubsetSimulation {
    /// Samples per level `N` (level 0 and each conditional level).
    pub n_per_level: usize,
    /// Target conditional probability per level (`0 < p0 < 1`, default
    /// 0.25 — short chains keep the Au–Beck γ small); `round(N·p0)`
    /// samples seed the next level's chains.
    pub p0: f64,
    /// RNG seed.
    pub seed: u64,
    /// Correlation ρ of the component-wise conditional-sampling proposal
    /// `ξ = ρ·u + √(1−ρ²)·z` (default 0.8). Closer to 1 = smaller steps:
    /// higher domain acceptance but slower mixing.
    pub proposal_correlation: f64,
    /// Level budget: the event must be reachable within `p0^max_levels`
    /// (default 12 ⇒ probabilities down to ~6e-8 at p0 = 0.25).
    pub max_levels: usize,
}

impl SubsetSimulation {
    /// Standard configuration: `p0 = 0.25`, `ρ = 0.8`, 12 levels.
    pub fn new(n_per_level: usize, seed: u64) -> Self {
        SubsetSimulation {
            n_per_level,
            p0: 0.25,
            seed,
            proposal_correlation: 0.8,
            max_levels: 12,
        }
    }

    fn validate(&self) -> Result<usize, ReliabilityError> {
        if self.n_per_level < 10 {
            return Err(ReliabilityError::InvalidOptions(format!(
                "n_per_level = {} too small (need ≥ 10)",
                self.n_per_level
            )));
        }
        if !(self.p0 > 0.0 && self.p0 < 1.0) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "p0 = {} outside (0, 1)",
                self.p0
            )));
        }
        if !(self.proposal_correlation > 0.0 && self.proposal_correlation < 1.0) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "proposal_correlation = {} outside (0, 1)",
                self.proposal_correlation
            )));
        }
        let nc = ((self.n_per_level as f64 * self.p0).round() as usize).max(1);
        if nc >= self.n_per_level {
            return Err(ReliabilityError::InvalidOptions(format!(
                "p0 = {} keeps every sample as a seed",
                self.p0
            )));
        }
        Ok(nc)
    }
}

/// One Markov chain's states at a conditional level, in transition order
/// (first entry = seed).
struct Chain {
    points: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

/// NaN-safe descending order on responses (NaN sorts last), ties broken by
/// index for determinism.
fn order_desc(ys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ys.len()).collect();
    order.sort_by(|&a, &b| {
        let (ya, yb) = (ys[a], ys[b]);
        yb.partial_cmp(&ya)
            .unwrap_or_else(|| ya.is_nan().cmp(&yb.is_nan()))
            .then(a.cmp(&b))
    });
    order
}

/// Au–Beck chain-correlation factor γ of the indicator `Y ≥ b` over the
/// level's chains: `γ = 2 Σ_{k≥1} (1 − k·Nc/N)·R(k)/R(0)` with `R(k)` the
/// lag-`k` autocovariance along chains. Clamped to `≥ 0`; 0 when the
/// indicator is degenerate.
fn au_beck_gamma(chains: &[Chain], b: f64) -> f64 {
    let n: usize = chains.iter().map(|c| c.ys.len()).sum();
    if n == 0 {
        return 0.0;
    }
    let p = chains
        .iter()
        .flat_map(|c| c.ys.iter())
        .filter(|&&y| y >= b)
        .count() as f64
        / n as f64;
    let r0 = p * (1.0 - p);
    if r0 <= 0.0 {
        return 0.0;
    }
    let n_chains = chains.len();
    let max_len = chains.iter().map(|c| c.ys.len()).max().unwrap_or(0);
    let mut gamma = 0.0;
    for k in 1..max_len {
        let mut sum = 0.0;
        let mut count = 0usize;
        for chain in chains {
            let len = chain.ys.len();
            for j in 0..len.saturating_sub(k) {
                let a = (chain.ys[j] >= b) as usize as f64;
                let c = (chain.ys[j + k] >= b) as usize as f64;
                sum += a * c;
                count += 1;
            }
        }
        if count == 0 {
            break;
        }
        let rk = sum / count as f64 - p * p;
        gamma += 2.0 * (1.0 - (k * n_chains) as f64 / n as f64) * rk / r0;
    }
    gamma.max(0.0)
}

impl FailureEstimator for SubsetSimulation {
    fn name(&self) -> &'static str {
        "subset-simulation"
    }

    fn estimate(
        &self,
        limit_state: &mut dyn LimitState,
    ) -> Result<FailureEstimate, ReliabilityError> {
        let nc = self.validate()?;
        let n = self.n_per_level;
        let d = limit_state.dim();
        let threshold = limit_state.threshold();

        // Level 0: plain Monte Carlo.
        let mut draw = StdNormal::new(substream(self.seed, 0, u64::MAX));
        let points: Vec<Vec<f64>> = (0..n).map(|_| draw.point(d)).collect();
        let ys = checked_evaluate(limit_state, &points)?;
        let mut n_evaluations = n;
        // NaN responses over all evaluations — quarantined samples of an
        // ensemble-backed limit state; `≥` comparisons count them as "not
        // failed" everywhere below.
        let mut total_quarantined = ys.iter().filter(|y| y.is_nan()).count();
        // Current population, as chains (level 0 = one "chain" per sample:
        // independent draws carry no serial correlation, γ = 0).
        let mut chains: Vec<Chain> = points
            .into_iter()
            .zip(ys)
            .map(|(p, y)| Chain {
                points: vec![p],
                ys: vec![y],
            })
            .collect();

        let mut probability = 1.0;
        let mut cov_sq = 0.0;
        let mut levels = Vec::new();

        for level in 0..=self.max_levels {
            let flat_ys: Vec<f64> = chains.iter().flat_map(|c| c.ys.iter().copied()).collect();
            let level_quarantined = flat_ys.iter().filter(|y| y.is_nan()).count();
            let order = order_desc(&flat_ys);
            let n_fail = flat_ys.iter().filter(|&&y| y >= threshold).count();
            let b_candidate = flat_ys[order[nc - 1]];
            let direct = level == 0;
            let gamma = if direct {
                0.0
            } else {
                au_beck_gamma(&chains, b_candidate.min(threshold))
            };

            if b_candidate >= threshold {
                // Final level: estimate P(Y ≥ threshold | current domain).
                // The nc-th largest response is at or above the threshold,
                // so n_fail ≥ nc ≥ 1 here — p_l can never be zero.
                let p_l = n_fail as f64 / n as f64;
                probability *= p_l;
                cov_sq += (1.0 - p_l) / (n as f64 * p_l) * (1.0 + gamma);
                levels.push(LevelStats {
                    threshold,
                    conditional_probability: p_l,
                    acceptance_rate: levels
                        .last()
                        .map(|l: &LevelStats| l.acceptance_rate)
                        .filter(|_| !direct)
                        .unwrap_or(f64::NAN),
                    gamma,
                    n_chains: if direct { 0 } else { chains.len() },
                    n_samples: n,
                    quarantined: level_quarantined,
                });
                return Ok(FailureEstimate {
                    probability,
                    cov: cov_sq.sqrt(),
                    n_evaluations,
                    levels,
                    quarantined: total_quarantined,
                });
            }
            if level == self.max_levels {
                return Err(ReliabilityError::NotConverged(format!(
                    "threshold {threshold} not reached after {} levels (ladder at {b_candidate})",
                    self.max_levels
                )));
            }

            // Intermediate threshold: exactly nc seeds survive.
            let b = b_candidate;
            let p_cond = nc as f64 / n as f64;
            cov_sq += (1.0 - p_cond) / (n as f64 * p_cond) * (1.0 + gamma);

            // Seeds: the nc highest responses (deterministic tie-break).
            let flat: Vec<(&Vec<f64>, f64)> = chains
                .iter()
                .flat_map(|c| c.points.iter().zip(c.ys.iter().copied()))
                .collect();
            let seeds: Vec<(Vec<f64>, f64)> = order[..nc]
                .iter()
                .map(|&i| (flat[i].0.clone(), flat[i].1))
                .collect();

            // Chain lengths: distribute N states over nc chains.
            let base = n / nc;
            let extra = n % nc;
            let mut new_chains: Vec<Chain> = seeds
                .into_iter()
                .map(|(p, y)| Chain {
                    points: vec![p],
                    ys: vec![y],
                })
                .collect();
            let target_len =
                |c: usize| -> usize { base + usize::from(c < extra) };
            let mut rngs: Vec<StdNormal> = (0..nc)
                .map(|c| StdNormal::new(substream(self.seed, level as u64 + 1, c as u64)))
                .collect();

            let mut proposed = 0usize;
            let mut accepted = 0usize;
            let max_len = base + usize::from(extra > 0);
            for step in 1..max_len {
                // Every still-growing chain proposes one candidate; both
                // passes below walk the chains in the same order, so batch
                // indices are sequential.
                let mut batch: Vec<Vec<f64>> = Vec::new();
                for (c, chain) in new_chains.iter().enumerate() {
                    if step >= target_len(c) {
                        continue;
                    }
                    proposed += 1;
                    let current = chain.points.last().expect("chain non-empty");
                    let rho = self.proposal_correlation;
                    let tangent = (1.0 - rho * rho).sqrt();
                    // Conditional-sampling proposal (the modern form of the
                    // modified-Metropolis component update): per component
                    // ξ = ρ·u + √(1−ρ²)·z leaves the N(0,1) marginal
                    // exactly invariant, so the marginal acceptance ratio
                    // is 1 and every component moves — the only rejection
                    // left is the limit-state domain check below, which
                    // keeps chain correlation (γ) far below the classic
                    // random-walk variant's.
                    let candidate: Vec<f64> = current
                        .iter()
                        .map(|&u| rho * u + tangent * rngs[c].next())
                        .collect();
                    batch.push(candidate);
                }
                let ys_cand = if batch.is_empty() {
                    Vec::new()
                } else {
                    n_evaluations += batch.len();
                    checked_evaluate(limit_state, &batch)?
                };
                total_quarantined += ys_cand.iter().filter(|y| y.is_nan()).count();
                let mut bi = 0usize;
                for (c, chain) in new_chains.iter_mut().enumerate() {
                    if step >= target_len(c) {
                        continue;
                    }
                    if ys_cand[bi] >= b {
                        chain.points.push(batch[bi].clone());
                        chain.ys.push(ys_cand[bi]);
                        accepted += 1;
                    } else {
                        // Domain-rejected: the chain repeats its state.
                        chain.points.push(chain.points.last().unwrap().clone());
                        chain.ys.push(*chain.ys.last().unwrap());
                    }
                    bi += 1;
                }
                debug_assert_eq!(bi, ys_cand.len());
            }
            debug_assert_eq!(
                new_chains.iter().map(|c| c.ys.len()).sum::<usize>(),
                n,
                "conditional level must re-populate exactly N samples"
            );
            levels.push(LevelStats {
                threshold: b,
                conditional_probability: p_cond,
                acceptance_rate: if proposed > 0 {
                    accepted as f64 / proposed as f64
                } else {
                    f64::NAN
                },
                gamma,
                n_chains: nc,
                n_samples: n,
                quarantined: level_quarantined,
            });
            probability *= p_cond;
            chains = new_chains;
        }
        unreachable!("loop returns or errors within max_levels + 1 iterations");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_uq::special::normal_cdf;

    /// `Y(u) = Σ uᵢ/√d`: exactly standard normal, `P(Y ≥ β) = Φ(−β)`.
    struct LinearState {
        d: usize,
        beta: f64,
        evaluations: usize,
    }

    impl LimitState for LinearState {
        fn dim(&self) -> usize {
            self.d
        }
        fn threshold(&self) -> f64 {
            self.beta
        }
        fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
            self.evaluations += points.len();
            Ok(points
                .iter()
                .map(|u| u.iter().sum::<f64>() / (self.d as f64).sqrt())
                .collect())
        }
    }

    fn exact_p(beta: f64) -> f64 {
        normal_cdf(-beta)
    }

    #[test]
    fn recovers_known_tail_probability_in_1d() {
        // β = 3 → p = 1.35e-3: far beyond what N = 1000 plain MC could see,
        // routine for 3–4 subset levels.
        let mut ls = LinearState {
            d: 1,
            beta: 3.0,
            evaluations: 0,
        };
        let ss = SubsetSimulation::new(1000, 42);
        let est = ss.estimate(&mut ls).unwrap();
        let p = exact_p(3.0);
        assert!(est.cov > 0.0 && est.cov < 0.6, "cov = {}", est.cov);
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
        assert!(est.levels.len() >= 3);
        assert_eq!(est.n_evaluations, ls.evaluations);
        // Ladder is increasing and ends at the threshold.
        for w in est.levels.windows(2) {
            assert!(w[1].threshold > w[0].threshold);
        }
        assert_eq!(est.levels.last().unwrap().threshold, 3.0);
        // Conditional levels report healthy chains.
        for l in &est.levels[1..est.levels.len() - 1] {
            assert!(l.acceptance_rate > 0.1 && l.acceptance_rate < 0.9);
            assert!(l.n_chains > 0);
        }
        // Far cheaper than the MC reference at equal CoV.
        assert!(est.equivalent_mc_evaluations() > 5.0 * est.n_evaluations as f64);
    }

    #[test]
    fn recovers_known_tail_probability_in_12d() {
        // The paper's dimensionality (12 iid elongations).
        let mut ls = LinearState {
            d: 12,
            beta: 2.7,
            evaluations: 0,
        };
        let ss = SubsetSimulation::new(1200, 7);
        let est = ss.estimate(&mut ls).unwrap();
        let p = exact_p(2.7);
        assert!(
            (est.probability - p).abs() < 3.0 * p.max(est.probability) * est.cov,
            "estimate {} vs exact {p} (cov {})",
            est.probability,
            est.cov
        );
    }

    #[test]
    fn bit_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut ls = LinearState {
                d: 3,
                beta: 2.5,
                evaluations: 0,
            };
            SubsetSimulation::new(300, seed).estimate(&mut ls).unwrap()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must be bit-identical");
        let c = run(12);
        assert_ne!(a.probability, c.probability);
    }

    #[test]
    fn non_rare_event_finishes_at_level_zero() {
        let mut ls = LinearState {
            d: 2,
            beta: 0.5, // p ≈ 0.31
            evaluations: 0,
        };
        let est = SubsetSimulation::new(500, 3).estimate(&mut ls).unwrap();
        assert_eq!(est.levels.len(), 1);
        assert_eq!(est.n_evaluations, 500);
        let p = exact_p(0.5);
        assert!((est.probability - p).abs() < 3.0 * p * est.cov);
        assert_eq!(est.levels[0].gamma, 0.0);
        assert!(est.levels[0].acceptance_rate.is_nan());
    }

    #[test]
    fn level_budget_exhaustion_is_reported() {
        let mut ls = LinearState {
            d: 1,
            beta: 40.0, // p ~ 1e-350: unreachable
            evaluations: 0,
        };
        let ss = SubsetSimulation {
            max_levels: 3,
            ..SubsetSimulation::new(100, 5)
        };
        match ss.estimate(&mut ls) {
            Err(ReliabilityError::NotConverged(msg)) => {
                assert!(msg.contains("levels"), "{msg}")
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_options() {
        let mut ls = LinearState {
            d: 1,
            beta: 2.0,
            evaluations: 0,
        };
        for ss in [
            SubsetSimulation::new(5, 1),
            SubsetSimulation {
                p0: 1.5,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                p0: 0.999,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                proposal_correlation: 0.0,
                ..SubsetSimulation::new(100, 1)
            },
            SubsetSimulation {
                proposal_correlation: 1.0,
                ..SubsetSimulation::new(100, 1)
            },
        ] {
            assert!(matches!(
                ss.estimate(&mut ls),
                Err(ReliabilityError::InvalidOptions(_))
            ));
        }
    }

    #[test]
    fn order_desc_is_nan_safe_and_stable() {
        let ys = [1.0, f64::NAN, 3.0, 1.0, 2.0];
        let order = order_desc(&ys);
        assert_eq!(order, vec![2, 4, 0, 3, 1]);
    }
}
