//! Fusing-current search: the largest drive the package survives.
//!
//! The classical wire-sizing rules (Preece's steady rule of thumb,
//! Onderdonk's adiabatic limit — `etherm_bondwire::analytic`) bound the
//! *melting* current of an isolated wire. The field-coupled analogue asked
//! by the paper is subtler: at which drive level does the hottest wire of
//! the *package* (with its real pad cooling and mold coupling) first reach
//! the degradation threshold? [`find_critical_load`] answers it by
//! bisection on the session's drive scale, reusing one warm session across
//! the bracketing transients — every failing probe early-exits at its
//! threshold crossing, so the upper half of the bracket costs a fraction
//! of a full run.

use crate::error::ReliabilityError;
use etherm_core::{Session, ThresholdObserver};
use etherm_uq::Distribution;

/// Controls of [`find_critical_load`].
#[derive(Debug, Clone, PartialEq)]
pub struct FusingSearchOptions {
    /// Transient horizon (s) a probe must survive.
    pub t_end: f64,
    /// Implicit-Euler steps of a probe.
    pub n_steps: usize,
    /// Failure threshold on `maxⱼ T_bw,j` (K) — the paper's
    /// `T_critical = 523 K` for mold degradation.
    pub threshold: f64,
    /// Lower end of the drive-scale bracket (expected safe).
    pub scale_lo: f64,
    /// Upper end of the drive-scale bracket (expected failing).
    pub scale_hi: f64,
    /// Relative bracket-width target: bisection stops when
    /// `hi − lo ≤ tol_rel·hi`.
    pub tol_rel: f64,
    /// Iteration cap of the bisection.
    pub max_iter: usize,
}

impl Default for FusingSearchOptions {
    fn default() -> Self {
        FusingSearchOptions {
            t_end: 50.0,
            n_steps: 50,
            threshold: 523.0,
            scale_lo: 1.0,
            scale_hi: 32.0,
            tol_rel: 1e-2,
            max_iter: 40,
        }
    }
}

/// Result of the fusing-current search.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalLoad {
    /// Largest drive scale observed safe (0 when even `scale_lo` fails,
    /// `scale_hi` when nothing in the bracket fails).
    pub scale: f64,
    /// Final `(safe, failing)` bracket; degenerate when the search
    /// saturated at an end.
    pub bracket: (f64, f64),
    /// Transient probes run.
    pub runs: usize,
    /// Probes that early-exited at a threshold crossing.
    pub early_exits: usize,
    /// Crossing time (s) of the last failing probe, if any — how quickly an
    /// overload at the failing end of the bracket kills the package.
    pub failing_crossing_time: Option<f64>,
}

/// Finds the critical drive scale of the session's model by bisection (see
/// the module docs). The session's wire lengths (and any other applied
/// parameters) are honored; warm-start mode is enabled for the duration so
/// consecutive probes share preconditioners and thermal guesses. On return
/// the session's drive scale is left at the reported safe `scale` and warm
/// mode is switched back off; on error the entering drive scale is
/// restored instead.
///
/// # Errors
///
/// Returns [`ReliabilityError::InvalidOptions`] for an inconsistent
/// bracket/tolerance; solver failures propagate.
pub fn find_critical_load(
    session: &mut Session,
    options: &FusingSearchOptions,
) -> Result<CriticalLoad, ReliabilityError> {
    let valid = options.t_end > 0.0
        && options.n_steps > 0
        && options.threshold.is_finite()
        && options.scale_lo >= 0.0
        && options.scale_hi > options.scale_lo
        && options.scale_hi.is_finite()
        && options.tol_rel > 0.0
        && options.max_iter > 0;
    if !valid {
        return Err(ReliabilityError::InvalidOptions(format!(
            "inconsistent fusing search options: {options:?}"
        )));
    }
    let original_scale = session.drive_scale();
    session.set_warm_start(true);
    let result = bisect(session, options);
    session.set_warm_start(false);
    if result.is_err() {
        // A solver failure mid-bisection must not leave the caller's
        // session at the failing probe's overload (the scale was valid
        // before, so restoring it cannot fail).
        let _ = session.set_drive_scale(original_scale);
    }
    result
}

/// One probe of [`find_critical_load_sampled`]: the realized degradation
/// threshold and the critical load found under it.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCriticalLoad {
    /// Realized threshold (K), `F⁻¹(u)` of the threshold distribution.
    pub threshold: f64,
    /// Critical-load search result at that threshold.
    pub load: CriticalLoad,
}

/// Per-sample fusing-current search under a *random* degradation
/// threshold: the mold's critical temperature is itself scattered (cure
/// state, filler content), so the fusing current is a random variable. For
/// each probe point `u ∈ (0, 1)` the threshold is realized by inversion,
/// `T_crit = F⁻¹(u)`, and the warm-session bisection of
/// [`find_critical_load`] runs at that threshold — one session carries its
/// preconditioners and thermal guesses across the whole sweep, so sample
/// `i+1` starts from the bracket-end state of sample `i`.
///
/// The probe points are caller-supplied (iid uniforms, Latin Hypercube,
/// or Halton from `etherm_uq::sampling`), which keeps the sweep
/// bit-deterministic for a fixed design. Results are returned in probe
/// order.
///
/// # Errors
///
/// Returns [`ReliabilityError::InvalidOptions`] when a probe point lies
/// outside `(0, 1)` or its realized threshold is not finite, and
/// propagates any [`find_critical_load`] failure (the session's drive
/// scale is restored by the inner search on error).
pub fn find_critical_load_sampled(
    session: &mut Session,
    options: &FusingSearchOptions,
    threshold: &dyn Distribution,
    probes_u: &[f64],
) -> Result<Vec<SampledCriticalLoad>, ReliabilityError> {
    let mut out = Vec::with_capacity(probes_u.len());
    for &u in probes_u {
        if !(u > 0.0 && u < 1.0) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "threshold probe point {u} outside (0, 1)"
            )));
        }
        let t_crit = threshold.quantile(u);
        if !t_crit.is_finite() {
            return Err(ReliabilityError::InvalidOptions(format!(
                "threshold quantile({u}) = {t_crit} is not finite"
            )));
        }
        let sample_options = FusingSearchOptions {
            threshold: t_crit,
            ..options.clone()
        };
        let load = find_critical_load(session, &sample_options)?;
        out.push(SampledCriticalLoad {
            threshold: t_crit,
            load,
        });
    }
    Ok(out)
}

fn bisect(
    session: &mut Session,
    options: &FusingSearchOptions,
) -> Result<CriticalLoad, ReliabilityError> {
    let mut runs = 0usize;
    let mut early_exits = 0usize;
    let mut failing_crossing_time = None;
    let probe = |session: &mut Session,
                     scale: f64,
                     runs: &mut usize,
                     early_exits: &mut usize,
                     crossing: &mut Option<f64>|
     -> Result<bool, ReliabilityError> {
        session.set_drive_scale(scale)?;
        let mut observer = ThresholdObserver::new(options.threshold);
        let observed = session.run_transient_observed(
            options.t_end,
            options.n_steps,
            &[],
            &mut observer,
        )?;
        *runs += 1;
        if observed.stopped_early {
            *early_exits += 1;
        }
        if let Some(t) = observed.crossing_time {
            *crossing = Some(t);
        }
        Ok(observed.crossing_time.is_some())
    };

    // Bracket ends.
    if probe(
        session,
        options.scale_lo,
        &mut runs,
        &mut early_exits,
        &mut failing_crossing_time,
    )? {
        // Already failing at the low end: nothing in the bracket is safe.
        session.set_drive_scale(0.0)?;
        return Ok(CriticalLoad {
            scale: 0.0,
            bracket: (0.0, options.scale_lo),
            runs,
            early_exits,
            failing_crossing_time,
        });
    }
    if !probe(
        session,
        options.scale_hi,
        &mut runs,
        &mut early_exits,
        &mut failing_crossing_time,
    )? {
        // Safe everywhere in the bracket.
        session.set_drive_scale(options.scale_hi)?;
        return Ok(CriticalLoad {
            scale: options.scale_hi,
            bracket: (options.scale_hi, options.scale_hi),
            runs,
            early_exits,
            failing_crossing_time,
        });
    }

    let (mut lo, mut hi) = (options.scale_lo, options.scale_hi);
    for _ in 0..options.max_iter {
        if hi - lo <= options.tol_rel * hi {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if probe(
            session,
            mid,
            &mut runs,
            &mut early_exits,
            &mut failing_crossing_time,
        )? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    session.set_drive_scale(lo)?;
    Ok(CriticalLoad {
        scale: lo,
        bracket: (lo, hi),
        runs,
        early_exits,
        failing_crossing_time,
    })
}
