//! The surrogate fast path: training, error-controlled serving with full-
//! solver fallback, and the limit-state adapter that lets the rare-event
//! estimators screen candidates through it.
//!
//! Three pieces:
//!
//! * [`train_surrogates`] — the offline pipeline: draws a seeded
//!   standard-normal design, pushes it through the batched ensemble engine
//!   ([`run_ensemble_batched`]) and fits one error-controlled
//!   [`Surrogate`] per QoI of the scenario,
//! * [`SurrogateWithFallback`] — the serving tier: a
//!   [`QoiEvaluator`] that answers from the surrogates whenever every
//!   per-QoI error estimate is within tolerance (and, optionally, the
//!   prediction is not near a decision threshold), and routes everything
//!   else through a wrapped full-solve evaluator. Fallback results are
//!   logged and can be folded back into the surrogates
//!   ([`SurrogateWithFallback::refine_now`], or automatically every
//!   `auto_refine` points) — active-learning refinement at zero extra
//!   solves,
//! * [`QoiLimitState`] — adapts any [`QoiEvaluator`] to the
//!   [`LimitState`] interface, so subset simulation and the direct-sampling
//!   estimators run their candidate sweeps through the surrogate tier and
//!   pay full transients only where the surrogate cannot certify its
//!   answer.
//!
//! **Bias bound.** A served answer differs from the full solve by at most
//! the error estimate at its germ point, which is `≤ tolerance` by the
//! serving rule; with a near-threshold guard of band `≥ tolerance` on the
//! response QoI, served *indicators* `Y ≥ b` are exact, so the screening
//! bias of an estimate is bounded by the tolerance — and vanishes for the
//! indicator when the guard is on.
//!
//! **Determinism.** Serving decisions depend only on the sample itself,
//! fallback batches preserve sample order, and the ensemble merge is
//! sample-ordered — estimates built on this tier are bit-identical for any
//! worker-thread count.

use crate::error::ReliabilityError;
use crate::limit_state::{substream, LimitState, StdNormal};
use etherm_core::{
    run_ensemble_batched, BatchScenario, CompiledModel, CoreError, EnsembleOptions, QoiEvaluator,
    SolveCounters,
};
use etherm_uq::{Distribution, Surrogate, SurrogateOptions};
use std::sync::Arc;

/// Design of a [`train_surrogates`] campaign.
#[derive(Debug, Clone)]
pub struct SurrogateTrainingPlan {
    /// Training-design size (germ samples drawn and solved).
    pub n_train: usize,
    /// Seed of the deterministic standard-normal design.
    pub seed: u64,
    /// Per-QoI surrogate fit options (degree, holdout split, safety).
    pub surrogate: SurrogateOptions,
}

impl SurrogateTrainingPlan {
    /// `n_train` samples under `seed` with default [`SurrogateOptions`].
    pub fn new(n_train: usize, seed: u64) -> Self {
        SurrogateTrainingPlan {
            n_train,
            seed,
            surrogate: SurrogateOptions::default(),
        }
    }
}

/// Output of [`train_surrogates`]: one fitted surrogate per scenario QoI
/// plus the cost ledger of the training campaign.
#[derive(Debug, Clone)]
pub struct TrainedSurrogate {
    /// One error-controlled surrogate per QoI, in QoI order.
    pub surrogates: Vec<Surrogate>,
    /// Linear-solver counters of the training ensemble.
    pub counters: SolveCounters,
    /// Training samples quarantined by the ensemble (excluded from the fit).
    pub quarantined: usize,
}

/// Fits one [`Surrogate`] per QoI of `scenario` from a seeded
/// standard-normal design of `plan.n_train` germ points: the design is
/// mapped to physical space through `marginals`
/// ([`Distribution::from_std_normal`]), solved by the batched ensemble
/// engine (one matrix traversal advancing a whole panel), and each QoI
/// column is fitted with a deterministic held-out split for the error
/// model. Identical inputs produce bit-identical surrogates for any
/// `options.n_threads`.
///
/// # Errors
///
/// [`ReliabilityError::InvalidOptions`] on an empty plan or marginal set,
/// [`ReliabilityError::Core`] on solver failure,
/// [`ReliabilityError::Evaluation`] when the campaign quarantined
/// everything or QoI lengths are inconsistent, and
/// [`ReliabilityError::Surrogate`] when a QoI design is degenerate or too
/// small for the basis.
pub fn train_surrogates<S: BatchScenario>(
    compiled: &Arc<CompiledModel>,
    scenario: &S,
    marginals: &[Box<dyn Distribution>],
    plan: &SurrogateTrainingPlan,
    options: &EnsembleOptions,
) -> Result<TrainedSurrogate, ReliabilityError> {
    let d = marginals.len();
    if d == 0 || plan.n_train == 0 {
        return Err(ReliabilityError::InvalidOptions(
            "train_surrogates: need ≥ 1 marginal and n_train ≥ 1".into(),
        ));
    }
    let mut draw = StdNormal::new(substream(plan.seed, u64::MAX, 0));
    let germ: Vec<Vec<f64>> = (0..plan.n_train).map(|_| draw.point(d)).collect();
    let physical: Vec<Vec<f64>> = germ
        .iter()
        .map(|u| {
            u.iter()
                .zip(marginals)
                .map(|(&z, m)| m.from_std_normal(z))
                .collect()
        })
        .collect();
    let result = run_ensemble_batched(compiled, scenario, &physical, options)?;

    let mut kept_germ = Vec::with_capacity(plan.n_train);
    let mut kept_qoi: Vec<&Vec<f64>> = Vec::with_capacity(plan.n_train);
    let mut quarantined = 0usize;
    for (u, qoi) in germ.iter().zip(&result.outputs) {
        if qoi.is_empty() {
            quarantined += 1;
        } else {
            kept_germ.push(u.clone());
            kept_qoi.push(qoi);
        }
    }
    let n_qoi = match kept_qoi.first() {
        Some(q) => q.len(),
        None => {
            return Err(ReliabilityError::Evaluation(
                "train_surrogates: every training sample was quarantined".into(),
            ))
        }
    };
    if let Some(bad) = kept_qoi.iter().find(|q| q.len() != n_qoi) {
        return Err(ReliabilityError::Evaluation(format!(
            "train_surrogates: inconsistent QoI lengths ({} vs {n_qoi})",
            bad.len()
        )));
    }

    let mut surrogates = Vec::with_capacity(n_qoi);
    for q in 0..n_qoi {
        let y: Vec<f64> = kept_qoi.iter().map(|qoi| qoi[q]).collect();
        surrogates.push(Surrogate::fit(&kept_germ, &y, d, plan.surrogate.clone())?);
    }
    Ok(TrainedSurrogate {
        surrogates,
        counters: result.counters,
        quarantined,
    })
}

/// The error-controlled serving tier: a [`QoiEvaluator`] that answers a
/// sample from its per-QoI surrogates **iff every error estimate at the
/// sample's germ point is ≤ `tolerance`** (and the optional near-threshold
/// guard holds), and routes the rest through the wrapped fallback
/// evaluator in one order-preserving batch.
///
/// The evaluator's QoI vector is the surrogate-modeled prefix: fallback
/// outputs are truncated to the first `surrogates.len()` entries, so every
/// non-empty answer has the same length whichever path produced it.
///
/// Fallback (germ, QoI) pairs are logged into a refinement buffer; call
/// [`SurrogateWithFallback::refine_now`] (or arm
/// [`SurrogateWithFallback::with_auto_refine`]) to fold them back into the
/// surrogates — already-paid solves become training data.
pub struct SurrogateWithFallback<F: QoiEvaluator> {
    fallback: F,
    surrogates: Vec<Surrogate>,
    marginals: Vec<Box<dyn Distribution>>,
    tolerance: f64,
    guard: Option<(f64, f64)>,
    auto_refine: usize,
    refinement: Vec<(Vec<f64>, Vec<f64>)>,
    served: usize,
    max_served_error: f64,
    refinements: usize,
}

impl<F: QoiEvaluator> SurrogateWithFallback<F> {
    /// Wraps `fallback` with the trained `surrogates` (one per served QoI)
    /// and the germ transform `marginals`; a sample is served only when
    /// every surrogate's error estimate is ≤ `tolerance`.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidOptions`] on an empty surrogate set, a
    /// non-positive or non-finite tolerance, or any dimension mismatch
    /// between fallback, marginals and surrogates.
    pub fn new(
        fallback: F,
        surrogates: Vec<Surrogate>,
        marginals: Vec<Box<dyn Distribution>>,
        tolerance: f64,
    ) -> Result<Self, ReliabilityError> {
        if surrogates.is_empty() {
            return Err(ReliabilityError::InvalidOptions(
                "SurrogateWithFallback: need ≥ 1 surrogate".into(),
            ));
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(ReliabilityError::InvalidOptions(format!(
                "SurrogateWithFallback: tolerance must be finite and > 0 (got {tolerance})"
            )));
        }
        let d = fallback.dim();
        if marginals.len() != d {
            return Err(ReliabilityError::InvalidOptions(format!(
                "SurrogateWithFallback: {} marginals for fallback dimension {d}",
                marginals.len()
            )));
        }
        if let Some(s) = surrogates.iter().find(|s| s.dim() != d) {
            return Err(ReliabilityError::InvalidOptions(format!(
                "SurrogateWithFallback: surrogate dimension {} vs fallback {d}",
                s.dim()
            )));
        }
        Ok(SurrogateWithFallback {
            fallback,
            surrogates,
            marginals,
            tolerance,
            guard: None,
            auto_refine: 0,
            refinement: Vec::new(),
            served: 0,
            max_served_error: 0.0,
            refinements: 0,
        })
    }

    /// Arms the near-threshold guard on QoI 0: a sample whose predicted
    /// response lies within `band` of `threshold` falls back to the full
    /// solver even when its error estimate is in tolerance. With
    /// `band ≥ tolerance` every served indicator `Y ≥ threshold` is exact
    /// — the screening-bias guarantee of the estimators.
    pub fn with_near_threshold_guard(mut self, threshold: f64, band: f64) -> Self {
        self.guard = Some((threshold, band));
        self
    }

    /// Retrains automatically once `every` fallback points have been
    /// logged (0 = manual refinement only, the default).
    pub fn with_auto_refine(mut self, every: usize) -> Self {
        self.auto_refine = every;
        self
    }

    /// Folds every logged fallback point into the surrogates and drains
    /// the log, returning how many points were absorbed. All-or-nothing:
    /// on error no surrogate is modified and the log is kept.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::Surrogate`] when the extended design is
    /// degenerate.
    pub fn refine_now(&mut self) -> Result<usize, ReliabilityError> {
        if self.refinement.is_empty() {
            return Ok(0);
        }
        let xi: Vec<Vec<f64>> = self.refinement.iter().map(|(u, _)| u.clone()).collect();
        let mut refitted = Vec::with_capacity(self.surrogates.len());
        for (q, s) in self.surrogates.iter().enumerate() {
            let y: Vec<f64> = self.refinement.iter().map(|(_, qoi)| qoi[q]).collect();
            let mut candidate = s.clone();
            candidate.refit_with(&xi, &y)?;
            refitted.push(candidate);
        }
        self.surrogates = refitted;
        self.refinements += 1;
        let absorbed = self.refinement.len();
        self.refinement.clear();
        Ok(absorbed)
    }

    fn germ(&self, sample: &[f64]) -> Vec<f64> {
        sample
            .iter()
            .zip(&self.marginals)
            .map(|(&x, m)| m.to_std_normal(x))
            .collect()
    }

    /// Whether a sample would be served, with its predictions and worst
    /// error estimate.
    fn screen(&self, germ: &[f64]) -> (Vec<f64>, f64, bool) {
        let mut preds = Vec::with_capacity(self.surrogates.len());
        let mut worst = 0.0f64;
        let mut finite = true;
        for s in &self.surrogates {
            let (p, e) = s.predict_with_error(germ);
            finite &= p.is_finite() && e.is_finite();
            worst = worst.max(e);
            preds.push(p);
        }
        let mut serve = finite && worst <= self.tolerance;
        if let Some((threshold, band)) = self.guard {
            serve = serve && (preds[0] - threshold).abs() > band;
        }
        (preds, worst, serve)
    }

    /// The fitted surrogates, in QoI order (refined in place over time).
    pub fn surrogates(&self) -> &[Surrogate] {
        &self.surrogates
    }

    /// The wrapped fallback evaluator.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// The serving tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Largest error estimate among all answers served so far — always
    /// ≤ [`SurrogateWithFallback::tolerance`] by the serving rule, and the
    /// certified bound on `max |served − full solve|`.
    pub fn max_served_error(&self) -> f64 {
        self.max_served_error
    }

    /// Fallback points logged and not yet folded into the surrogates.
    pub fn pending_refinement(&self) -> usize {
        self.refinement.len()
    }

    /// Completed refinement passes.
    pub fn refinements(&self) -> usize {
        self.refinements
    }
}

impl<F: QoiEvaluator> QoiEvaluator for SurrogateWithFallback<F> {
    fn dim(&self) -> usize {
        self.fallback.dim()
    }

    fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        let n_qoi = self.surrogates.len();
        let mut outputs: Vec<Option<Vec<f64>>> = Vec::with_capacity(samples.len());
        let mut fallback_idx = Vec::new();
        let mut fallback_samples = Vec::new();
        let mut fallback_germ = Vec::new();
        let mut served_errors = Vec::new();
        for (i, sample) in samples.iter().enumerate() {
            let germ = self.germ(sample);
            let (preds, worst, serve) = self.screen(&germ);
            if serve {
                served_errors.push(worst);
                outputs.push(Some(preds));
            } else {
                fallback_idx.push(i);
                fallback_samples.push(sample.clone());
                fallback_germ.push(germ);
                outputs.push(None);
            }
        }

        let solved = self.fallback.evaluate(&fallback_samples)?;
        for ((i, germ), qoi) in fallback_idx
            .into_iter()
            .zip(fallback_germ)
            .zip(solved)
        {
            if qoi.is_empty() {
                // Quarantined by the fallback: pass the marker through,
                // nothing to learn from.
                outputs[i] = Some(Vec::new());
            } else if qoi.len() < n_qoi {
                return Err(CoreError::InvalidModel(format!(
                    "SurrogateWithFallback: fallback returned {} QoIs for {n_qoi} surrogates",
                    qoi.len()
                )));
            } else {
                let mut prefix = qoi;
                prefix.truncate(n_qoi);
                self.refinement.push((germ, prefix.clone()));
                outputs[i] = Some(prefix);
            }
        }
        // Commit serving stats only after the fallback batch succeeded, so
        // a solver error leaves the ledger consistent.
        self.served += served_errors.len();
        for e in served_errors {
            self.max_served_error = self.max_served_error.max(e);
        }
        if self.auto_refine > 0 && self.refinement.len() >= self.auto_refine {
            self.refine_now().map_err(|e| {
                CoreError::InvalidModel(format!("surrogate auto-refinement failed: {e}"))
            })?;
        }
        Ok(outputs.into_iter().flatten().collect())
    }

    fn full_solves(&self) -> usize {
        self.fallback.full_solves()
    }

    fn served(&self) -> usize {
        self.served + self.fallback.served()
    }

    fn counters(&self) -> SolveCounters {
        self.fallback.counters()
    }
}

/// Adapts any [`QoiEvaluator`] to the [`LimitState`] interface: each
/// standard-normal point is mapped to physical space through the
/// marginals, the evaluator answers the batch, and one QoI index (0 by
/// default — the response convention) is the limit-state response.
/// Quarantined samples (empty QoI vectors) become `NaN` responses, which
/// every estimator counts as "not failed".
///
/// Wrap a [`SurrogateWithFallback`] to surrogate-screen an estimator's
/// candidate sweep; wrap a plain `FullSolve` for the reference run.
pub struct QoiLimitState<E: QoiEvaluator> {
    evaluator: E,
    marginals: Vec<Box<dyn Distribution>>,
    threshold: f64,
    qoi_index: usize,
    quarantined: usize,
}

impl<E: QoiEvaluator> QoiLimitState<E> {
    /// Binds an evaluator, the standard-normal marginal transforms
    /// (`marginals.len()` = evaluator dimension) and the failure threshold
    /// on QoI 0.
    pub fn new(evaluator: E, marginals: Vec<Box<dyn Distribution>>, threshold: f64) -> Self {
        assert_eq!(
            marginals.len(),
            evaluator.dim(),
            "QoiLimitState: marginal count must match evaluator dimension"
        );
        QoiLimitState {
            evaluator,
            marginals,
            threshold,
            qoi_index: 0,
            quarantined: 0,
        }
    }

    /// Uses QoI index `i` as the response instead of 0.
    pub fn with_qoi_index(mut self, i: usize) -> Self {
        self.qoi_index = i;
        self
    }

    /// The wrapped evaluator (serving/fallback ledger lives there).
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// Consumes the adapter, returning the evaluator.
    pub fn into_evaluator(self) -> E {
        self.evaluator
    }

    /// Samples quarantined so far (reported as `NaN` responses).
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }
}

impl<E: QoiEvaluator> LimitState for QoiLimitState<E> {
    fn dim(&self) -> usize {
        self.marginals.len()
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
        let d = self.marginals.len();
        let samples: Vec<Vec<f64>> = points
            .iter()
            .map(|u| {
                assert_eq!(u.len(), d, "point dimension mismatch");
                u.iter()
                    .zip(&self.marginals)
                    .map(|(&z, m)| m.from_std_normal(z))
                    .collect()
            })
            .collect();
        let outputs = self.evaluator.evaluate(&samples)?;
        if outputs.len() != points.len() {
            return Err(ReliabilityError::Evaluation(format!(
                "QoiLimitState: evaluator returned {} outputs for {} points",
                outputs.len(),
                points.len()
            )));
        }
        Ok(outputs
            .iter()
            .map(|qoi| match qoi.get(self.qoi_index) {
                Some(&y) => y,
                None => {
                    self.quarantined += 1;
                    f64::NAN
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::MonteCarloEstimator;
    use crate::limit_state::FailureEstimator;
    use etherm_uq::Normal;

    /// Analytic stand-in for the full solver: QoIs
    /// `[x₀ + x₁², x₀·x₁]` plus a cubic wrinkle the degree-2 surrogate
    /// cannot represent.
    struct Analytic {
        evaluated: usize,
    }

    fn truth(x: &[f64]) -> Vec<f64> {
        vec![
            x[0] + x[1] * x[1] + 0.02 * x[0].powi(3),
            x[0] * x[1],
        ]
    }

    impl QoiEvaluator for Analytic {
        fn dim(&self) -> usize {
            2
        }
        fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
            self.evaluated += samples.len();
            Ok(samples.iter().map(|x| truth(x)).collect())
        }
        fn full_solves(&self) -> usize {
            self.evaluated
        }
        fn served(&self) -> usize {
            0
        }
        fn counters(&self) -> SolveCounters {
            SolveCounters::default()
        }
    }

    fn std_marginals() -> Vec<Box<dyn Distribution>> {
        vec![Box::new(Normal::new(0.0, 1.0).unwrap()), Box::new(Normal::new(0.0, 1.0).unwrap())]
    }

    /// Deterministic design on [-2, 2]² and its QoI responses.
    fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xi: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = ((i * 7 + 3) % 17) as f64 / 16.0;
                let b = ((i * 5 + 1) % 13) as f64 / 12.0;
                vec![4.0 * a - 2.0, 4.0 * b - 2.0]
            })
            .collect();
        let y = xi.iter().map(|x| truth(x)).collect();
        (xi, y)
    }

    fn fitted_surrogates(n: usize) -> Vec<Surrogate> {
        let (xi, y) = training_data(n);
        (0..2)
            .map(|q| {
                let col: Vec<f64> = y.iter().map(|qoi| qoi[q]).collect();
                Surrogate::fit(&xi, &col, 2, SurrogateOptions::default()).expect("fit")
            })
            .collect()
    }

    fn wrapped(tolerance: f64) -> SurrogateWithFallback<Analytic> {
        SurrogateWithFallback::new(
            Analytic { evaluated: 0 },
            fitted_surrogates(36),
            std_marginals(),
            tolerance,
        )
        .expect("wrap")
    }

    #[test]
    fn serves_in_tolerance_and_falls_back_outside() {
        let mut sf = wrapped(0.5);
        // Mixed batch: points inside the design hull (servable) and far
        // outside it (inflated error estimate forces fallback).
        let batch: Vec<Vec<f64>> = vec![
            vec![0.3, -0.4],
            vec![5.0, 5.0],
            vec![-0.8, 0.2],
            vec![-6.0, 1.0],
        ];
        let out = sf.evaluate(&batch).expect("evaluate");
        assert_eq!(out.len(), 4);
        assert!(sf.served() >= 2, "inside-hull points must be served");
        assert!(sf.full_solves() >= 2, "outside points must fall back");
        assert_eq!(sf.served() + sf.full_solves(), 4);
        // Every answer — served or not — is within tolerance of the truth
        // on QoI 0 and 1, because fallback answers are exact and served
        // answers are certified.
        for (x, qoi) in batch.iter().zip(&out) {
            let t = truth(x);
            assert!((qoi[0] - t[0]).abs() <= 0.5, "{} vs {}", qoi[0], t[0]);
            assert!((qoi[1] - t[1]).abs() <= 0.5);
        }
        assert!(sf.max_served_error() <= sf.tolerance());
        assert_eq!(sf.pending_refinement(), sf.full_solves());
    }

    #[test]
    fn near_threshold_guard_forces_full_solves() {
        let x = vec![0.3, -0.4];
        let mut free = wrapped(0.5);
        free.evaluate(std::slice::from_ref(&x)).expect("evaluate");
        assert_eq!(free.served(), 1);
        let pred = free.surrogates()[0].predict(&x);

        // Guard centred on the prediction: the same point now falls back.
        let mut guarded = wrapped(0.5).with_near_threshold_guard(pred, 0.5);
        guarded.evaluate(std::slice::from_ref(&x)).expect("evaluate");
        assert_eq!(guarded.served(), 0);
        assert_eq!(guarded.full_solves(), 1);
    }

    #[test]
    fn refinement_absorbs_fallback_points() {
        let mut sf = wrapped(0.5);
        let far: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![3.0 + 0.25 * i as f64, -3.0 + 0.5 * i as f64])
            .collect();
        sf.evaluate(&far).expect("evaluate");
        let logged = sf.pending_refinement();
        assert!(logged > 0);
        let before = sf.surrogates()[0].n_samples();
        assert_eq!(sf.refine_now().expect("refine"), logged);
        assert_eq!(sf.pending_refinement(), 0);
        assert_eq!(sf.surrogates()[0].n_samples(), before + logged);
        assert_eq!(sf.refinements(), 1);
        assert_eq!(sf.refine_now().expect("no-op"), 0);
    }

    #[test]
    fn auto_refine_triggers_on_logged_points() {
        let mut sf = wrapped(0.5).with_auto_refine(4);
        let far: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![3.0 + 0.25 * i as f64, -3.0 + 0.5 * i as f64])
            .collect();
        sf.evaluate(&far).expect("evaluate");
        assert!(sf.refinements() >= 1, "auto-refine must have fired");
        assert!(sf.pending_refinement() < 4);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let mk = || Analytic { evaluated: 0 };
        assert!(SurrogateWithFallback::new(mk(), vec![], std_marginals(), 0.5).is_err());
        assert!(
            SurrogateWithFallback::new(mk(), fitted_surrogates(36), std_marginals(), 0.0)
                .is_err()
        );
        assert!(SurrogateWithFallback::new(
            mk(),
            fitted_surrogates(36),
            vec![Box::new(Normal::new(0.0, 1.0).unwrap())],
            0.5
        )
        .is_err());
    }

    #[test]
    fn qoi_limit_state_matches_direct_indicator_counting() {
        // P(x₀ + x₁² + 0.02·x₀³ ≥ b) through the adapter over a plain
        // full-solve-style evaluator must equal hand-counted indicators
        // over the same deterministic sample stream.
        let threshold = 2.0;
        let mut ls = QoiLimitState::new(Analytic { evaluated: 0 }, std_marginals(), threshold);
        assert_eq!(ls.dim(), 2);
        assert_eq!(ls.threshold(), threshold);
        let est = MonteCarloEstimator::new(2000, 11)
            .estimate(&mut ls)
            .expect("estimate");
        let mut draw = StdNormal::new(11);
        let mut failures = 0usize;
        for _ in 0..2000 {
            let u = draw.point(2);
            failures += (truth(&u)[0] >= threshold) as usize;
        }
        assert_eq!(est.probability, failures as f64 / 2000.0);
        assert!(est.probability > 0.0);
        assert_eq!(ls.quarantined(), 0);
        assert_eq!(ls.into_evaluator().full_solves(), 2000);
    }

    #[test]
    fn screened_estimate_stays_within_tolerance_of_reference() {
        // The same MC campaign through the surrogate tier with a
        // near-threshold guard: indicators are exact wherever served, so
        // the estimate is bit-identical to the reference while paying far
        // fewer "solves".
        let threshold = 2.0;
        let tol = 0.4;
        let reference = {
            let mut ls =
                QoiLimitState::new(Analytic { evaluated: 0 }, std_marginals(), threshold);
            MonteCarloEstimator::new(2000, 11).estimate(&mut ls).expect("ref")
        };
        let sf = wrapped(tol).with_near_threshold_guard(threshold, tol);
        let mut ls = QoiLimitState::new(sf, std_marginals(), threshold);
        let screened = MonteCarloEstimator::new(2000, 11).estimate(&mut ls).expect("screened");
        assert_eq!(screened.probability, reference.probability);
        let sf = ls.into_evaluator();
        assert!(sf.served() > 0, "nothing was served");
        assert!(
            sf.full_solves() < 2000,
            "screening saved no solves: {}",
            sf.full_solves()
        );
        assert!(sf.max_served_error() <= tol);
    }
}
