//! The simulator-backed limit state: standard-normal points in, transient
//! responses out, batched over the ensemble engine.

use crate::error::ReliabilityError;
use crate::limit_state::LimitState;
use etherm_core::{run_ensemble, CompiledModel, EnsembleOptions, Scenario, SolveCounters};
use etherm_uq::Distribution;
use std::sync::Arc;

/// A [`LimitState`] over a compiled model: each standard-normal point is
/// pushed through the per-marginal transforms
/// (`Distribution::from_std_normal`), the resulting physical samples are
/// evaluated by [`run_ensemble`] (one warm-capable session per worker,
/// deterministic sample-order merge), and **output index 0 of the
/// scenario's QoI vector is the response** — the convention
/// `etherm_package::FailureScenario` implements with its early-exited peak
/// temperature.
///
/// Because the ensemble merge is sample-ordered and exact-mode sessions are
/// bit-identical to fresh solvers, estimates built on this state are
/// bit-deterministic for any `EnsembleOptions::n_threads`.
pub struct EnsembleLimitState<'a, S: Scenario> {
    compiled: &'a Arc<CompiledModel>,
    scenario: &'a S,
    marginals: Vec<Box<dyn Distribution>>,
    threshold: f64,
    options: EnsembleOptions,
    counters: SolveCounters,
    batches: usize,
    quarantined: usize,
    exit_factory: Option<Box<dyn Fn(f64) -> S + Sync + 'a>>,
    truncated_batches: usize,
}

impl<'a, S: Scenario> EnsembleLimitState<'a, S> {
    /// Binds a compiled model, a scenario and the standard-normal marginal
    /// transforms (`marginals.len()` = limit-state dimension = scenario
    /// sample length).
    pub fn new(
        compiled: &'a Arc<CompiledModel>,
        scenario: &'a S,
        marginals: Vec<Box<dyn Distribution>>,
        threshold: f64,
        options: EnsembleOptions,
    ) -> Self {
        EnsembleLimitState {
            compiled,
            scenario,
            marginals,
            threshold,
            options,
            counters: SolveCounters::default(),
            batches: 0,
            quarantined: 0,
            exit_factory: None,
            truncated_batches: 0,
        }
    }

    /// Enables intermediate-threshold early exit: `factory(exit)` must
    /// build a scenario identical to the bound one except that each
    /// transient may stop at the earlier crossing of `exit`, reporting its
    /// peak-so-far (`≥ exit`, `≤` the true peak). With a factory installed,
    /// [`LimitState::evaluate_truncated`] builds a per-call scenario instead
    /// of forwarding to the untruncated path — e.g.
    /// `|e| built.failure_scenario(..).with_exit_threshold(e)` for
    /// `etherm_package::FailureScenario`.
    pub fn with_intermediate_exit<F>(mut self, factory: F) -> Self
    where
        F: Fn(f64) -> S + Sync + 'a,
    {
        self.exit_factory = Some(Box::new(factory));
        self
    }

    /// Batches evaluated through the truncated (intermediate-exit) path.
    pub fn truncated_batches(&self) -> usize {
        self.truncated_batches
    }

    /// Solve counters merged over every batch evaluated so far — the
    /// "transient solves actually paid" ledger of the benchmark.
    pub fn counters(&self) -> SolveCounters {
        self.counters
    }

    /// Number of batches evaluated.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Samples quarantined so far: evaluations whose session failed under
    /// `FailurePolicy::Quarantine` and came back with an empty QoI vector.
    /// Each is reported to the estimator as a `NaN` response ("not failed").
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }
}

impl<S: Scenario> LimitState for EnsembleLimitState<'_, S> {
    fn dim(&self) -> usize {
        self.marginals.len()
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
        let scenario = self.scenario;
        self.evaluate_with(scenario, points)
    }

    fn evaluate_truncated(
        &mut self,
        points: &[Vec<f64>],
        exit: f64,
    ) -> Result<Vec<f64>, ReliabilityError> {
        let scenario = match &self.exit_factory {
            Some(factory) => factory(exit),
            None => {
                let scenario = self.scenario;
                return self.evaluate_with(scenario, points);
            }
        };
        self.truncated_batches += 1;
        self.evaluate_with(&scenario, points)
    }
}

impl<S: Scenario> EnsembleLimitState<'_, S> {
    fn evaluate_with(
        &mut self,
        scenario: &S,
        points: &[Vec<f64>],
    ) -> Result<Vec<f64>, ReliabilityError> {
        let d = self.marginals.len();
        let samples: Vec<Vec<f64>> = points
            .iter()
            .map(|u| {
                assert_eq!(u.len(), d, "point dimension mismatch");
                u.iter()
                    .zip(&self.marginals)
                    .map(|(&z, m)| m.from_std_normal(z))
                    .collect()
            })
            .collect();
        let result = run_ensemble(self.compiled, scenario, &samples, &self.options)?;
        self.counters.merge(&result.counters);
        self.batches += 1;
        // An empty QoI vector is a quarantined sample (its session failed
        // under `FailurePolicy::Quarantine`): report it as a `NaN` response,
        // which every estimator counts as "not failed".
        Ok(result
            .outputs
            .iter()
            .map(|qoi| match qoi.first() {
                Some(&y) => y,
                None => {
                    self.quarantined += 1;
                    f64::NAN
                }
            })
            .collect())
    }
}
