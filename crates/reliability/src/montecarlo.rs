//! Direct-sampling baselines: plain Monte Carlo and mean-shift importance
//! sampling in the standard-normal space.

use crate::error::ReliabilityError;
use crate::limit_state::{
    FailureEstimate, FailureEstimator, LevelStats, LimitState, StdNormal,
};

/// Brute-force Monte Carlo on the indicator `Y ≥ threshold` — the unbiased
/// reference every other estimator is validated against. Needs
/// `O(1/(p·δ²))` evaluations for a CoV of `δ`, hence hopeless for the
/// paper's ≤ 1e-3 regime but exact in the limit.
#[derive(Debug, Clone)]
pub struct MonteCarloEstimator {
    /// Number of samples.
    pub n: usize,
    /// RNG seed (results are bit-reproducible per seed).
    pub seed: u64,
    /// Evaluation batch size (bounds peak memory of a batch; the estimate
    /// is independent of it).
    pub batch: usize,
}

impl MonteCarloEstimator {
    /// `n` samples under `seed`, evaluated in batches of 1024.
    pub fn new(n: usize, seed: u64) -> Self {
        MonteCarloEstimator {
            n,
            seed,
            batch: 1024,
        }
    }
}

impl FailureEstimator for MonteCarloEstimator {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn estimate(
        &self,
        limit_state: &mut dyn LimitState,
    ) -> Result<FailureEstimate, ReliabilityError> {
        if self.n == 0 || self.batch == 0 {
            return Err(ReliabilityError::InvalidOptions(
                "monte carlo needs n ≥ 1 and batch ≥ 1".into(),
            ));
        }
        let d = limit_state.dim();
        let threshold = limit_state.threshold();
        let mut draw = StdNormal::new(self.seed);
        let mut failures = 0usize;
        let mut quarantined = 0usize;
        let mut remaining = self.n;
        while remaining > 0 {
            let m = remaining.min(self.batch);
            let points: Vec<Vec<f64>> = (0..m).map(|_| draw.point(d)).collect();
            let ys = checked_evaluate(limit_state, &points)?;
            failures += ys.iter().filter(|&&y| y >= threshold).count();
            quarantined += ys.iter().filter(|y| y.is_nan()).count();
            remaining -= m;
        }
        let p = failures as f64 / self.n as f64;
        let cov = if failures > 0 {
            ((1.0 - p) / (self.n as f64 * p)).sqrt()
        } else {
            f64::INFINITY
        };
        Ok(FailureEstimate {
            probability: p,
            cov,
            n_evaluations: self.n,
            levels: vec![LevelStats {
                threshold,
                conditional_probability: p,
                acceptance_rate: f64::NAN,
                gamma: 0.0,
                n_chains: 0,
                n_samples: self.n,
                quarantined,
            }],
            quarantined,
        })
    }
}

/// Mean-shift importance sampling: samples `U = shift + Z`, `Z ~ N(0, I)`,
/// and reweights by the exact density ratio
/// `w(u) = φ(u)/φ(u − shift) = exp(−uᵀ·shift + |shift|²/2)`. With a shift
/// toward the design point (e.g. from a pilot subset run or physical
/// insight: longer wires → hotter) the variance drops by orders of
/// magnitude over plain MC; a poor shift degrades gracefully toward it.
#[derive(Debug, Clone)]
pub struct ImportanceSamplingEstimator {
    /// Number of samples.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean shift in standard-normal space (length = limit-state dim).
    pub shift: Vec<f64>,
    /// Evaluation batch size.
    pub batch: usize,
}

impl ImportanceSamplingEstimator {
    /// `n` samples under `seed` with the given mean shift.
    pub fn new(n: usize, seed: u64, shift: Vec<f64>) -> Self {
        ImportanceSamplingEstimator {
            n,
            seed,
            shift,
            batch: 1024,
        }
    }
}

impl FailureEstimator for ImportanceSamplingEstimator {
    fn name(&self) -> &'static str {
        "importance-sampling"
    }

    fn estimate(
        &self,
        limit_state: &mut dyn LimitState,
    ) -> Result<FailureEstimate, ReliabilityError> {
        let d = limit_state.dim();
        if self.n == 0 || self.batch == 0 {
            return Err(ReliabilityError::InvalidOptions(
                "importance sampling needs n ≥ 1 and batch ≥ 1".into(),
            ));
        }
        if self.shift.len() != d {
            return Err(ReliabilityError::InvalidOptions(format!(
                "shift has dimension {}, limit state {d}",
                self.shift.len()
            )));
        }
        let threshold = limit_state.threshold();
        let shift_sq: f64 = self.shift.iter().map(|s| s * s).sum();
        let mut draw = StdNormal::new(self.seed);
        // Welford accumulation of the weighted indicator.
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut count = 0usize;
        let mut failures = 0usize;
        let mut quarantined = 0usize;
        let mut remaining = self.n;
        while remaining > 0 {
            let m = remaining.min(self.batch);
            let points: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..d)
                        .map(|k| self.shift[k] + draw.next())
                        .collect::<Vec<f64>>()
                })
                .collect();
            let ys = checked_evaluate(limit_state, &points)?;
            quarantined += ys.iter().filter(|y| y.is_nan()).count();
            for (u, &y) in points.iter().zip(&ys) {
                let failed = y >= threshold;
                failures += failed as usize;
                let w = if failed {
                    let dot: f64 = u.iter().zip(&self.shift).map(|(a, b)| a * b).sum();
                    (-dot + 0.5 * shift_sq).exp()
                } else {
                    0.0
                };
                count += 1;
                let delta = w - mean;
                mean += delta / count as f64;
                m2 += delta * (w - mean);
            }
            remaining -= m;
        }
        let p = mean;
        let var = m2 / (count.max(2) - 1) as f64;
        let cov = if p > 0.0 {
            (var / count as f64).sqrt() / p
        } else {
            f64::INFINITY
        };
        Ok(FailureEstimate {
            probability: p,
            cov,
            n_evaluations: self.n,
            levels: vec![LevelStats {
                threshold,
                conditional_probability: failures as f64 / self.n as f64,
                acceptance_rate: f64::NAN,
                gamma: 0.0,
                n_chains: 0,
                n_samples: self.n,
                quarantined,
            }],
            quarantined,
        })
    }
}

/// Evaluates a batch and validates the output length.
pub(crate) fn checked_evaluate(
    limit_state: &mut dyn LimitState,
    points: &[Vec<f64>],
) -> Result<Vec<f64>, ReliabilityError> {
    let ys = limit_state.evaluate(points)?;
    if ys.len() != points.len() {
        return Err(ReliabilityError::Evaluation(format!(
            "limit state returned {} responses for {} points",
            ys.len(),
            points.len()
        )));
    }
    Ok(ys)
}

/// [`checked_evaluate`] through the truncated (intermediate-exit) path.
pub(crate) fn checked_evaluate_truncated(
    limit_state: &mut dyn LimitState,
    points: &[Vec<f64>],
    exit: f64,
) -> Result<Vec<f64>, ReliabilityError> {
    let ys = limit_state.evaluate_truncated(points, exit)?;
    if ys.len() != points.len() {
        return Err(ReliabilityError::Evaluation(format!(
            "limit state returned {} truncated responses for {} points",
            ys.len(),
            points.len()
        )));
    }
    Ok(ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Y(u) = u₀`, except every `stride`-th evaluation is quarantined
    /// (`NaN`).
    struct SpottyState {
        stride: usize,
        evaluated: usize,
    }

    impl LimitState for SpottyState {
        fn dim(&self) -> usize {
            1
        }
        fn threshold(&self) -> f64 {
            1.0
        }
        fn evaluate(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, ReliabilityError> {
            Ok(points
                .iter()
                .map(|u| {
                    let k = self.evaluated;
                    self.evaluated += 1;
                    if k.is_multiple_of(self.stride) {
                        f64::NAN
                    } else {
                        u[0]
                    }
                })
                .collect())
        }
    }

    #[test]
    fn monte_carlo_counts_quarantined_responses() {
        let mut ls = SpottyState {
            stride: 10,
            evaluated: 0,
        };
        let est = MonteCarloEstimator::new(500, 3).estimate(&mut ls).unwrap();
        assert_eq!(est.quarantined, 50);
        assert_eq!(est.levels[0].quarantined, 50);
        assert_eq!(est.n_evaluations, 500);
        // NaN responses count as "not failed": p stays a valid probability.
        assert!(est.probability >= 0.0 && est.probability <= 1.0);
    }

    #[test]
    fn importance_sampling_counts_quarantined_responses() {
        let mut ls = SpottyState {
            stride: 25,
            evaluated: 0,
        };
        let est = ImportanceSamplingEstimator::new(500, 3, vec![1.0])
            .estimate(&mut ls)
            .unwrap();
        assert_eq!(est.quarantined, 20);
        assert_eq!(est.levels[0].quarantined, 20);
    }

    #[test]
    fn clean_runs_report_zero_quarantined() {
        let mut ls = SpottyState {
            stride: usize::MAX,
            evaluated: 1, // never hits k % stride == 0
        };
        let est = MonteCarloEstimator::new(100, 3).estimate(&mut ls).unwrap();
        assert_eq!(est.quarantined, 0);
    }
}
