//! End-to-end tests of the surrogate fast path against the real coupled
//! solver: training through the batched ensemble engine, error-controlled
//! serving with full-solver fallback, and bit-determinism across worker
//! thread counts — plus a property test of the serving rule over an
//! analytic evaluator.

use etherm_core::{
    run_ensemble, CompiledModel, CoreError, ElectrothermalModel, EnsembleOptions, FullSolve,
    QoiEvaluator, Scenario, Session, SolveCounters, SolverOptions, TransientSolution,
};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm_materials::{library, MaterialTable};
use etherm_reliability::{train_surrogates, SurrogateTrainingPlan, SurrogateWithFallback};
use etherm_uq::{Distribution, Normal, Surrogate, SurrogateOptions};
use proptest::prelude::*;
use std::sync::Arc;

/// Mean and scatter of the uncertain wire lengths (m).
const MU: f64 = 1.5e-3;
const SIGMA: f64 = 1.0e-4;

/// A driven epoxy block with two copper wires across it — the smallest
/// model with a 2-dimensional germ.
fn two_wire_model() -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 2e-3, 4).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
        Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
    for (name, y) in [("w0", 0.0), ("w1", 1e-3)] {
        let wire = etherm_bondwire::BondWire::new(name, MU, 25.4e-6, library::copper()).unwrap();
        model
            .add_wire(wire, (0.0, y, 0.5e-3), (2e-3, y, 0.5e-3))
            .unwrap();
    }
    for w in 0..2 {
        let a = model.wires()[w].node_a;
        let b = model.wires()[w].node_b;
        model.set_electric_potential(&[a], 0.02);
        model.set_electric_potential(&[b], -0.02);
    }
    model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
    model
}

/// Sample = the two wire lengths; QoIs = the two end-of-transient wire
/// temperatures.
#[derive(Debug, Clone)]
struct LengthScenario;

impl Scenario for LengthScenario {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        session.set_wire_length(0, sample[0])?;
        session.set_wire_length(1, sample[1])
    }
    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        let sol = session.run_transient(2.0, 4, &[])?;
        Ok(qoi(&sol))
    }
}

impl etherm_core::BatchScenario for LengthScenario {
    fn t_end(&self) -> f64 {
        2.0
    }
    fn n_steps(&self) -> usize {
        4
    }
    fn qoi(&self, solution: &TransientSolution) -> Vec<f64> {
        qoi(solution)
    }
}

fn qoi(sol: &TransientSolution) -> Vec<f64> {
    vec![
        *sol.wire_series(0).last().unwrap(),
        *sol.wire_series(1).last().unwrap(),
    ]
}

fn marginals() -> Vec<Box<dyn Distribution>> {
    vec![
        Box::new(Normal::new(MU, SIGMA).unwrap()),
        Box::new(Normal::new(MU, SIGMA).unwrap()),
    ]
}

fn options(n_threads: usize) -> EnsembleOptions {
    EnsembleOptions {
        n_threads,
        ..EnsembleOptions::default()
    }
}

#[test]
fn training_is_deterministic_for_any_thread_count() {
    let compiled = Arc::new(CompiledModel::compile(two_wire_model(), SolverOptions::fast()).unwrap());
    let plan = SurrogateTrainingPlan::new(40, 7);
    let fingerprint = |n_threads: usize| {
        let t = train_surrogates(&compiled, &LengthScenario, &marginals(), &plan, &options(n_threads))
            .expect("train");
        assert_eq!(t.surrogates.len(), 2, "one surrogate per QoI");
        assert_eq!(t.quarantined, 0);
        assert!(t.counters.thermal_solves > 0, "training paid no solves");
        t.surrogates
            .iter()
            .map(|s| format!("{:?} {:?}", s.model().coefficients(), s.cv_error()))
            .collect::<Vec<_>>()
            .join("|")
    };
    let reference = fingerprint(1);
    assert_eq!(reference, fingerprint(2));
    assert_eq!(reference, fingerprint(4));
}

#[test]
fn served_answers_stay_within_tolerance_of_full_solves() {
    let compiled = Arc::new(CompiledModel::compile(two_wire_model(), SolverOptions::fast()).unwrap());
    let trained = train_surrogates(
        &compiled,
        &LengthScenario,
        &marginals(),
        &SurrogateTrainingPlan::new(40, 7),
        &options(1),
    )
    .expect("train");
    let cv = trained
        .surrogates
        .iter()
        .map(Surrogate::cv_error)
        .fold(0.0f64, f64::max);
    assert!(cv > 0.0, "the solver response is not exactly polynomial");
    let tolerance = 4.0 * cv;

    // In-design batch (germ within the training hull) plus one extreme
    // point whose inflated error estimate must force a full solve.
    let b0 = trained.surrogates[0].design_bounds()[0];
    let mut batch: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let z0 = -1.5 + 0.25 * i as f64;
            let z1 = 1.5 - 0.25 * i as f64;
            vec![MU + SIGMA * z0, MU + SIGMA * z1]
        })
        .collect();
    batch.push(vec![MU + SIGMA * 4.0 * b0, MU]);
    assert!(
        trained.surrogates[0].error_estimate(&[4.0 * b0, 0.0]) > tolerance,
        "the far point must be outside serving range"
    );

    let reference = run_ensemble(&compiled, &LengthScenario, &batch, &options(1)).expect("ref");

    let full = FullSolve::new(&compiled, &LengthScenario, 2, options(1));
    let mut sf =
        SurrogateWithFallback::new(full, trained.surrogates.clone(), marginals(), tolerance)
            .expect("wrap");
    let out = sf.evaluate(&batch).expect("evaluate");

    assert!(sf.served() > 0, "nothing was served");
    assert!(sf.full_solves() >= 1, "the far point must fall back");
    assert_eq!(sf.served() + sf.full_solves(), batch.len());
    assert!(sf.max_served_error() <= tolerance);
    let mut worst = 0.0f64;
    for (qoi, reference) in out.iter().zip(&reference.outputs) {
        for (a, b) in qoi.iter().zip(reference) {
            worst = worst.max((a - b).abs());
        }
    }
    assert!(
        worst <= tolerance,
        "served answer drifted {worst} > tolerance {tolerance}"
    );
    assert_eq!(sf.pending_refinement(), sf.full_solves());
}

#[test]
fn serving_pipeline_is_bit_deterministic_across_threads() {
    let compiled = Arc::new(CompiledModel::compile(two_wire_model(), SolverOptions::fast()).unwrap());
    let run = |n_threads: usize| {
        let trained = train_surrogates(
            &compiled,
            &LengthScenario,
            &marginals(),
            &SurrogateTrainingPlan::new(40, 7),
            &options(n_threads),
        )
        .expect("train");
        let tolerance = 4.0 * trained
            .surrogates
            .iter()
            .map(Surrogate::cv_error)
            .fold(0.0f64, f64::max);
        let full = FullSolve::new(&compiled, &LengthScenario, 2, options(n_threads));
        let mut sf =
            SurrogateWithFallback::new(full, trained.surrogates, marginals(), tolerance)
                .expect("wrap");
        let batch: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let z = -2.5 + 0.45 * i as f64;
                vec![MU + SIGMA * z, MU - SIGMA * z]
            })
            .collect();
        let out = sf.evaluate(&batch).expect("evaluate");
        format!("{out:?} served={} solves={}", sf.served(), sf.full_solves())
    };
    let reference = run(1);
    assert_eq!(reference, run(2));
    assert_eq!(reference, run(4));
}

/// Analytic stand-in for the solver, exact and instantaneous — the
/// reference the property test compares served answers against.
struct Analytic {
    cubic: f64,
    evaluated: usize,
}

impl Analytic {
    fn truth(&self, x: &[f64]) -> Vec<f64> {
        vec![x[0] + x[1] * x[1] + self.cubic * x[0].powi(3)]
    }
}

impl QoiEvaluator for Analytic {
    fn dim(&self) -> usize {
        2
    }
    fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        self.evaluated += samples.len();
        Ok(samples.iter().map(|x| self.truth(x)).collect())
    }
    fn full_solves(&self) -> usize {
        self.evaluated
    }
    fn served(&self) -> usize {
        0
    }
    fn counters(&self) -> SolveCounters {
        SolveCounters::default()
    }
}

fn std_marginals() -> Vec<Box<dyn Distribution>> {
    vec![
        Box::new(Normal::new(0.0, 1.0).unwrap()),
        Box::new(Normal::new(0.0, 1.0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The serving rule: whatever the (possibly misspecified) surrogate,
    /// every answer of the fallback tier is either an exact full solve or
    /// a served prediction whose certified error estimate — and hence the
    /// bookkept `max_served_error` — is within tolerance.
    #[test]
    fn every_answer_is_exact_or_certified_within_tolerance(
        cubic in -0.2f64..0.2,
        flat in proptest::collection::vec(-2.0f64..2.0, 2 * 30),
        queries in proptest::collection::vec(-3.5f64..3.5, 2 * 16),
        tolerance in 0.05f64..1.0,
    ) {
        let xi: Vec<Vec<f64>> = flat.chunks(2).map(|p| p.to_vec()).collect();
        let oracle = Analytic { cubic, evaluated: 0 };
        let y: Vec<f64> = xi.iter().map(|p| oracle.truth(p)[0]).collect();
        let surrogate = match Surrogate::fit(&xi, &y, 2, SurrogateOptions::default()) {
            Ok(s) => s,
            // A randomly collinear design is legitimately rejected.
            Err(_) => return Ok(()),
        };
        let mut sf = SurrogateWithFallback::new(
            Analytic { cubic, evaluated: 0 },
            vec![surrogate],
            std_marginals(),
            tolerance,
        )
        .expect("wrap");
        let batch: Vec<Vec<f64>> = queries.chunks(2).map(|p| p.to_vec()).collect();
        let out = sf.evaluate(&batch).expect("evaluate");
        prop_assert_eq!(out.len(), batch.len());
        prop_assert_eq!(sf.served() + sf.full_solves(), batch.len());
        prop_assert!(sf.max_served_error() <= tolerance);
        let oracle = Analytic { cubic, evaluated: 0 };
        for (x, qoi) in batch.iter().zip(&out) {
            // Standard-normal marginals make germ == physical sample, so
            // the serving decision is directly reproducible: a certified
            // point is answered with the prediction bit-for-bit, anything
            // else with the exact oracle.
            let (pred, estimate) = sf.surrogates()[0].predict_with_error(x);
            if estimate <= tolerance && pred.is_finite() {
                prop_assert!((qoi[0] - pred).abs() <= estimate);
                prop_assert_eq!(qoi[0].to_bits(), pred.to_bits());
            } else {
                prop_assert_eq!(qoi[0].to_bits(), oracle.truth(x)[0].to_bits());
            }
        }
    }
}
