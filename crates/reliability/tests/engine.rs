//! End-to-end tests of the reliability engine over the real coupled
//! solver: thread-count bit-determinism, estimator cross-agreement, the
//! early-exit cost advantage, and the fusing-current search with its
//! analytic sanity bounds.

use etherm_bondwire::analytic::{
    allowable_current, onderdonk_fusing_current, preece_fusing_current,
};
use etherm_core::{
    run_ensemble, CompiledModel, CoreError, ElectrothermalModel, EnsembleOptions, FailurePolicy,
    Scenario, Session, SolverOptions, ThresholdObserver,
};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm_materials::{library, MaterialTable};
use etherm_reliability::{
    find_critical_load, find_critical_load_sampled, EnsembleLimitState, FailureEstimator,
    FusingSearchOptions, MonteCarloEstimator, SubsetSimulation,
};
use etherm_uq::{Distribution, TruncatedNormal};
use std::sync::Arc;

const WIRE_DIAMETER: f64 = 25.4e-6;

/// A driven epoxy block with one bond wire; wire length is the uncertain
/// parameter. The drive is a fixed voltage across the wire's attachment
/// nodes, so a *shorter* wire (lower resistance, `P = V²/R`) runs hotter —
/// the failure tail sits at short lengths.
fn wire_model() -> ElectrothermalModel {
    let grid = Grid3::new(
        Axis::uniform(0.0, 2e-3, 4).unwrap(),
        Axis::uniform(0.0, 1e-3, 2).unwrap(),
        Axis::uniform(0.0, 0.5e-3, 1).unwrap(),
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    let mut model = ElectrothermalModel::new(grid, paint, materials).unwrap();
    let wire =
        etherm_bondwire::BondWire::new("w", 1.5e-3, WIRE_DIAMETER, library::copper()).unwrap();
    model
        .add_wire(wire, (0.0, 0.5e-3, 0.5e-3), (2e-3, 0.5e-3, 0.5e-3))
        .unwrap();
    let a = model.wires()[0].node_a;
    let b = model.wires()[0].node_b;
    model.set_electric_potential(&[a], 0.02);
    model.set_electric_potential(&[b], -0.02);
    model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
    model
}

fn compiled() -> Arc<CompiledModel> {
    Arc::new(CompiledModel::compile(wire_model(), SolverOptions::default()).unwrap())
}

/// Scenario: sample = [wire length (m)]; QoI 0 = early-exited peak
/// `max_t T_bw` against `threshold`.
struct LengthScenario {
    t_end: f64,
    n_steps: usize,
    threshold: f64,
}

impl Scenario for LengthScenario {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        session.set_wire_length(0, sample[0])
    }
    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        let mut observer = ThresholdObserver::new(self.threshold);
        let observed =
            session.run_transient_observed(self.t_end, self.n_steps, &[], &mut observer)?;
        Ok(vec![
            observer.peak(),
            (observed.steps_executed + observed.bisection_steps) as f64,
        ])
    }
}

fn length_marginal() -> TruncatedNormal {
    // ~N(1.5 mm, 0.06 mm) truncated well inside the block span.
    TruncatedNormal::new(1.5e-3, 0.06e-3, 1.2e-3, 1.9e-3).unwrap()
}

/// A threshold in the upper response tail of the length scatter, giving a
/// moderate failure probability the 400-sample MC reference can still see.
fn scenario(threshold: f64) -> LengthScenario {
    LengthScenario {
        t_end: 2.0,
        n_steps: 4,
        threshold,
    }
}

#[test]
fn subset_estimate_is_bit_deterministic_for_any_thread_count() {
    let compiled = compiled();
    let threshold = find_tail_threshold(&compiled);
    let scn = scenario(threshold);
    let estimate = |n_threads: usize| {
        let mut ls = EnsembleLimitState::new(
            &compiled,
            &scn,
            vec![Box::new(length_marginal()) as Box<dyn Distribution>],
            threshold,
            EnsembleOptions {
                n_threads,
                ..EnsembleOptions::default()
            },
        );
        SubsetSimulation::new(64, 2016).estimate(&mut ls).unwrap()
    };
    let serial = estimate(1);
    assert!(serial.probability > 0.0 && serial.probability < 1.0);
    assert!(serial.levels.len() >= 2, "calibration should need a ladder");
    for n_threads in [2, 3] {
        let par = estimate(n_threads);
        // Debug formatting is value-exact for f64 (shortest roundtrip) and
        // NaN-tolerant, unlike PartialEq on NaN diagnostics fields.
        assert_eq!(
            format!("{par:?}"),
            format!("{serial:?}"),
            "subset estimate must be bit-identical at {n_threads} threads"
        );
    }
}

/// A length scenario whose samples below `cutoff` fail outright — the
/// stand-in for a solver breakdown the recovery ladder cannot absorb.
struct BrittleLengthScenario {
    inner: LengthScenario,
    cutoff: f64,
}

impl Scenario for BrittleLengthScenario {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        if sample[0] < self.cutoff {
            return Err(CoreError::InvalidModel("injected sample failure".into()));
        }
        self.inner.apply(session, sample)
    }
    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        self.inner.evaluate(session)
    }
}

#[test]
fn quarantined_samples_surface_through_the_estimate() {
    let compiled = compiled();
    let threshold = find_tail_threshold(&compiled);
    let marginal = length_marginal();
    // Fail everything below the ~10th percentile length: the campaign keeps
    // going under quarantine and the estimate must carry the count.
    let scn = BrittleLengthScenario {
        inner: scenario(threshold),
        cutoff: marginal.quantile(0.10),
    };
    let estimate = |n_threads: usize| {
        let mut ls = EnsembleLimitState::new(
            &compiled,
            &scn,
            vec![Box::new(length_marginal()) as Box<dyn Distribution>],
            threshold,
            EnsembleOptions {
                n_threads,
                failure_policy: FailurePolicy::Quarantine { max_failures: 200 },
                ..EnsembleOptions::default()
            },
        );
        let est = MonteCarloEstimator::new(200, 7).estimate(&mut ls).unwrap();
        assert_eq!(ls.quarantined(), est.quarantined);
        est
    };
    let serial = estimate(1);
    assert!(
        serial.quarantined > 0 && serial.quarantined < 200,
        "cutoff at the 10th percentile must quarantine some but not all of \
         200 samples, got {}",
        serial.quarantined
    );
    assert_eq!(serial.levels[0].quarantined, serial.quarantined);
    assert!(serial.probability.is_finite());
    // Quarantine never cancels within tolerance, so the outcome is
    // thread-count independent.
    let par = estimate(3);
    assert_eq!(format!("{par:?}"), format!("{serial:?}"));
}

/// Calibrates a threshold with P(Y ≥ threshold) in a convenient band by
/// probing the response at a high quantile of the length scatter.
fn find_tail_threshold(compiled: &Arc<CompiledModel>) -> f64 {
    let marginal = length_marginal();
    // Response at the ~5th percentile length (short = hot) → p ≈ 5 %.
    let short = marginal.quantile(0.05);
    let scn = scenario(f64::INFINITY);
    let r = run_ensemble(
        compiled,
        &scn,
        &[vec![short]],
        &EnsembleOptions::default(),
    )
    .unwrap();
    r.outputs[0][0]
}

#[test]
fn subset_agrees_with_monte_carlo_and_exits_early() {
    let compiled = compiled();
    let threshold = find_tail_threshold(&compiled);
    let scn = scenario(threshold);
    let marginals = || vec![Box::new(length_marginal()) as Box<dyn Distribution>];

    let mut mc_state = EnsembleLimitState::new(
        &compiled,
        &scn,
        marginals(),
        threshold,
        EnsembleOptions::default(),
    );
    let mc = MonteCarloEstimator::new(400, 7).estimate(&mut mc_state).unwrap();
    assert!(mc.probability > 0.0, "threshold calibration failed");

    let mut ss_state = EnsembleLimitState::new(
        &compiled,
        &scn,
        marginals(),
        threshold,
        EnsembleOptions::default(),
    );
    let ss = SubsetSimulation::new(80, 2016).estimate(&mut ss_state).unwrap();
    assert!(
        ss.agrees_with(&mc, 3.0),
        "subset {} (cov {}) vs MC {} (cov {})",
        ss.probability,
        ss.cov,
        mc.probability,
        mc.cov
    );
    // The engine actually went through the ensemble machinery, batch by
    // batch. (The early-exit solve-count advantage is gated at paper step
    // counts in `bench_failure` — at 4 steps the crossing bisection
    // overhead dominates what an early exit saves.)
    assert!(ss_state.batches() > 1);
    assert!(ss_state.counters().thermal_solves > 0);
}

#[test]
fn fusing_current_search_brackets_and_cross_checks_with_analytic_rules() {
    let compiled = compiled();
    let mut session = Session::new(Arc::clone(&compiled));
    let options = FusingSearchOptions {
        t_end: 2.0,
        n_steps: 4,
        threshold: 360.0,
        scale_lo: 0.25,
        scale_hi: 16.0,
        tol_rel: 2e-2,
        max_iter: 30,
    };
    let critical = find_critical_load(&mut session, &options).unwrap();
    assert!(
        critical.scale > options.scale_lo && critical.scale < options.scale_hi,
        "critical scale {} not interior to the bracket",
        critical.scale
    );
    assert!(critical.bracket.1 - critical.bracket.0 <= options.tol_rel * critical.bracket.1);
    assert!(critical.runs >= 4);
    assert!(critical.early_exits > 0, "failing probes must early-exit");
    assert!(critical.failing_crossing_time.is_some());
    // The session is left at the safe scale.
    assert_eq!(session.drive_scale(), critical.scale);

    // Verify the bracket physically: safe at the returned scale, failing
    // just above the failing end.
    let peak_at = |session: &mut Session, scale: f64| -> f64 {
        session.set_drive_scale(scale).unwrap();
        session.reset();
        let sol = session.run_transient(2.0, 4, &[]).unwrap();
        sol.max_wire_series()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    assert!(peak_at(&mut session, critical.scale) < 360.0);
    assert!(peak_at(&mut session, critical.bracket.1 * 1.05) >= 360.0);

    // Cross-check against `etherm_bondwire::analytic`. (1) The adiabatic
    // Onderdonk melt current over the transient horizon is a hard upper
    // bound: degradation at 360 K must trip long before copper melt.
    // (2) The steady 1-D fin model with ambient pads and an insulated
    // mantle is the textbook analogue of this epoxy-embedded wire; the
    // field-coupled search must land in its neighborhood (the field model
    // runs hotter because its attachment nodes heat up, so its limit is
    // lower — but the same order of magnitude).
    session.set_drive_scale(critical.scale).unwrap();
    session.reset();
    let sol = session.run_transient(2.0, 4, &[]).unwrap();
    let p_wire = *sol.wire_powers[0].last().unwrap();
    let t_wire = *sol.wire_series(0).last().unwrap();
    let wire = &compiled.model().wires()[0].wire;
    let r_wire = wire.resistance(t_wire);
    let i_critical = (p_wire / r_wire).sqrt();
    let area = std::f64::consts::PI / 4.0 * WIRE_DIAMETER * WIRE_DIAMETER;
    let i_onderdonk = onderdonk_fusing_current(area, 2.0, 300.0);
    assert!(
        i_critical > 0.0 && i_critical < i_onderdonk,
        "degradation current {i_critical} A must undercut Onderdonk melt {i_onderdonk} A"
    );
    let i_fin = allowable_current(wire, 300.0, 300.0, 0.0, 360.0, 5.0);
    assert!(
        i_critical > i_fin / 3.0 && i_critical < i_fin * 3.0,
        "field-coupled limit {i_critical} A should be the fin model's order ({i_fin} A)"
    );
    assert!(
        i_critical < i_fin,
        "coupled package (heated pads) must allow less than ambient-pad fin: \
         {i_critical} vs {i_fin}"
    );
    // Preece's steady free-air rule is a diameter-only rule of thumb; just
    // pin its magnitude so the cross-check stays anchored.
    let i_preece = preece_fusing_current(WIRE_DIAMETER);
    assert!(i_preece > 0.2 && i_preece < 0.5);
}

#[test]
fn sampled_fusing_search_tracks_the_threshold_distribution() {
    let compiled = compiled();
    let mut session = Session::new(Arc::clone(&compiled));
    let options = FusingSearchOptions {
        t_end: 2.0,
        n_steps: 4,
        threshold: f64::NAN, // overridden per sample — must never be read
        scale_lo: 0.25,
        scale_hi: 16.0,
        tol_rel: 2e-2,
        max_iter: 30,
    };
    // Mold degradation threshold scattered around 360 K.
    let t_crit = TruncatedNormal::new(360.0, 8.0, 340.0, 380.0).unwrap();
    let probes = [0.1, 0.5, 0.9];
    let sampled =
        find_critical_load_sampled(&mut session, &options, &t_crit, &probes).unwrap();
    assert_eq!(sampled.len(), 3);
    // Realized thresholds are the distribution's quantiles, in probe order.
    for (s, &u) in sampled.iter().zip(&probes) {
        assert_eq!(s.threshold, t_crit.quantile(u));
        assert!(
            s.load.scale > options.scale_lo && s.load.scale < options.scale_hi,
            "critical scale {} not interior to the bracket",
            s.load.scale
        );
    }
    // A hotter allowed threshold can only raise the surviving load: the
    // safe scales must be monotone along the sorted probe points.
    assert!(sampled[0].load.scale <= sampled[1].load.scale);
    assert!(sampled[1].load.scale <= sampled[2].load.scale);
    assert!(sampled[0].load.scale < sampled[2].load.scale);

    // The median probe reproduces the fixed-threshold search bitwise on a
    // fresh session (the sweep itself shares one warm session, which only
    // shapes iteration counts, not the bisection decisions).
    let mut fresh = Session::new(Arc::clone(&compiled));
    let fixed = find_critical_load(
        &mut fresh,
        &FusingSearchOptions {
            threshold: t_crit.quantile(0.5),
            ..options.clone()
        },
    )
    .unwrap();
    assert_eq!(sampled[1].load.scale, fixed.scale);
    assert_eq!(sampled[1].load.bracket, fixed.bracket);

    // Probe points outside (0, 1) are rejected.
    assert!(find_critical_load_sampled(&mut session, &options, &t_crit, &[0.0]).is_err());
    assert!(find_critical_load_sampled(&mut session, &options, &t_crit, &[1.0]).is_err());
}

#[test]
fn fusing_search_saturates_and_rejects_bad_brackets() {
    let compiled = compiled();
    let mut session = Session::new(Arc::clone(&compiled));
    let base = FusingSearchOptions {
        t_end: 2.0,
        n_steps: 4,
        threshold: 360.0,
        scale_lo: 0.1,
        scale_hi: 0.2,
        tol_rel: 1e-2,
        max_iter: 20,
    };
    // Entire bracket safe.
    let safe = find_critical_load(&mut session, &base).unwrap();
    assert_eq!(safe.scale, 0.2);
    assert_eq!(safe.bracket, (0.2, 0.2));
    // Entire bracket failing.
    let all_fail = FusingSearchOptions {
        scale_lo: 20.0,
        scale_hi: 40.0,
        ..base.clone()
    };
    let failing = find_critical_load(&mut session, &all_fail).unwrap();
    assert_eq!(failing.scale, 0.0);
    assert!(failing.failing_crossing_time.is_some());
    // Bad options.
    let bad = FusingSearchOptions {
        scale_hi: 0.05,
        ..base
    };
    assert!(find_critical_load(&mut session, &bad).is_err());
}
