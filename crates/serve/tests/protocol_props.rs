//! Property tests of the NDJSON wire protocol: structured frames round-trip
//! exactly, and arbitrary garbage — malformed JSON, hostile nesting, wrong
//! types — is answered with a structured [`ProtocolError`], never a panic.

use etherm_serve::{
    JobParams, ModelSpec, ProtocolError, Request, RequestClass, Response, SolverProfile, SpecKind,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn class_of(tag: u32) -> RequestClass {
    match tag % 4 {
        0 => RequestClass::WireSizing,
        1 => RequestClass::Fusing,
        2 => RequestClass::Campaign,
        _ => RequestClass::Qoi,
    }
}

fn profile_of(tag: u32) -> SolverProfile {
    match tag % 3 {
        0 => SolverProfile::Default,
        1 => SolverProfile::Uq,
        _ => SolverProfile::Fast,
    }
}

fn spec_of(tag: u32, a: u32, b: u32, c: u32, d: u32) -> ModelSpec {
    let kind = if tag.is_multiple_of(2) {
        SpecKind::Block {
            nx: 1 + a % 16,
            ny: 1 + b % 16,
            nz: 1 + c % 8,
            wire_um: 100 + d % 4900,
        }
    } else {
        SpecKind::Paper {
            xy_um: 200 + a % 1800,
            z_um: 100 + b % 900,
        }
    };
    ModelSpec {
        kind,
        profile: profile_of(tag / 2),
    }
}

/// Printable-ASCII string from a byte vector.
fn ascii(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (32 + b % 95) as char).collect()
}

proptest! {
    /// Every structured request survives serialize → parse unchanged.
    #[test]
    fn request_round_trips(
        // Integers ride in JSON numbers, so the protocol bounds them to
        // f64-exact range: < 2^53.
        id in 1u64..(1u64 << 53),
        seed in 0u64..(1u64 << 53),
        tags in (0u32..1000, 0u32..1000, 0u32..1000, 0u32..1000, 0u32..1000),
        t_end in 1.0e-3f64..10.0,
        n_steps in 1usize..1000,
        n_samples in 1usize..100,
        threshold in 1.0f64..2000.0,
        spread in 0.0f64..0.9,
        samples in vec(vec(-0.5f64..0.5, 1..4), 0..4),
    ) {
        let (t0, t1, t2, t3, t4) = tags;
        let model = spec_of(t0, t1, t2, t3, t4);
        let params = JobParams {
            t_end,
            n_steps,
            n_samples,
            threshold,
            spread,
            samples,
        };
        let requests = vec![
            Request::Hello { version: seed % 1000 },
            Request::Submit { id, class: class_of(t0), model, params, seed },
            Request::Cancel { id },
            Request::Health,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            let parsed = match Request::from_line(&line) {
                Ok(parsed) => parsed,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "round trip failed for {line}: {}", e.message
                ))),
            };
            prop_assert_eq!(parsed, request);
        }
    }

    /// Arbitrary printable input never panics the parser: it parses or
    /// returns a structured error with a message.
    #[test]
    fn garbage_never_panics(bytes in vec(0u8..255, 0..120)) {
        let line = ascii(bytes);
        match Request::from_line(&line) {
            Ok(_) => {}
            Err(ProtocolError { message, .. }) => prop_assert!(!message.is_empty()),
        }
        match Response::from_line(&line) {
            Ok(_) => {}
            Err(ProtocolError { message, .. }) => prop_assert!(!message.is_empty()),
        }
    }

    /// Arbitrary (possibly invalid UTF-8-adjacent) unicode garbage is also
    /// handled structurally.
    #[test]
    fn unicode_garbage_never_panics(points in vec(0u32..0x11_0000, 0..60)) {
        let line: String = points
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        match Request::from_line(&line) {
            Ok(_) => {}
            Err(ProtocolError { message, .. }) => prop_assert!(!message.is_empty()),
        }
    }

    /// JSON-shaped garbage (balanced but semantically wrong) is a
    /// structured error, never a panic: mutate a valid submit line by
    /// splicing garbage into a random position.
    #[test]
    fn mutated_frames_never_panic(
        cut in 0usize..200,
        splice in vec(0u8..255, 0..12),
    ) {
        let valid = Request::Submit {
            id: 3,
            class: RequestClass::WireSizing,
            model: ModelSpec::block_small(),
            params: JobParams::default(),
            seed: 1,
        }
        .to_line();
        let at = cut.min(valid.len());
        // Split at a char boundary (ASCII output, so every byte is one).
        let mutated = format!("{}{}{}", &valid[..at], ascii(splice), &valid[at..]);
        match Request::from_line(&mutated) {
            Ok(_) => {}
            Err(ProtocolError { message, .. }) => prop_assert!(!message.is_empty()),
        }
    }

    /// Deep nesting is rejected with an error, not a stack overflow.
    #[test]
    fn nesting_bombs_rejected(depth in 65usize..300) {
        let line = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        prop_assert!(Request::from_line(&line).is_err());
    }
}
