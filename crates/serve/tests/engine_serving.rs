//! Integration tests of the serving engine: scheduler determinism across
//! worker counts, per-class budget admission, queue-overflow shedding,
//! cancellation, and surrogate routing for QoI requests.
//!
//! All timeouts are `Duration` bounds on channel receives — no wall-clock
//! reads (the `wall-clock` lint covers test files too).

use etherm_serve::{
    ClassBudgets, Engine, ErrorKind, JobParams, ManualClock, ModelSpec, RequestClass, Response,
    ServeConfig, ServeHandle,
};
use etherm_uq::{Surrogate, SurrogateOptions, Uniform};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn engine_with(workers: usize, config: ServeConfig) -> (Arc<Engine>, ServeHandle) {
    let engine = Engine::with_clock(ServeConfig { workers, ..config }, ManualClock::new());
    let handle = ServeHandle::new(Arc::clone(&engine));
    (engine, handle)
}

fn small_params() -> JobParams {
    JobParams {
        t_end: 0.5,
        n_steps: 4,
        n_samples: 3,
        ..JobParams::default()
    }
}

fn terminal(ticket: &etherm_serve::JobTicket) -> Response {
    let mut last = None;
    while let Some(frame) = ticket.next_timeout(WAIT) {
        let done = matches!(
            frame,
            Response::Result { .. }
                | Response::Error { .. }
                | Response::Shed { .. }
                | Response::Cancelled { .. }
        );
        last = Some(frame);
        if done {
            break;
        }
    }
    last.expect("job produced a terminal frame within the timeout")
}

/// The same batch of jobs — every request class, varied seeds — must
/// produce bit-identical QoI vectors whether the engine runs 1, 4 or 8
/// workers. This is the core serving contract: scheduling is invisible.
#[test]
fn results_bit_identical_across_worker_counts() {
    let mut per_worker_count: Vec<BTreeMap<u64, Vec<u64>>> = Vec::new();
    for &workers in &[1usize, 4, 8] {
        let (engine, handle) = engine_with(workers, ServeConfig::default());
        let jobs: Vec<(RequestClass, JobParams, u64)> = vec![
            (RequestClass::WireSizing, small_params(), 7),
            (RequestClass::WireSizing, small_params(), 8),
            (RequestClass::Campaign, small_params(), 9),
            (
                RequestClass::Fusing,
                JobParams {
                    threshold: 301.0,
                    ..small_params()
                },
                10,
            ),
            (
                RequestClass::Qoi,
                JobParams {
                    samples: vec![vec![0.02], vec![-0.03], vec![0.0]],
                    ..small_params()
                },
                11,
            ),
            (RequestClass::WireSizing, small_params(), 12),
        ];
        let tickets: Vec<_> = jobs
            .into_iter()
            .map(|(class, params, seed)| handle.submit(class, ModelSpec::block_small(), params, seed))
            .collect();
        let mut results = BTreeMap::new();
        for ticket in &tickets {
            match terminal(ticket) {
                Response::Result { id, qoi, .. } => {
                    results.insert(id, qoi.iter().map(|x| x.to_bits()).collect::<Vec<u64>>());
                }
                other => panic!("expected result frame, got {other:?}"),
            }
        }
        engine.shutdown_and_join();
        per_worker_count.push(results);
    }
    // ServeHandle assigns ids 1..=6 in submit order for every engine, so
    // the maps line up key-for-key.
    assert_eq!(per_worker_count[0], per_worker_count[1], "1 vs 4 workers");
    assert_eq!(per_worker_count[0], per_worker_count[2], "1 vs 8 workers");
}

/// A request class with an exhausted iteration budget fails with a
/// structured `budget-exhausted` error while a concurrently running
/// well-behaved class completes normally.
#[test]
fn budget_exhaustion_is_structured_and_isolated() {
    let config = ServeConfig {
        budgets: ClassBudgets {
            wire_sizing: 1, // one Krylov iteration: guaranteed exhaustion
            ..ClassBudgets::default()
        },
        ..ServeConfig::default()
    };
    let (engine, handle) = engine_with(2, config);
    let starved = handle.submit(
        RequestClass::WireSizing,
        ModelSpec::block_small(),
        small_params(),
        1,
    );
    let healthy = handle.submit(
        RequestClass::Campaign,
        ModelSpec::block_small(),
        small_params(),
        2,
    );
    match terminal(&starved) {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::BudgetExhausted);
            assert!(message.contains("budget"), "message: {message}");
        }
        other => panic!("expected budget error, got {other:?}"),
    }
    match terminal(&healthy) {
        Response::Result { qoi, .. } => assert_eq!(qoi.len(), 3, "campaign returns mean/max/min"),
        other => panic!("expected result, got {other:?}"),
    }
    engine.shutdown_and_join();
}

/// Overflowing the bounded queue sheds jobs with a structured frame; the
/// admitted jobs still complete, and the health frame accounts for the
/// sheds.
#[test]
fn queue_overflow_sheds_structurally() {
    let config = ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (engine, handle) = engine_with(1, config);
    let tickets: Vec<_> = (0..8)
        .map(|seed| {
            handle.submit(
                RequestClass::Campaign,
                ModelSpec::block_small(),
                small_params(),
                seed,
            )
        })
        .collect();
    let mut completed = 0u64;
    let mut shed = 0u64;
    for ticket in &tickets {
        match terminal(ticket) {
            Response::Result { .. } => completed += 1,
            Response::Shed { reason, .. } => {
                shed += 1;
                assert!(reason.contains("queue"), "reason: {reason}");
            }
            other => panic!("unexpected terminal frame {other:?}"),
        }
    }
    assert_eq!(completed + shed, 8);
    assert!(completed >= 1, "admitted jobs complete");
    assert!(shed >= 1, "a burst past the queue bound must shed");
    match handle.health() {
        Response::Health { shed_total, .. } => assert_eq!(shed_total, shed),
        other => panic!("expected health frame, got {other:?}"),
    }
    engine.shutdown_and_join();
}

/// Cancellation produces a `cancelled` terminal frame, and duplicate ids
/// are refused with a structured error.
#[test]
fn cancel_and_duplicate_ids() {
    let (engine, handle) = engine_with(1, ServeConfig::default());
    // A long campaign so cancel lands mid-run (or while queued).
    let long = JobParams {
        n_samples: 500,
        ..small_params()
    };
    let victim = handle.submit_with_id(
        42,
        RequestClass::Campaign,
        ModelSpec::block_small(),
        long,
        3,
    );
    // Wait for admission, then for the duplicate check, then cancel.
    match victim.next_timeout(WAIT) {
        Some(Response::Accepted { id }) => assert_eq!(id, 42),
        other => panic!("expected accepted frame, got {other:?}"),
    }
    let dup = handle.submit_with_id(
        42,
        RequestClass::WireSizing,
        ModelSpec::block_small(),
        small_params(),
        4,
    );
    match terminal(&dup) {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Invalid),
        other => panic!("duplicate id must be refused, got {other:?}"),
    }
    assert!(handle.cancel(42));
    match terminal(&victim) {
        Response::Cancelled { id } => assert_eq!(id, 42),
        other => panic!("expected cancelled frame, got {other:?}"),
    }
    engine.shutdown_and_join();
}

/// With a surrogate registered at a generous tolerance, `qoi` requests are
/// answered by the surrogate tier; without one they fall back to full
/// solves. Registration must not disturb other classes.
#[test]
fn qoi_routes_through_registered_surrogate() {
    let (engine, handle) = engine_with(2, ServeConfig::default());
    let spec = ModelSpec::block_small();
    let qoi_params = JobParams {
        samples: vec![vec![0.01], vec![-0.02]],
        ..small_params()
    };
    // Before registration: full solves.
    let full = handle.submit(RequestClass::Qoi, spec, qoi_params.clone(), 5);
    match terminal(&full) {
        Response::Result {
            served_by,
            full_solves,
            ..
        } => {
            assert_eq!(served_by, "full");
            assert_eq!(full_solves, 2);
        }
        other => panic!("expected result, got {other:?}"),
    }
    // Train a 1-D surrogate on synthetic data and register it with a huge
    // tolerance so every sample is served.
    let xi: Vec<Vec<f64>> = (0..12).map(|i| vec![-2.0 + i as f64 / 3.0]).collect();
    let y: Vec<f64> = xi.iter().map(|p| 300.0 + p[0]).collect();
    let surrogate = Surrogate::fit(&xi, &y, 1, SurrogateOptions::default()).expect("fit");
    engine
        .register_surrogate(
            &spec,
            vec![surrogate],
            vec![Box::new(Uniform::new(-0.05, 0.05).expect("marginal"))],
            1.0e9,
            0.5,
            4,
        )
        .expect("register surrogate");
    let served = handle.submit(RequestClass::Qoi, spec, qoi_params, 6);
    match terminal(&served) {
        Response::Result {
            served_by, served, ..
        } => {
            assert_eq!(served_by, "surrogate");
            assert_eq!(served, 2, "both samples screened and served");
        }
        other => panic!("expected surrogate result, got {other:?}"),
    }
    engine.shutdown_and_join();
}

/// Registry statistics surface in health: one compile, then cache hits
/// for every further job on the same spec.
#[test]
fn health_reports_registry_and_pool() {
    let (engine, handle) = engine_with(2, ServeConfig::default());
    for seed in 0..3 {
        let t = handle.submit(
            RequestClass::WireSizing,
            ModelSpec::block_small(),
            small_params(),
            seed,
        );
        match terminal(&t) {
            Response::Result { .. } => {}
            other => panic!("expected result, got {other:?}"),
        }
    }
    match handle.health() {
        Response::Health {
            registry_compiles,
            registry_hits,
            models,
            queue_depth,
            ..
        } => {
            assert_eq!(registry_compiles, 1, "one spec, one compile");
            assert_eq!(registry_hits, 2, "two warm jobs hit the cache");
            assert_eq!(queue_depth, 0);
            assert_eq!(models.len(), 1);
            assert_eq!(models[0].jobs_done, 3);
            assert!(!models[0].degraded);
            assert!(models[0].idle_sessions >= 1);
        }
        other => panic!("expected health frame, got {other:?}"),
    }
    engine.shutdown_and_join();
}
