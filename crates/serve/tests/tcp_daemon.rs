//! End-to-end test of the TCP front end: a real socket on an ephemeral
//! port, NDJSON frames both ways, graceful shutdown. Read deadlines are
//! `Duration`-based socket timeouts — no wall-clock reads in test code.

use etherm_serve::daemon::Daemon;
use etherm_serve::{Engine, ManualClock, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read frame");
        assert!(n > 0, "connection closed while expecting a frame");
        line.trim_end().to_string()
    }

    /// Reads frames until one whose "type" is in `terminals`, returning it.
    fn recv_until(&mut self, terminals: &[&str]) -> String {
        loop {
            let line = self.recv();
            if terminals.iter().any(|t| line.contains(&format!("\"type\":\"{t}\""))) {
                return line;
            }
        }
    }
}

#[test]
fn tcp_session_round_trip() {
    let engine = Engine::with_clock(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        ManualClock::new(),
    );
    let daemon = Daemon::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = daemon.local_addr();
    let server = std::thread::spawn(move || daemon.run());

    let mut client = Client::connect(addr);

    // Version handshake.
    client.send("{\"type\":\"hello\", \"version\": 1}");
    let hello = client.recv();
    assert!(hello.contains("\"ok\":true"), "hello: {hello}");

    // Garbage is answered with a structured error, connection stays up.
    client.send("this is not json");
    let err = client.recv();
    assert!(err.contains("\"type\":\"error\""), "garbage: {err}");
    assert!(err.contains("\"kind\":\"invalid\""), "garbage: {err}");

    // Submit a small wire-sizing job and drive it to its result.
    client.send(
        "{\"type\":\"submit\", \"id\": 1, \"class\": \"wire_sizing\", \
         \"model\": {\"kind\": \"block\", \"nx\": 4, \"ny\": 2, \"nz\": 1, \
         \"wire_um\": 1500, \"profile\": \"default\"}, \
         \"params\": {\"t_end\": 0.5, \"n_steps\": 4}, \"seed\": 7}",
    );
    let accepted = client.recv();
    assert!(accepted.contains("\"type\":\"accepted\""), "{accepted}");
    let result = client.recv_until(&["result", "error", "shed", "cancelled"]);
    assert!(result.contains("\"type\":\"result\""), "terminal: {result}");
    assert!(result.contains("\"qoi\":["), "terminal: {result}");

    // Health over the wire.
    client.send("{\"type\":\"health\"}");
    let health = client.recv_until(&["health"]);
    assert!(health.contains("\"registry_compiles\":1"), "{health}");

    // Shutdown ends the server loop.
    client.send("{\"type\":\"shutdown\"}");
    server.join().expect("server thread joins");
    assert!(engine.is_shutting_down());
}

#[test]
fn tcp_version_mismatch_flagged() {
    let engine = Engine::with_clock(ServeConfig::default(), ManualClock::new());
    let daemon = Daemon::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = daemon.local_addr();
    let server = std::thread::spawn(move || daemon.run());

    let mut client = Client::connect(addr);
    client.send("{\"type\":\"hello\", \"version\": 999}");
    let hello = client.recv();
    assert!(hello.contains("\"ok\":false"), "hello: {hello}");

    client.send("{\"type\":\"shutdown\"}");
    server.join().expect("server thread joins");
}
