//! The in-process client: submit jobs to an [`Engine`] without a socket.
//!
//! `ServeHandle` is what library embedders and the bench harness use; the
//! TCP daemon is the same engine behind a line protocol. A submission
//! yields a [`JobTicket`] whose receiver delivers the job's frames in
//! order, ending with exactly one terminal frame (`result`, `error`,
//! `shed` or `cancelled`).

use crate::engine::Engine;
use crate::protocol::{JobParams, RequestClass, Response};
use crate::spec::ModelSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// An in-process client for an [`Engine`].
#[derive(Clone)]
pub struct ServeHandle {
    engine: Arc<Engine>,
    next_id: Arc<AtomicU64>,
}

impl ServeHandle {
    /// A handle over `engine`. Handles may be cloned freely; auto-assigned
    /// job ids stay unique across clones.
    pub fn new(engine: Arc<Engine>) -> Self {
        ServeHandle {
            engine,
            next_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The engine behind this handle.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Submits a job with an auto-assigned id.
    pub fn submit(
        &self,
        class: RequestClass,
        spec: ModelSpec,
        params: JobParams,
        seed: u64,
    ) -> JobTicket {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.submit_with_id(id, class, spec, params, seed)
    }

    /// Submits a job under a caller-chosen id (must be unique among active
    /// jobs and positive).
    pub fn submit_with_id(
        &self,
        id: u64,
        class: RequestClass,
        spec: ModelSpec,
        params: JobParams,
        seed: u64,
    ) -> JobTicket {
        let rx = self.engine.submit(id, class, spec, params, seed);
        JobTicket { id, rx }
    }

    /// Requests cancellation of an active job.
    pub fn cancel(&self, id: u64) -> bool {
        self.engine.cancel(id)
    }

    /// The current health frame.
    pub fn health(&self) -> Response {
        self.engine.health()
    }
}

/// The frame stream of one submitted job.
pub struct JobTicket {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl JobTicket {
    /// The job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The next frame, blocking until one arrives. `None` once the stream
    /// is exhausted (after the terminal frame).
    pub fn next(&self) -> Option<Response> {
        self.rx.recv().ok()
    }

    /// Like [`next`](Self::next) with an upper bound on the wait.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Response> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Blocks until the terminal frame (`result`, `error`, `shed` or
    /// `cancelled`), discarding progress frames. `None` if the stream
    /// closed without one (engine torn down mid-job).
    pub fn wait_terminal(&self) -> Option<Response> {
        while let Some(frame) = self.next() {
            if is_terminal(&frame) {
                return Some(frame);
            }
        }
        None
    }

    /// Collects every frame through the terminal one.
    pub fn collect_frames(&self) -> Vec<Response> {
        let mut frames = Vec::new();
        while let Some(frame) = self.next() {
            let done = is_terminal(&frame);
            frames.push(frame);
            if done {
                break;
            }
        }
        frames
    }
}

fn is_terminal(frame: &Response) -> bool {
    matches!(
        frame,
        Response::Result { .. }
            | Response::Error { .. }
            | Response::Shed { .. }
            | Response::Cancelled { .. }
    )
}
