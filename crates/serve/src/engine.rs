//! The serving engine: admission control, per-model session pools, and a
//! work-stealing scheduler over `std::thread` workers.
//!
//! # Determinism contract
//!
//! Every job's result depends only on `(model spec, class, params, seed)`.
//! The scheduler guarantees this by construction:
//!
//! * a job runs on exactly one worker, sequentially, on a session that is
//!   [`etherm_core::Session::reset`] to the fresh-simulator state (nominal
//!   wire lengths, unit drive, no cached preconditioners) in the job
//!   prologue — nothing solved by previous tenants can leak in;
//! * "warm" reuse is *allocation* reuse (stamping templates, Krylov
//!   workspaces, pooled sessions, the shared compiled model), never
//!   numerical state;
//! * all sampling is from the request seed through a splitmix64 stream.
//!
//! Hence responses are bit-identical for any worker count or interleaving
//! — the property `bench_serve` gates on.
//!
//! # Admission control
//!
//! Three gates, all answered with structured frames rather than failure:
//! a bounded queue (overflow → `shed`), a per-request-class Krylov
//! iteration budget (`Session::set_iteration_budget`; exhaustion → an
//! `error` frame with kind `budget-exhausted`), and per-model health (a
//! merged [`RecoveryLedger`] past the degradation threshold → `shed`).

use crate::clock::Clock;
use crate::protocol::{
    ErrorKind, JobParams, ModelHealth, ProtocolError, Request, RequestClass, Response,
    PROTOCOL_VERSION,
};
use crate::registry::ModelRegistry;
use crate::spec::ModelSpec;
use etherm_core::{
    CompiledModel, CoreError, ObserverAction, QoiEvaluator, RecoveryLedger, Session, StepObserver,
    StepRecord,
};
use etherm_reliability::{ReliabilityError, SurrogateWithFallback};
use etherm_uq::{Distribution, Surrogate};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Recovers from mutex poisoning instead of panicking (the engine sits in
/// the `no-panic-unwrap` perimeter; shared state stays usable after a
/// worker panic elsewhere).
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Per-request-class Krylov iteration budgets (per transient run inside a
/// job; `0` = unlimited). The admission-control knob: one pathological
/// request aborts with `budget-exhausted` instead of starving the pool.
#[derive(Debug, Clone, Copy)]
pub struct ClassBudgets {
    pub wire_sizing: usize,
    pub fusing: usize,
    pub campaign: usize,
    pub qoi: usize,
}

impl Default for ClassBudgets {
    fn default() -> Self {
        // Generous ceilings: far above anything a healthy run needs at
        // paper-mesh sizes, low enough to cut off runaway requests.
        ClassBudgets {
            wire_sizing: 200_000,
            fusing: 500_000,
            campaign: 2_000_000,
            qoi: 200_000,
        }
    }
}

impl ClassBudgets {
    fn for_class(&self, class: RequestClass) -> usize {
        match class {
            RequestClass::WireSizing => self.wire_sizing,
            RequestClass::Fusing => self.fusing,
            RequestClass::Campaign => self.campaign,
            RequestClass::Qoi => self.qoi,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bound on jobs queued across all workers; overflow is shed.
    pub queue_capacity: usize,
    /// Compiled models kept in the LRU registry.
    pub registry_capacity: usize,
    /// Per-class iteration budgets.
    pub budgets: ClassBudgets,
    /// Recovery-ledger events (sum over all rungs) after which a model is
    /// marked degraded and new work on it is shed.
    pub degrade_after: usize,
    /// Progress frames emitted per single-transient job (campaigns emit
    /// one frame per sample instead).
    pub progress_points: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            registry_capacity: 4,
            budgets: ClassBudgets::default(),
            degrade_after: 64,
            progress_points: 4,
        }
    }
}

/// One queued unit of work.
struct Job {
    id: u64,
    class: RequestClass,
    spec: ModelSpec,
    hash: u64,
    params: JobParams,
    seed: u64,
    cancel: Arc<AtomicBool>,
    tx: mpsc::Sender<Response>,
}

/// The outcome of executing a job body.
struct JobOutput {
    qoi: Vec<f64>,
    served_by: &'static str,
    full_solves: u64,
    served: u64,
    iterations: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    idle: Vec<Session>,
    created: u64,
    jobs_done: u64,
    ledger: RecoveryLedger,
}

/// Per-model serving state: the session pool, merged health ledger, and
/// the optionally registered surrogate tier.
struct ModelState {
    compiled: Arc<CompiledModel>,
    pool: Mutex<PoolInner>,
    surrogate: Mutex<Option<SurrogateWithFallback<ServeFullSolve>>>,
}

impl ModelState {
    fn new(compiled: Arc<CompiledModel>) -> Self {
        ModelState {
            compiled,
            pool: Mutex::new(PoolInner::default()),
            surrogate: Mutex::new(None),
        }
    }

    /// Checks a session out of the pool (or creates one) and restores the
    /// fresh-simulator state: reset solver caches, nominal wire lengths,
    /// unit drive, zeroed counters. This prologue is what makes pooled
    /// sessions indistinguishable from new ones, bit for bit.
    fn checkout(&self) -> Result<Session, CoreError> {
        let mut session = {
            let mut pool = lock_or_recover(&self.pool);
            match pool.idle.pop() {
                Some(s) => s,
                None => {
                    pool.created += 1;
                    Session::new(Arc::clone(&self.compiled))
                }
            }
        };
        session.reset();
        session.reset_counters();
        session.set_drive_scale(1.0)?;
        let nominal: Vec<f64> = self
            .compiled
            .model()
            .wires()
            .iter()
            .map(|w| w.wire.length())
            .collect();
        for (j, &length) in nominal.iter().enumerate() {
            session.set_wire_length(j, length)?;
        }
        Ok(session)
    }

    /// Returns a session to the pool, folding its recovery ledger into the
    /// model's health.
    fn checkin(&self, session: Session) {
        let mut pool = lock_or_recover(&self.pool);
        pool.ledger.merge(&session.recovery_ledger());
        pool.jobs_done += 1;
        pool.idle.push(session);
    }

    fn degraded(&self, degrade_after: usize) -> bool {
        let pool = lock_or_recover(&self.pool);
        let l = &pool.ledger;
        let events = l.solve_retries
            + l.forced_refreshes
            + l.precond_fallbacks
            + l.dt_halvings;
        events >= degrade_after
    }

    fn health(&self, hash: u64, degrade_after: usize) -> ModelHealth {
        let degraded = self.degraded(degrade_after);
        let pool = lock_or_recover(&self.pool);
        ModelHealth {
            model: format!("{hash:016x}"),
            jobs_done: pool.jobs_done,
            idle_sessions: pool.idle.len() as u64,
            sessions_created: pool.created,
            degraded,
            ledger: pool.ledger,
        }
    }
}

struct Shared {
    config: ServeConfig,
    registry: ModelRegistry,
    clock: Arc<dyn Clock>,
    started_ms: u64,
    models: Mutex<BTreeMap<u64, Arc<ModelState>>>,
    /// One deque per worker; `submit` routes by model-hash affinity, idle
    /// workers steal from the back of their siblings.
    queues: Vec<Mutex<VecDeque<Job>>>,
    queued: AtomicUsize,
    shed_total: AtomicU64,
    /// Active job ids → cancel flags (uniqueness + cancellation).
    active: Mutex<BTreeMap<u64, Arc<AtomicBool>>>,
    shutdown: AtomicBool,
    wake_mx: Mutex<()>,
    wake_cv: Condvar,
}

/// The multi-tenant serving engine. Create once, share via [`Arc`]; the
/// in-process [`crate::ServeHandle`] and the TCP daemon are both thin
/// frame adapters over it.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Starts the engine with its worker threads, using the given clock.
    pub fn with_clock(config: ServeConfig, clock: Arc<dyn Clock>) -> Arc<Engine> {
        let workers = config.workers.max(1);
        let registry = ModelRegistry::new(config.registry_capacity);
        let started_ms = clock.now_millis();
        let shared = Arc::new(Shared {
            config: ServeConfig { workers, ..config },
            registry,
            clock,
            started_ms,
            models: Mutex::new(BTreeMap::new()),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            shed_total: AtomicU64::new(0),
            active: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            wake_mx: Mutex::new(()),
            wake_cv: Condvar::new(),
        });
        let engine = Arc::new(Engine {
            shared: Arc::clone(&shared),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || worker_loop(&shared, index)));
        }
        *lock_or_recover(&engine.workers) = handles;
        engine
    }

    /// Submits a job; all frames for it (from `accepted`/`shed` to the
    /// terminal frame) arrive on the returned receiver in order.
    pub fn submit(
        &self,
        id: u64,
        class: RequestClass,
        spec: ModelSpec,
        params: JobParams,
        seed: u64,
    ) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        let s = &self.shared;
        let refuse = |tx: &mpsc::Sender<Response>, message: &str| {
            let _ = tx.send(Response::Error {
                id,
                kind: ErrorKind::Invalid,
                message: message.to_string(),
            });
        };
        if id == 0 {
            refuse(&tx, "job id must be a positive integer");
            return rx;
        }
        if s.shutdown.load(Ordering::SeqCst) {
            refuse(&tx, "engine is shutting down");
            return rx;
        }
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let mut active = lock_or_recover(&s.active);
            if active.contains_key(&id) {
                drop(active);
                refuse(&tx, "job id already active");
                return rx;
            }
            active.insert(id, Arc::clone(&cancel));
        }
        let hash = spec.content_hash();
        // Health gate: a degraded model sheds new work.
        let degraded = lock_or_recover(&s.models)
            .get(&hash)
            .is_some_and(|m| m.degraded(s.config.degrade_after));
        if degraded {
            self.shed(id, &tx, "model degraded: recovery ledger above threshold");
            return rx;
        }
        // Bounded queue: overflow sheds rather than queueing unboundedly.
        if s.queued.load(Ordering::SeqCst) >= s.config.queue_capacity {
            self.shed(id, &tx, "queue full");
            return rx;
        }
        let _ = tx.send(Response::Accepted { id });
        let job = Job {
            id,
            class,
            spec,
            hash,
            params,
            seed,
            cancel,
            tx,
        };
        s.queued.fetch_add(1, Ordering::SeqCst);
        let target = (hash % s.config.workers as u64) as usize;
        lock_or_recover(&s.queues[target]).push_back(job);
        s.wake_cv.notify_all();
        rx
    }

    fn shed(&self, id: u64, tx: &mpsc::Sender<Response>, reason: &str) {
        let s = &self.shared;
        s.shed_total.fetch_add(1, Ordering::SeqCst);
        lock_or_recover(&s.active).remove(&id);
        let _ = tx.send(Response::Shed {
            id,
            reason: reason.to_string(),
            queue_depth: s.queued.load(Ordering::SeqCst) as u64,
        });
    }

    /// Requests cancellation of an active job (best effort: a job that
    /// already completed keeps its result).
    pub fn cancel(&self, id: u64) -> bool {
        match lock_or_recover(&self.shared.active).get(&id) {
            Some(flag) => {
                flag.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// The health frame: uptime, queue depth, shed count, registry stats
    /// and per-model pool/ledger state.
    pub fn health(&self) -> Response {
        let s = &self.shared;
        let models = lock_or_recover(&s.models)
            .iter()
            .map(|(&hash, state)| state.health(hash, s.config.degrade_after))
            .collect();
        Response::Health {
            version: PROTOCOL_VERSION,
            uptime_ms: s.clock.now_millis().saturating_sub(s.started_ms),
            queue_depth: s.queued.load(Ordering::SeqCst) as u64,
            shed_total: s.shed_total.load(Ordering::SeqCst),
            registry_compiles: s.registry.compiles(),
            registry_hits: s.registry.hits(),
            models,
        }
    }

    /// Registers a trained surrogate tier for `spec`'s model: `qoi`-class
    /// requests on it are answered by the surrogate when its error
    /// estimate clears `tolerance`, falling back to full solves otherwise.
    /// The fallback is a dedicated [`ServeFullSolve`] session evaluating
    /// the peak-temperature QoI over `t_end`/`n_steps`; auto-refine stays
    /// off so answers are history-independent.
    ///
    /// # Errors
    ///
    /// Compilation errors for the spec, or
    /// [`ReliabilityError::InvalidOptions`] from dimension/tolerance
    /// validation (mapped to [`CoreError::InvalidModel`]).
    pub fn register_surrogate(
        &self,
        spec: &ModelSpec,
        surrogates: Vec<Surrogate>,
        marginals: Vec<Box<dyn Distribution>>,
        tolerance: f64,
        t_end: f64,
        n_steps: usize,
    ) -> Result<(), CoreError> {
        let s = &self.shared;
        let compiled = s.registry.get_or_compile(spec)?;
        let state = model_state(s, spec.content_hash(), &compiled);
        let fallback = ServeFullSolve::new(Arc::clone(&compiled), t_end, n_steps);
        let tier = SurrogateWithFallback::new(fallback, surrogates, marginals, tolerance)
            .map_err(|e: ReliabilityError| CoreError::InvalidModel(e.to_string()))?;
        *lock_or_recover(&state.surrogate) = Some(tier);
        Ok(())
    }

    /// Signals shutdown and joins every worker. Queued jobs receive
    /// `cancelled` frames.
    pub fn shutdown_and_join(&self) {
        let s = &self.shared;
        s.shutdown.store(true, Ordering::SeqCst);
        s.wake_cv.notify_all();
        let handles = std::mem::take(&mut *lock_or_recover(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Answers a parsed request frame (the shared front half of the TCP
    /// daemon and the in-process handle). `Submit` returns the job's frame
    /// stream; everything else returns a single immediate response.
    pub fn handle_request(&self, request: Request) -> RequestOutcome {
        match request {
            Request::Hello { version } => RequestOutcome::One(Response::Hello {
                version: PROTOCOL_VERSION,
                ok: version == PROTOCOL_VERSION,
            }),
            Request::Submit {
                id,
                class,
                model,
                params,
                seed,
            } => RequestOutcome::Stream(self.submit(id, class, model, params, seed)),
            Request::Cancel { id } => {
                if self.cancel(id) {
                    RequestOutcome::None
                } else {
                    RequestOutcome::One(Response::Error {
                        id,
                        kind: ErrorKind::Invalid,
                        message: "no active job with this id".to_string(),
                    })
                }
            }
            Request::Health => RequestOutcome::One(self.health()),
            Request::Shutdown => {
                self.shutdown_and_join();
                RequestOutcome::Shutdown
            }
        }
    }

    /// The structured answer to an unparseable frame.
    pub fn protocol_error_response(e: &ProtocolError) -> Response {
        Response::Error {
            id: 0,
            kind: ErrorKind::Invalid,
            message: e.message.clone(),
        }
    }
}

/// What [`Engine::handle_request`] produced.
pub enum RequestOutcome {
    /// A single immediate response.
    One(Response),
    /// A stream of frames for a submitted job.
    Stream(mpsc::Receiver<Response>),
    /// Cancel acknowledged; the outcome arrives on the job's own stream.
    None,
    /// The engine has shut down.
    Shutdown,
}

fn model_state(shared: &Shared, hash: u64, compiled: &Arc<CompiledModel>) -> Arc<ModelState> {
    let mut models = lock_or_recover(&shared.models);
    match models.get(&hash) {
        Some(state) => Arc::clone(state),
        None => {
            let state = Arc::new(ModelState::new(Arc::clone(compiled)));
            models.insert(hash, Arc::clone(&state));
            state
        }
    }
}

// ---------------------------------------------------------------------------
// Worker loop and job execution
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    loop {
        if let Some(job) = pop_job(shared, index) {
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            run_job(shared, &job);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let guard = lock_or_recover(&shared.wake_mx);
        if shared.queued.load(Ordering::SeqCst) > 0 || shared.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        // The timeout is a safety net against lost wakeups, not a pacing
        // mechanism; all signal paths notify the condvar.
        let _ = shared.wake_cv.wait_timeout(guard, Duration::from_millis(50));
    }
    // Drain after shutdown: queued jobs are answered, not dropped.
    while let Some(job) = pop_job(shared, index) {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        lock_or_recover(&shared.active).remove(&job.id);
        let _ = job.tx.send(Response::Cancelled { id: job.id });
    }
}

/// Pops from the worker's own queue front, else steals from a sibling's
/// back (classic work-stealing: owner takes LIFO-adjacent work from the
/// front, thieves take from the far end to minimize contention).
fn pop_job(shared: &Shared, index: usize) -> Option<Job> {
    if let Some(job) = lock_or_recover(&shared.queues[index]).pop_front() {
        return Some(job);
    }
    let n = shared.queues.len();
    for offset in 1..n {
        let victim = (index + offset) % n;
        if let Some(job) = lock_or_recover(&shared.queues[victim]).pop_back() {
            return Some(job);
        }
    }
    None
}

fn run_job(shared: &Shared, job: &Job) {
    let finish = |frame: Response| {
        lock_or_recover(&shared.active).remove(&job.id);
        let _ = job.tx.send(frame);
    };
    if job.cancel.load(Ordering::SeqCst) {
        finish(Response::Cancelled { id: job.id });
        return;
    }
    let compiled = match shared.registry.get_or_compile(&job.spec) {
        Ok(compiled) => compiled,
        Err(e) => {
            finish(Response::Error {
                id: job.id,
                kind: ErrorKind::Invalid,
                message: format!("model compilation failed: {e}"),
            });
            return;
        }
    };
    let state = model_state(shared, job.hash, &compiled);
    let mut session = match state.checkout() {
        Ok(session) => session,
        Err(e) => {
            finish(Response::Error {
                id: job.id,
                kind: ErrorKind::Internal,
                message: format!("session prologue failed: {e}"),
            });
            return;
        }
    };
    session.set_iteration_budget(Some(shared.config.budgets.for_class(job.class)));
    let outcome = execute_class(shared, job, &mut session, &state);
    session.set_iteration_budget(None);
    state.checkin(session);
    if job.cancel.load(Ordering::SeqCst) {
        finish(Response::Cancelled { id: job.id });
        return;
    }
    match outcome {
        Ok(out) => finish(Response::Result {
            id: job.id,
            qoi: out.qoi,
            served_by: out.served_by.to_string(),
            full_solves: out.full_solves,
            served: out.served,
            iterations: out.iterations,
        }),
        Err(e) => finish(error_response(job.id, &e)),
    }
}

fn error_response(id: u64, e: &CoreError) -> Response {
    // Classify on the root cause: the recovery ladder wraps the tripping
    // error in `StepFailed` (and ensembles in `EnsembleFailed`) context.
    let mut root = e;
    loop {
        match root {
            CoreError::StepFailed { source, .. } => root = source,
            CoreError::EnsembleFailed { source, .. } => {
                // An ensemble abort is quarantine-shaped unless the root
                // trip was the budget.
                if find_budget(source).is_some() {
                    root = source;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let kind = match root {
        CoreError::BudgetExhausted { .. } => ErrorKind::BudgetExhausted,
        CoreError::EnsembleFailed { .. } => ErrorKind::Quarantined,
        CoreError::InvalidModel(_) => ErrorKind::Invalid,
        _ => ErrorKind::Internal,
    };
    Response::Error {
        id,
        kind,
        message: e.to_string(),
    }
}

/// Finds a `BudgetExhausted` anywhere in the error chain.
fn find_budget(e: &CoreError) -> Option<&CoreError> {
    match e {
        CoreError::BudgetExhausted { .. } => Some(e),
        CoreError::StepFailed { source, .. } | CoreError::EnsembleFailed { source, .. } => {
            find_budget(source)
        }
        _ => None,
    }
}

/// Observer threading cancellation, optional threshold early exit and
/// progress frames through a transient run.
struct RunObserver<'a> {
    job: &'a Job,
    n_steps: usize,
    every: usize,
    threshold: Option<f64>,
    crossed: bool,
    emit_progress: bool,
}

impl<'a> RunObserver<'a> {
    fn new(job: &'a Job, n_steps: usize, progress_points: usize) -> Self {
        RunObserver {
            job,
            n_steps,
            every: (n_steps / progress_points.max(1)).max(1),
            threshold: None,
            crossed: false,
            emit_progress: true,
        }
    }

    fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    fn silent(mut self) -> Self {
        self.emit_progress = false;
        self
    }
}

impl StepObserver for RunObserver<'_> {
    fn observe(&mut self, record: &StepRecord<'_>) -> ObserverAction {
        if self.job.cancel.load(Ordering::SeqCst) {
            return ObserverAction::Stop;
        }
        if let Some(threshold) = self.threshold {
            if record
                .wire_temperatures
                .iter()
                .any(|&t| t >= threshold)
            {
                self.crossed = true;
                return ObserverAction::Stop;
            }
        }
        if self.emit_progress
            && record.step > 0
            && record.step < self.n_steps
            && record.step.is_multiple_of(self.every)
        {
            let _ = self.job.tx.send(Response::Progress {
                id: self.job.id,
                done: record.step as u64,
                total: self.n_steps as u64,
            });
        }
        ObserverAction::Continue
    }
}

/// The peak representative wire temperature over a run.
fn peak_of(sol: &etherm_core::TransientSolution) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    for i in 0..sol.n_times() {
        let t = sol.max_wire_temperature_at(i);
        if t > peak {
            peak = t;
        }
    }
    peak
}

/// `CoreError` for a cancelled run — never surfaces (the cancel flag is
/// re-checked before the terminal frame), but keeps signatures uniform.
fn interrupted() -> CoreError {
    CoreError::InvalidModel("job interrupted".to_string())
}

fn execute_class(
    shared: &Shared,
    job: &Job,
    session: &mut Session,
    state: &ModelState,
) -> Result<JobOutput, CoreError> {
    let out = match job.class {
        RequestClass::WireSizing => run_wire_sizing(shared, job, session)?,
        RequestClass::Fusing => run_fusing(shared, job, session)?,
        RequestClass::Campaign => run_campaign(job, session)?,
        RequestClass::Qoi => run_qoi(job, session, state)?,
    };
    Ok(out)
}

/// Applies the seeded elongation sample `stream(seed)` to the session:
/// `L_j = nominal_j · (1 + spread · u_j)`, `u_j ∈ [-1, 1)`.
fn apply_seeded_lengths(
    session: &mut Session,
    nominal: &[f64],
    seed: u64,
    spread: f64,
) -> Result<(), CoreError> {
    let mut stream = seed;
    for (j, &length) in nominal.iter().enumerate() {
        let u = unit_symmetric(&mut stream);
        session.set_wire_length(j, length * (1.0 + spread * u))?;
    }
    Ok(())
}

fn nominal_lengths(session: &Session) -> Vec<f64> {
    session
        .compiled()
        .model()
        .wires()
        .iter()
        .map(|w| w.wire.length())
        .collect()
}

fn session_iterations(session: &Session) -> u64 {
    let c = session.counters();
    (c.electrical_iterations + c.thermal_iterations) as u64
}

fn run_wire_sizing(
    shared: &Shared,
    job: &Job,
    session: &mut Session,
) -> Result<JobOutput, CoreError> {
    let nominal = nominal_lengths(session);
    apply_seeded_lengths(session, &nominal, job.seed, job.params.spread)?;
    let mut observer = RunObserver::new(job, job.params.n_steps, shared.config.progress_points);
    let observed = session.run_transient_observed(
        job.params.t_end,
        job.params.n_steps,
        &[],
        &mut observer,
    )?;
    if job.cancel.load(Ordering::SeqCst) {
        return Err(interrupted());
    }
    let sol = observed.solution;
    // QoI: per-wire peak temperatures, then the global peak.
    let n_wires = sol.n_wires();
    let mut qoi = Vec::with_capacity(n_wires + 1);
    for j in 0..n_wires {
        let peak = sol
            .wire_series(j)
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        qoi.push(peak);
    }
    qoi.push(peak_of(&sol));
    Ok(JobOutput {
        qoi,
        served_by: "full",
        full_solves: 1,
        served: 0,
        iterations: session_iterations(session),
    })
}

fn run_fusing(shared: &Shared, job: &Job, session: &mut Session) -> Result<JobOutput, CoreError> {
    let threshold = job.params.threshold;
    let total_evals = 8 + 8; // doubling phase + bisection phase, for progress
    let mut evals: u64 = 0;
    let mut peak_at = |session: &mut Session, scale: f64| -> Result<f64, CoreError> {
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        session.set_drive_scale(scale)?;
        let mut observer = RunObserver::new(job, job.params.n_steps, shared.config.progress_points)
            .with_threshold(threshold)
            .silent();
        let observed = session.run_transient_observed(
            job.params.t_end,
            job.params.n_steps,
            &[],
            &mut observer,
        )?;
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        evals += 1;
        let _ = job.tx.send(Response::Progress {
            id: job.id,
            done: evals.min(total_evals - 1),
            total: total_evals,
        });
        Ok(peak_of(&observed.solution))
    };
    // Exponential bracket: double the drive until the threshold is
    // crossed (or give up at 128×).
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut peak_hi = peak_at(session, hi)?;
    let mut doublings: u64 = 0;
    while peak_hi < threshold && doublings < 8 {
        lo = hi;
        hi *= 2.0;
        peak_hi = peak_at(session, hi)?;
        doublings += 1;
    }
    if peak_hi < threshold {
        // Not reachable within the bracket: report scale 0 (sentinel) and
        // the strongest peak seen.
        return Ok(JobOutput {
            qoi: vec![0.0, peak_hi],
            served_by: "full",
            full_solves: doublings + 1,
            served: 0,
            iterations: session_iterations(session),
        });
    }
    // Bisection for the critical scale.
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        let peak_mid = peak_at(session, mid)?;
        if peak_mid >= threshold {
            hi = mid;
            peak_hi = peak_mid;
        } else {
            lo = mid;
        }
    }
    Ok(JobOutput {
        qoi: vec![hi, peak_hi],
        served_by: "full",
        full_solves: evals,
        served: 0,
        iterations: session_iterations(session),
    })
}

fn run_campaign(job: &Job, session: &mut Session) -> Result<JobOutput, CoreError> {
    let nominal = nominal_lengths(session);
    let n = job.params.n_samples;
    let mut mean = 0.0;
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    for s in 0..n {
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        // Per-sample substream: seed ⊕ sample index through splitmix64,
        // the same derivation for any worker count.
        let sample_seed = mix(job.seed, s as u64);
        apply_seeded_lengths(session, &nominal, sample_seed, job.params.spread)?;
        let mut observer = RunObserver::new(job, job.params.n_steps, 1).silent();
        let observed = session.run_transient_observed(
            job.params.t_end,
            job.params.n_steps,
            &[],
            &mut observer,
        )?;
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        let peak = peak_of(&observed.solution);
        mean += (peak - mean) / (s as f64 + 1.0);
        max = max.max(peak);
        min = min.min(peak);
        // The PR-4 serialized ensemble progress callback, as a frame: one
        // `(done, total)` tick per merged sample.
        let _ = job.tx.send(Response::Progress {
            id: job.id,
            done: (s + 1) as u64,
            total: n as u64,
        });
    }
    Ok(JobOutput {
        qoi: vec![mean, max, min],
        served_by: "full",
        full_solves: n as u64,
        served: 0,
        iterations: session_iterations(session),
    })
}

fn run_qoi(job: &Job, session: &mut Session, state: &ModelState) -> Result<JobOutput, CoreError> {
    let nominal = nominal_lengths(session);
    let dim = nominal.len();
    if job.params.samples.is_empty() {
        return Err(CoreError::InvalidModel(
            "qoi requests need explicit params.samples".to_string(),
        ));
    }
    for (i, sample) in job.params.samples.iter().enumerate() {
        if sample.len() != dim {
            return Err(CoreError::InvalidModel(format!(
                "qoi sample {i} has dimension {} but the model has {dim} wires",
                sample.len()
            )));
        }
    }
    // Surrogate tier first, when registered.
    {
        let mut tier = lock_or_recover(&state.surrogate);
        if let Some(tier) = tier.as_mut() {
            let full_before = tier.full_solves() as u64;
            let served_before = tier.served() as u64;
            let iters_before = {
                let c = tier.counters();
                (c.electrical_iterations + c.thermal_iterations) as u64
            };
            let outputs = tier.evaluate(&job.params.samples)?;
            let mut qoi = Vec::new();
            for (i, out) in outputs.iter().enumerate() {
                if out.is_empty() {
                    return Err(CoreError::EnsembleFailed {
                        sample: i,
                        failures: 1,
                        abandoned: 0,
                        source: Box::new(CoreError::InvalidModel(
                            "sample quarantined by the evaluator".to_string(),
                        )),
                    });
                }
                qoi.extend_from_slice(out);
            }
            let iters_after = {
                let c = tier.counters();
                (c.electrical_iterations + c.thermal_iterations) as u64
            };
            return Ok(JobOutput {
                qoi,
                served_by: "surrogate",
                full_solves: tier.full_solves() as u64 - full_before,
                served: tier.served() as u64 - served_before,
                iterations: iters_after - iters_before,
            });
        }
    }
    // Full-solve path: one reset transient per sample.
    let mut qoi = Vec::with_capacity(job.params.samples.len());
    for (i, sample) in job.params.samples.iter().enumerate() {
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        for (j, &delta) in sample.iter().enumerate() {
            if !(delta.is_finite() && delta > -0.9) {
                return Err(CoreError::InvalidModel(format!(
                    "qoi sample {i}, wire {j}: relative elongation {delta} out of range"
                )));
            }
            session.set_wire_length(j, nominal[j] * (1.0 + delta))?;
        }
        let mut observer = RunObserver::new(job, job.params.n_steps, 1).silent();
        let observed = session.run_transient_observed(
            job.params.t_end,
            job.params.n_steps,
            &[],
            &mut observer,
        )?;
        if job.cancel.load(Ordering::SeqCst) {
            return Err(interrupted());
        }
        qoi.push(peak_of(&observed.solution));
        let _ = job.tx.send(Response::Progress {
            id: job.id,
            done: (i + 1) as u64,
            total: job.params.samples.len() as u64,
        });
    }
    Ok(JobOutput {
        qoi,
        served_by: "full",
        full_solves: job.params.samples.len() as u64,
        served: 0,
        iterations: session_iterations(session),
    })
}

// ---------------------------------------------------------------------------
// Seeded sampling (no RNG dependency: splitmix64, the canonical 64-bit
// stream mixer)
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One draw in `[-1, 1)` from the stream.
fn unit_symmetric(state: &mut u64) -> f64 {
    let bits = splitmix64(state) >> 11; // 53 mantissa bits
    let unit = bits as f64 / (1u64 << 53) as f64; // [0, 1)
    2.0 * unit - 1.0
}

/// Derives a per-sample substream seed.
fn mix(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
    splitmix64(&mut state)
}

// ---------------------------------------------------------------------------
// The owned full-solve fallback behind the surrogate tier
// ---------------------------------------------------------------------------

/// An owned [`QoiEvaluator`]: peak wire temperature per sample, each
/// evaluated on a dedicated reset session (history-independent, so serve
/// answers are reproducible regardless of request order).
pub struct ServeFullSolve {
    session: Session,
    nominal: Vec<f64>,
    t_end: f64,
    n_steps: usize,
    evaluated: usize,
}

impl ServeFullSolve {
    /// A fallback evaluator over `compiled` running `t_end`/`n_steps`
    /// transients.
    pub fn new(compiled: Arc<CompiledModel>, t_end: f64, n_steps: usize) -> Self {
        let nominal = compiled
            .model()
            .wires()
            .iter()
            .map(|w| w.wire.length())
            .collect();
        ServeFullSolve {
            session: Session::new(compiled),
            nominal,
            t_end,
            n_steps,
            evaluated: 0,
        }
    }
}

impl QoiEvaluator for ServeFullSolve {
    fn dim(&self) -> usize {
        self.nominal.len()
    }

    fn evaluate(&mut self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        let mut outputs = Vec::with_capacity(samples.len());
        for sample in samples {
            self.session.reset();
            for (j, &delta) in sample.iter().enumerate() {
                if !(delta.is_finite() && delta > -0.9) {
                    return Err(CoreError::InvalidModel(format!(
                        "fallback sample entry {delta} out of range"
                    )));
                }
                let length = self
                    .nominal
                    .get(j)
                    .copied()
                    .ok_or_else(|| CoreError::InvalidModel("sample dimension mismatch".into()))?;
                self.session.set_wire_length(j, length * (1.0 + delta))?;
            }
            let sol = self.session.run_transient(self.t_end, self.n_steps, &[])?;
            outputs.push(vec![peak_of(&sol)]);
            self.evaluated += 1;
        }
        Ok(outputs)
    }

    fn full_solves(&self) -> usize {
        self.evaluated
    }

    fn served(&self) -> usize {
        0
    }

    fn counters(&self) -> etherm_core::SolveCounters {
        self.session.counters()
    }
}
