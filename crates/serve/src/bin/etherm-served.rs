//! `etherm-served`: the NDJSON-over-TCP serving daemon.
//!
//! ```text
//! etherm-served [--addr HOST:PORT] [--workers N] [--queue N] [--registry N]
//! ```
//!
//! Prints `LISTENING <addr>` once bound (port 0 picks an ephemeral port —
//! the CI smoke job scrapes this line), then serves until a `shutdown`
//! frame arrives.

use etherm_serve::daemon::serve_blocking;
use etherm_serve::{Engine, ServeConfig, SystemClock};
use std::sync::Arc;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "etherm-served [--addr HOST:PORT] [--workers N] [--queue N] [--registry N]\n\
             NDJSON-over-TCP serving daemon; prints LISTENING <addr> once bound."
        );
        return;
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let config = ServeConfig {
        workers: parse_flag(&args, "--workers", ServeConfig::default().workers),
        queue_capacity: parse_flag(&args, "--queue", ServeConfig::default().queue_capacity),
        registry_capacity: parse_flag(&args, "--registry", ServeConfig::default().registry_capacity),
        ..ServeConfig::default()
    };
    let engine = Engine::with_clock(config, Arc::new(SystemClock::new()));
    if let Err(e) = serve_blocking(&addr, engine) {
        eprintln!("etherm-served: {e}");
        std::process::exit(1);
    }
}
