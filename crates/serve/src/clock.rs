//! Time as a capability: the one place the serve crate may read a clock.
//!
//! The `wall-clock` lint bans `Instant`/`SystemTime` outside the bench
//! harness because elapsed time must never shape physics. A server still
//! needs time — health uptime, queue-age accounting, connection timeouts —
//! so this module confines it behind [`Clock`]: production wires in
//! [`SystemClock`] (the crate's only justified wall-clock lint escapes,
//! re-asserted by `crates/lint/tests/self_check.rs`), tests wire
//! in [`ManualClock`] and stay fully deterministic. Nothing downstream of
//! a [`Clock`] may influence numerical results — job outputs depend only
//! on `(model, class, params, seed)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic milliseconds since an arbitrary origin.
pub trait Clock: Send + Sync {
    fn now_millis(&self) -> u64;
}

/// The production clock: monotonic milliseconds since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: std::time::Instant, // lint:allow(wall-clock): serve uptime/queue-age only; never feeds physics
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            origin: std::time::Instant::now(), // lint:allow(wall-clock): monotonic origin for relative millis
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    millis: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    /// Advances the clock by `ms`.
    pub fn advance(&self, ms: u64) {
        self.millis.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_millis(), 0);
        c.advance(250);
        assert_eq!(c.now_millis(), 250);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
    }
}
