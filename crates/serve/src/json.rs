//! A minimal, dependency-free JSON value with a panic-free parser.
//!
//! The serve protocol is newline-delimited JSON over untrusted sockets, so
//! the parser must turn *any* byte sequence — truncated frames, garbage,
//! deeply nested bombs — into a structured [`JsonError`], never a panic
//! (the whole crate sits inside the `no-panic-unwrap` lint perimeter).
//! Objects keep their members as an ordered `Vec<(String, Value)>`: field
//! order is preserved on re-serialization and no hash map (with its
//! nondeterministic iteration order) ever touches the wire format.

use std::fmt;

/// Maximum nesting depth accepted by the parser — far above anything the
/// protocol emits, low enough that a `[[[[…` bomb cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers are kept as `f64` (the protocol's integers stay
    /// exact well below 2^53).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Ordered members; duplicate keys keep the *first* occurrence on
    /// lookup (the parser does not reject duplicates).
    Object(Vec<(String, Value)>),
}

/// A structured parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Member lookup on an object (first occurrence wins); `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts and
    /// anything above 2^53, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x)
                if x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007_199_254_740_992e15 =>
            {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace). Non-finite numbers
    /// (which the protocol never produces but `f64` admits) serialize as
    /// `null`, keeping the output always valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => {
                if x.is_finite() {
                    // Integers print without a trailing `.0`; everything
                    // else uses Rust's shortest round-trip formatting.
                    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
                        let _ = fmt::Write::write_fmt(out, format_args!("{}", *x as i64));
                    } else {
                        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructors used by the protocol serializers.
impl Value {
    pub fn str(s: &str) -> Value {
        Value::String(s.to_string())
    }

    pub fn num(x: f64) -> Value {
        Value::Number(x)
    }

    pub fn uint(x: u64) -> Value {
        Value::Number(x as f64)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem. Never panics,
/// for any input.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(members));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                match char::from_u32(c) {
                                    Some(c) => out.push(c),
                                    None => return Err(self.err("invalid surrogate pair")),
                                }
                            } else {
                                match char::from_u32(cp) {
                                    Some(c) => out.push(c),
                                    None => return Err(self.err("invalid unicode escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b. The input
                    // is a &str, so sequences are valid; walk continuation
                    // bytes.
                    let start = self.pos - 1;
                    while self
                        .peek()
                        .is_some_and(|n| (n & 0xc0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    } else {
                        return Err(self.err("invalid utf-8 sequence"));
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("invalid number"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Number(x)),
            Ok(_) => Err(self.err("number overflows f64")),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-1", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        for src in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "{]"] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn rejects_depth_bombs() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::uint(42).to_json(), "42");
        assert_eq!(Value::num(2.5).to_json(), "2.5");
    }
}
