//! The TCP front end: newline-delimited JSON frames over a plain socket.
//!
//! Each accepted connection gets a reader thread parsing one [`Request`]
//! per line; job frames are forwarded from the engine's per-job channel
//! onto the shared connection writer, so frames for concurrent jobs on
//! one connection interleave but each individual frame stays intact (one
//! line each, writes serialized by a mutex).
//!
//! Unparseable input never kills the connection: it's answered with a
//! structured `error` frame (id 0, kind `invalid`).

use crate::engine::{Engine, RequestOutcome};
use crate::protocol::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running NDJSON-over-TCP server around an [`Engine`].
pub struct Daemon {
    engine: Arc<Engine>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port) over `engine`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from the bind.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Daemon {
            engine,
            listener,
            local_addr,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accepts and serves connections until a `shutdown` request arrives.
    /// Each connection is served on its own thread. A watchdog thread
    /// self-connects once the engine's shutdown flag flips, so the blocked
    /// `accept` always wakes up — callers never need to nudge the port.
    pub fn run(self) {
        let done = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let engine = Arc::clone(&self.engine);
            let done = Arc::clone(&done);
            let addr = self.local_addr;
            std::thread::spawn(move || {
                while !(engine.is_shutting_down() || done.load(Ordering::SeqCst)) {
                    std::thread::park_timeout(std::time::Duration::from_millis(50));
                }
                let _ = TcpStream::connect(addr);
            })
        };
        let mut conn_threads = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) => break,
            };
            if self.engine.is_shutting_down() {
                break;
            }
            let engine = Arc::clone(&self.engine);
            conn_threads.push(std::thread::spawn(move || serve_connection(stream, &engine)));
        }
        done.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        for t in conn_threads {
            let _ = t.join();
        }
    }
}

fn serve_connection(stream: TcpStream, engine: &Arc<Engine>) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut forwarders = Vec::new();
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::from_line(&line) {
            Ok(request) => request,
            Err(e) => {
                write_frame(&writer, &Engine::protocol_error_response(&e).to_line());
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        match engine.handle_request(request) {
            RequestOutcome::One(response) => write_frame(&writer, &response.to_line()),
            RequestOutcome::Stream(rx) => {
                // Forward the job's frames without blocking the read loop,
                // so one connection can run concurrent jobs.
                let writer = Arc::clone(&writer);
                forwarders.push(std::thread::spawn(move || {
                    while let Ok(frame) = rx.recv() {
                        write_frame(&writer, &frame.to_line());
                    }
                }));
            }
            RequestOutcome::None => {}
            RequestOutcome::Shutdown => {}
        }
        if shutdown {
            break;
        }
    }
    for t in forwarders {
        let _ = t.join();
    }
    let _ = lock_or_recover(&writer).flush();
}

fn write_frame(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut guard = lock_or_recover(writer);
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

/// Runs a daemon to completion on the current thread, printing
/// `LISTENING <addr>` to stdout first so scripts can scrape the ephemeral
/// port. Used by the `etherm-served` binary and the CI smoke job.
pub fn serve_blocking(addr: &str, engine: Arc<Engine>) -> std::io::Result<()> {
    let daemon = Daemon::bind(addr, engine)?;
    let bound = daemon.local_addr();
    // Stdout, not a log file: the contract with the CI scripted session.
    println!("LISTENING {bound}");
    let _ = std::io::stdout().flush();
    daemon.run();
    Ok(())
}
