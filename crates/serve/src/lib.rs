//! `etherm_serve`: the electrothermal engine as a long-running,
//! multi-tenant service.
//!
//! Everything upstream treats a simulation as a one-shot batch job:
//! build, compile, run, exit. This crate keeps the expensive state —
//! compiled models, warmed [`etherm_core::Session`] pools — resident and
//! serves many small requests against it:
//!
//! * [`ModelRegistry`] — an LRU of `Arc<CompiledModel>` keyed by the
//!   content hash of a [`ModelSpec`], with single-flight compilation;
//! * [`Engine`] — per-model session pools behind a work-stealing
//!   scheduler over `std::thread` workers, with admission control
//!   (bounded queue + load shedding, per-request-class iteration
//!   budgets, per-model health from merged recovery ledgers);
//! * [`ServeHandle`] — the in-process client;
//! * [`daemon`] — the TCP front end speaking the versioned NDJSON
//!   protocol of [`protocol`] (see `crates/serve/PROTOCOL.md`).
//!
//! # Determinism
//!
//! Every job result is bit-determined by `(model spec, request class,
//! params, seed)` — worker count, queue order and pool reuse are
//! invisible. See the [`engine`] module docs for how the job prologue
//! enforces this.
//!
//! The crate is `std`-only by design: the wire format is a small
//! hand-rolled JSON subset ([`json`]), randomness is a seeded splitmix64
//! stream, and wall-clock access is confined to [`clock::SystemClock`].

#![forbid(unsafe_code)]

pub mod clock;
pub mod daemon;
pub mod engine;
pub mod handle;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod spec;

pub use clock::{Clock, ManualClock, SystemClock};
pub use daemon::Daemon;
pub use engine::{ClassBudgets, Engine, RequestOutcome, ServeConfig, ServeFullSolve};
pub use handle::{JobTicket, ServeHandle};
pub use protocol::{
    ErrorKind, JobParams, ModelHealth, ProtocolError, Request, RequestClass, Response,
    PROTOCOL_VERSION,
};
pub use registry::ModelRegistry;
pub use spec::{ModelSpec, SolverProfile, SpecKind};
