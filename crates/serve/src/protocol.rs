//! The versioned newline-delimited JSON protocol.
//!
//! One frame per line, one JSON object per frame, a `type` member naming
//! the frame. Requests flow client → server, responses server → client;
//! a `submit` is answered by `accepted` (or `shed`/`error`), then a stream
//! of `progress` frames, then exactly one terminal `result`, `error` or
//! `cancelled` frame for the job id. Parsing is total: any byte sequence
//! maps to either a frame or a [`ProtocolError`] — never a panic (this
//! module is inside the `no-panic-unwrap` lint perimeter).
//!
//! See `crates/serve/PROTOCOL.md` for the full wire documentation,
//! including the determinism contract.

use crate::json::{parse, Value};
use crate::spec::ModelSpec;
use etherm_core::RecoveryLedger;
use std::fmt;

/// Protocol version spoken by this build. A client `hello` with a
/// different version is answered with `ok = false` and the server's
/// version, so rolling upgrades fail loudly instead of misparsing.
pub const PROTOCOL_VERSION: u64 = 1;

/// A malformed frame: the structured answer to garbage input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn perr(message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        message: message.into(),
    }
}

/// The work class of a submitted job — the admission-control unit: each
/// class runs under its own Krylov iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// One transient on sampled wire lengths; QoI: per-wire peak
    /// temperatures plus the global peak.
    WireSizing,
    /// Bisection for the critical drive scale whose peak reaches the
    /// threshold; QoI: `[critical_scale, peak_at_critical]`.
    Fusing,
    /// A seeded Monte Carlo campaign of `n_samples` transients; QoI:
    /// `[mean_peak, max_peak, min_peak]`. Streams progress.
    Campaign,
    /// QoI vectors for explicit parameter samples, served by the surrogate
    /// tier when one is registered, full solves otherwise.
    Qoi,
}

impl RequestClass {
    pub fn as_str(self) -> &'static str {
        match self {
            RequestClass::WireSizing => "wire_sizing",
            RequestClass::Fusing => "fusing",
            RequestClass::Campaign => "campaign",
            RequestClass::Qoi => "qoi",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "wire_sizing" => Some(RequestClass::WireSizing),
            "fusing" => Some(RequestClass::Fusing),
            "campaign" => Some(RequestClass::Campaign),
            "qoi" => Some(RequestClass::Qoi),
            _ => None,
        }
    }
}

/// Job parameters; every field has a protocol-level default so a minimal
/// `submit` stays small. Validation happens at parse time: non-finite or
/// non-positive values are rejected as protocol errors.
#[derive(Debug, Clone, PartialEq)]
pub struct JobParams {
    /// Transient end time (s).
    pub t_end: f64,
    /// Implicit-Euler steps.
    pub n_steps: usize,
    /// Campaign sample count.
    pub n_samples: usize,
    /// Peak-temperature threshold (K) for `fusing`.
    pub threshold: f64,
    /// Relative wire-length spread for seeded sampling (`wire_sizing`,
    /// `campaign`).
    pub spread: f64,
    /// Explicit parameter samples for `qoi` (one inner vector per sample;
    /// dimension = wire count of the model).
    pub samples: Vec<Vec<f64>>,
}

impl Default for JobParams {
    fn default() -> Self {
        JobParams {
            t_end: 1.0,
            n_steps: 10,
            n_samples: 4,
            threshold: 400.0,
            spread: 0.05,
            samples: Vec::new(),
        }
    }
}

impl JobParams {
    fn to_value(&self) -> Value {
        let mut members = vec![
            ("t_end".to_string(), Value::num(self.t_end)),
            ("n_steps".to_string(), Value::uint(self.n_steps as u64)),
            ("n_samples".to_string(), Value::uint(self.n_samples as u64)),
            ("threshold".to_string(), Value::num(self.threshold)),
            ("spread".to_string(), Value::num(self.spread)),
        ];
        if !self.samples.is_empty() {
            members.push((
                "samples".to_string(),
                Value::Array(
                    self.samples
                        .iter()
                        .map(|s| Value::Array(s.iter().map(|&x| Value::num(x)).collect()))
                        .collect(),
                ),
            ));
        }
        Value::Object(members)
    }

    fn from_value(v: &Value) -> Result<JobParams, ProtocolError> {
        let mut params = JobParams::default();
        let pos_f64 = |name: &str, v: &Value| -> Result<f64, ProtocolError> {
            v.as_f64()
                .filter(|&x| x > 0.0)
                .ok_or_else(|| perr(format!("params.{name} must be a positive finite number")))
        };
        if let Some(x) = v.get("t_end") {
            params.t_end = pos_f64("t_end", x)?;
        }
        if let Some(x) = v.get("n_steps") {
            params.n_steps = x
                .as_u64()
                .filter(|n| (1..=100_000).contains(n))
                .ok_or_else(|| perr("params.n_steps must be in 1..=100000"))?
                as usize;
        }
        if let Some(x) = v.get("n_samples") {
            params.n_samples = x
                .as_u64()
                .filter(|n| (1..=1_000_000).contains(n))
                .ok_or_else(|| perr("params.n_samples must be in 1..=1000000"))?
                as usize;
        }
        if let Some(x) = v.get("threshold") {
            params.threshold = pos_f64("threshold", x)?;
        }
        if let Some(x) = v.get("spread") {
            params.spread = x
                .as_f64()
                .filter(|&s| (0.0..1.0).contains(&s))
                .ok_or_else(|| perr("params.spread must be in [0, 1)"))?;
        }
        if let Some(x) = v.get("samples") {
            let rows = x
                .as_array()
                .ok_or_else(|| perr("params.samples must be an array of arrays"))?;
            let mut samples = Vec::with_capacity(rows.len());
            for row in rows {
                let cols = row
                    .as_array()
                    .ok_or_else(|| perr("params.samples rows must be arrays"))?;
                let mut sample = Vec::with_capacity(cols.len());
                for c in cols {
                    sample.push(
                        c.as_f64()
                            .ok_or_else(|| perr("params.samples entries must be finite numbers"))?,
                    );
                }
                samples.push(sample);
            }
            params.samples = samples;
        }
        Ok(params)
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Hello {
        version: u64,
    },
    Submit {
        id: u64,
        class: RequestClass,
        model: ModelSpec,
        params: JobParams,
        seed: u64,
    },
    Cancel {
        id: u64,
    },
    Health,
    Shutdown,
}

impl Request {
    /// Serializes to one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Hello { version } => Value::Object(vec![
                ("type".to_string(), Value::str("hello")),
                ("version".to_string(), Value::uint(*version)),
            ]),
            Request::Submit {
                id,
                class,
                model,
                params,
                seed,
            } => Value::Object(vec![
                ("type".to_string(), Value::str("submit")),
                ("id".to_string(), Value::uint(*id)),
                ("class".to_string(), Value::str(class.as_str())),
                ("model".to_string(), model.to_value()),
                ("params".to_string(), params.to_value()),
                ("seed".to_string(), Value::uint(*seed)),
            ]),
            Request::Cancel { id } => Value::Object(vec![
                ("type".to_string(), Value::str("cancel")),
                ("id".to_string(), Value::uint(*id)),
            ]),
            Request::Health => Value::Object(vec![("type".to_string(), Value::str("health"))]),
            Request::Shutdown => Value::Object(vec![("type".to_string(), Value::str("shutdown"))]),
        };
        v.to_json()
    }

    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for anything that is not a well-formed request
    /// frame — malformed JSON, unknown types, missing or invalid fields.
    pub fn from_line(line: &str) -> Result<Request, ProtocolError> {
        let v = parse(line).map_err(|e| perr(e.to_string()))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| perr("missing \"type\" member"))?;
        let id_of = |v: &Value| -> Result<u64, ProtocolError> {
            v.get("id")
                .and_then(Value::as_u64)
                .filter(|&id| id > 0)
                .ok_or_else(|| perr("missing or invalid \"id\" (must be a positive integer)"))
        };
        match ty {
            "hello" => Ok(Request::Hello {
                version: v
                    .get("version")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| perr("hello needs an integer \"version\""))?,
            }),
            "submit" => {
                let id = id_of(&v)?;
                let class = v
                    .get("class")
                    .and_then(Value::as_str)
                    .and_then(RequestClass::from_str)
                    .ok_or_else(|| {
                        perr("submit needs \"class\" in {wire_sizing, fusing, campaign, qoi}")
                    })?;
                let model = v
                    .get("model")
                    .and_then(ModelSpec::from_value)
                    .ok_or_else(|| perr("submit needs a valid \"model\" spec"))?;
                let params = match v.get("params") {
                    Some(p) => JobParams::from_value(p)?,
                    None => JobParams::default(),
                };
                let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(0);
                Ok(Request::Submit {
                    id,
                    class,
                    model,
                    params,
                    seed,
                })
            }
            "cancel" => Ok(Request::Cancel { id: id_of(&v)? }),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(perr(format!("unknown request type {other:?}"))),
        }
    }
}

/// Structured error kinds carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The job hit its request class's Krylov iteration budget
    /// ([`etherm_core::CoreError::BudgetExhausted`]).
    BudgetExhausted,
    /// A campaign sample (or the whole job) was quarantined by the
    /// failure policy.
    Quarantined,
    /// The request was well-formed JSON but semantically invalid (bad
    /// frame, bad spec, unknown job id, wrong sample dimension).
    Invalid,
    /// An internal solver failure that is not a budget or quarantine
    /// condition.
    Internal,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BudgetExhausted => "budget-exhausted",
            ErrorKind::Quarantined => "quarantined",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "budget-exhausted" => Some(ErrorKind::BudgetExhausted),
            "quarantined" => Some(ErrorKind::Quarantined),
            "invalid" => Some(ErrorKind::Invalid),
            "internal" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// Per-model health in a [`Response::Health`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelHealth {
    /// The model's content hash, hex (u64 does not fit losslessly in a
    /// JSON number).
    pub model: String,
    /// Jobs completed against this model.
    pub jobs_done: u64,
    /// Idle pooled sessions.
    pub idle_sessions: u64,
    /// Total sessions ever created for the pool.
    pub sessions_created: u64,
    /// Whether the recovery ledger crossed the degradation threshold
    /// (new work on this model is shed).
    pub degraded: bool,
    /// Merged recovery-ladder counts over every returned session.
    pub ledger: RecoveryLedger,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Hello {
        version: u64,
        ok: bool,
    },
    Accepted {
        id: u64,
    },
    Shed {
        id: u64,
        reason: String,
        queue_depth: u64,
    },
    Progress {
        id: u64,
        done: u64,
        total: u64,
    },
    Result {
        id: u64,
        /// The QoI vector (class-specific layout, see PROTOCOL.md).
        qoi: Vec<f64>,
        /// `"full"` or `"surrogate"` — which tier produced the answer.
        served_by: String,
        /// Samples that paid for a transient solve.
        full_solves: u64,
        /// Samples served without a solve (surrogate tier).
        served: u64,
        /// Krylov iterations spent by the job.
        iterations: u64,
    },
    Error {
        id: u64,
        kind: ErrorKind,
        message: String,
    },
    Cancelled {
        id: u64,
    },
    Health {
        version: u64,
        uptime_ms: u64,
        queue_depth: u64,
        shed_total: u64,
        registry_compiles: u64,
        registry_hits: u64,
        models: Vec<ModelHealth>,
    },
}

fn ledger_to_value(l: &RecoveryLedger) -> Value {
    Value::Object(vec![
        ("solve_retries".to_string(), Value::uint(l.solve_retries as u64)),
        ("forced_refreshes".to_string(), Value::uint(l.forced_refreshes as u64)),
        ("precond_fallbacks".to_string(), Value::uint(l.precond_fallbacks as u64)),
        ("dt_halvings".to_string(), Value::uint(l.dt_halvings as u64)),
        ("recovered_solves".to_string(), Value::uint(l.recovered_solves as u64)),
        ("recovered_steps".to_string(), Value::uint(l.recovered_steps as u64)),
    ])
}

fn ledger_from_value(v: &Value) -> Option<RecoveryLedger> {
    let field = |name: &str| -> Option<usize> {
        usize::try_from(v.get(name)?.as_u64()?).ok()
    };
    Some(RecoveryLedger {
        solve_retries: field("solve_retries")?,
        forced_refreshes: field("forced_refreshes")?,
        precond_fallbacks: field("precond_fallbacks")?,
        dt_halvings: field("dt_halvings")?,
        recovered_solves: field("recovered_solves")?,
        recovered_steps: field("recovered_steps")?,
    })
}

impl Response {
    /// Serializes to one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Hello { version, ok } => Value::Object(vec![
                ("type".to_string(), Value::str("hello")),
                ("version".to_string(), Value::uint(*version)),
                ("ok".to_string(), Value::Bool(*ok)),
            ]),
            Response::Accepted { id } => Value::Object(vec![
                ("type".to_string(), Value::str("accepted")),
                ("id".to_string(), Value::uint(*id)),
            ]),
            Response::Shed {
                id,
                reason,
                queue_depth,
            } => Value::Object(vec![
                ("type".to_string(), Value::str("shed")),
                ("id".to_string(), Value::uint(*id)),
                ("reason".to_string(), Value::str(reason)),
                ("queue_depth".to_string(), Value::uint(*queue_depth)),
            ]),
            Response::Progress { id, done, total } => Value::Object(vec![
                ("type".to_string(), Value::str("progress")),
                ("id".to_string(), Value::uint(*id)),
                ("done".to_string(), Value::uint(*done)),
                ("total".to_string(), Value::uint(*total)),
            ]),
            Response::Result {
                id,
                qoi,
                served_by,
                full_solves,
                served,
                iterations,
            } => Value::Object(vec![
                ("type".to_string(), Value::str("result")),
                ("id".to_string(), Value::uint(*id)),
                (
                    "qoi".to_string(),
                    Value::Array(qoi.iter().map(|&x| Value::num(x)).collect()),
                ),
                ("served_by".to_string(), Value::str(served_by)),
                ("full_solves".to_string(), Value::uint(*full_solves)),
                ("served".to_string(), Value::uint(*served)),
                ("iterations".to_string(), Value::uint(*iterations)),
            ]),
            Response::Error { id, kind, message } => Value::Object(vec![
                ("type".to_string(), Value::str("error")),
                ("id".to_string(), Value::uint(*id)),
                ("kind".to_string(), Value::str(kind.as_str())),
                ("message".to_string(), Value::str(message)),
            ]),
            Response::Cancelled { id } => Value::Object(vec![
                ("type".to_string(), Value::str("cancelled")),
                ("id".to_string(), Value::uint(*id)),
            ]),
            Response::Health {
                version,
                uptime_ms,
                queue_depth,
                shed_total,
                registry_compiles,
                registry_hits,
                models,
            } => Value::Object(vec![
                ("type".to_string(), Value::str("health")),
                ("version".to_string(), Value::uint(*version)),
                ("uptime_ms".to_string(), Value::uint(*uptime_ms)),
                ("queue_depth".to_string(), Value::uint(*queue_depth)),
                ("shed_total".to_string(), Value::uint(*shed_total)),
                ("registry_compiles".to_string(), Value::uint(*registry_compiles)),
                ("registry_hits".to_string(), Value::uint(*registry_hits)),
                (
                    "models".to_string(),
                    Value::Array(
                        models
                            .iter()
                            .map(|m| {
                                Value::Object(vec![
                                    ("model".to_string(), Value::str(&m.model)),
                                    ("jobs_done".to_string(), Value::uint(m.jobs_done)),
                                    ("idle_sessions".to_string(), Value::uint(m.idle_sessions)),
                                    (
                                        "sessions_created".to_string(),
                                        Value::uint(m.sessions_created),
                                    ),
                                    ("degraded".to_string(), Value::Bool(m.degraded)),
                                    ("ledger".to_string(), ledger_to_value(&m.ledger)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        v.to_json()
    }

    /// Parses one NDJSON line (the client half; servers never receive
    /// responses, but the bench clients and the scripted CI session do).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for anything that is not a well-formed response
    /// frame.
    pub fn from_line(line: &str) -> Result<Response, ProtocolError> {
        let v = parse(line).map_err(|e| perr(e.to_string()))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| perr("missing \"type\" member"))?;
        let id_of = |v: &Value| -> Result<u64, ProtocolError> {
            v.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| perr("missing or invalid \"id\""))
        };
        let uint_of = |v: &Value, name: &str| -> Result<u64, ProtocolError> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| perr(format!("missing or invalid \"{name}\"")))
        };
        match ty {
            "hello" => Ok(Response::Hello {
                version: uint_of(&v, "version")?,
                ok: v
                    .get("ok")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| perr("hello needs \"ok\""))?,
            }),
            "accepted" => Ok(Response::Accepted { id: id_of(&v)? }),
            "shed" => Ok(Response::Shed {
                id: id_of(&v)?,
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .ok_or_else(|| perr("shed needs \"reason\""))?
                    .to_string(),
                queue_depth: uint_of(&v, "queue_depth")?,
            }),
            "progress" => Ok(Response::Progress {
                id: id_of(&v)?,
                done: uint_of(&v, "done")?,
                total: uint_of(&v, "total")?,
            }),
            "result" => {
                let qoi_v = v
                    .get("qoi")
                    .and_then(Value::as_array)
                    .ok_or_else(|| perr("result needs a numeric \"qoi\" array"))?;
                let mut qoi = Vec::with_capacity(qoi_v.len());
                for x in qoi_v {
                    qoi.push(
                        x.as_f64()
                            .ok_or_else(|| perr("result qoi entries must be finite numbers"))?,
                    );
                }
                Ok(Response::Result {
                    id: id_of(&v)?,
                    qoi,
                    served_by: v
                        .get("served_by")
                        .and_then(Value::as_str)
                        .ok_or_else(|| perr("result needs \"served_by\""))?
                        .to_string(),
                    full_solves: uint_of(&v, "full_solves")?,
                    served: uint_of(&v, "served")?,
                    iterations: uint_of(&v, "iterations")?,
                })
            }
            "error" => Ok(Response::Error {
                id: id_of(&v)?,
                kind: v
                    .get("kind")
                    .and_then(Value::as_str)
                    .and_then(ErrorKind::from_str)
                    .ok_or_else(|| perr("error needs a known \"kind\""))?,
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or_else(|| perr("error needs \"message\""))?
                    .to_string(),
            }),
            "cancelled" => Ok(Response::Cancelled { id: id_of(&v)? }),
            "health" => {
                let models_v = v
                    .get("models")
                    .and_then(Value::as_array)
                    .ok_or_else(|| perr("health needs \"models\""))?;
                let mut models = Vec::with_capacity(models_v.len());
                for m in models_v {
                    let ledger = m
                        .get("ledger")
                        .and_then(ledger_from_value)
                        .ok_or_else(|| perr("health model needs a \"ledger\""))?;
                    models.push(ModelHealth {
                        model: m
                            .get("model")
                            .and_then(Value::as_str)
                            .ok_or_else(|| perr("health model needs \"model\""))?
                            .to_string(),
                        jobs_done: uint_of(m, "jobs_done")?,
                        idle_sessions: uint_of(m, "idle_sessions")?,
                        sessions_created: uint_of(m, "sessions_created")?,
                        degraded: m
                            .get("degraded")
                            .and_then(Value::as_bool)
                            .ok_or_else(|| perr("health model needs \"degraded\""))?,
                        ledger,
                    });
                }
                Ok(Response::Health {
                    version: uint_of(&v, "version")?,
                    uptime_ms: uint_of(&v, "uptime_ms")?,
                    queue_depth: uint_of(&v, "queue_depth")?,
                    shed_total: uint_of(&v, "shed_total")?,
                    registry_compiles: uint_of(&v, "registry_compiles")?,
                    registry_hits: uint_of(&v, "registry_hits")?,
                    models,
                })
            }
            other => Err(perr(format!("unknown response type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello { version: 1 },
            Request::Submit {
                id: 7,
                class: RequestClass::Campaign,
                model: ModelSpec::block_small(),
                params: JobParams {
                    samples: vec![vec![0.1, -0.2]],
                    ..JobParams::default()
                },
                seed: 42,
            },
            Request::Cancel { id: 3 },
            Request::Health,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert_eq!(Request::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Hello { version: 1, ok: true },
            Response::Accepted { id: 1 },
            Response::Shed {
                id: 2,
                reason: "queue full".into(),
                queue_depth: 64,
            },
            Response::Progress { id: 1, done: 3, total: 10 },
            Response::Result {
                id: 1,
                qoi: vec![312.5, 0.25],
                served_by: "full".into(),
                full_solves: 4,
                served: 0,
                iterations: 123,
            },
            Response::Error {
                id: 9,
                kind: ErrorKind::BudgetExhausted,
                message: "budget exhausted: 50 iterations spent of 40".into(),
            },
            Response::Cancelled { id: 5 },
            Response::Health {
                version: 1,
                uptime_ms: 12,
                queue_depth: 0,
                shed_total: 2,
                registry_compiles: 2,
                registry_hits: 9,
                models: vec![ModelHealth {
                    model: "00ff".into(),
                    jobs_done: 11,
                    idle_sessions: 3,
                    sessions_created: 4,
                    degraded: false,
                    ledger: RecoveryLedger {
                        solve_retries: 1,
                        ..RecoveryLedger::default()
                    },
                }],
            },
        ];
        for r in resps {
            let line = r.to_line();
            assert_eq!(Response::from_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn garbage_is_a_structured_error() {
        for line in [
            "",
            "not json",
            "{}",
            "[1,2,3]",
            r#"{"type":"warp"}"#,
            r#"{"type":"submit","id":0}"#,
            r#"{"type":"submit","id":1,"class":"dance","model":{}}"#,
            r#"{"type":"cancel"}"#,
        ] {
            assert!(Request::from_line(line).is_err(), "{line:?}");
            assert!(Response::from_line(line).is_err(), "{line:?}");
        }
    }
}
