//! Model specifications: the wire format that names a compiled model.
//!
//! A [`ModelSpec`] fully determines geometry + mesh + materials + solver
//! profile, so its canonical string is a *content identity*: two requests
//! with the same spec share one [`etherm_core::CompiledModel`] in the
//! registry, keyed by [`ModelSpec::content_hash`] (FNV-1a over the
//! canonical form — stable across processes and platforms, unlike
//! `DefaultHasher`).
//!
//! Two families exist today:
//!
//! * [`SpecKind::Paper`] — the paper's 28-pad / 12-wire package at a given
//!   mesh spacing (µm), built through `etherm_package`;
//! * [`SpecKind::Block`] — a small single-wire epoxy block for tests, CI
//!   and latency-sensitive smoke traffic (compiles in milliseconds).

use crate::json::Value;
use etherm_core::{CompiledModel, CoreError, ElectrothermalModel, SolverOptions};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::{Axis, CellPaint, Grid3, MaterialId};
use etherm_materials::{library, MaterialTable};
use etherm_package::{build_model, BuildOptions, PackageGeometry};

/// The solver-option profile a model is compiled with (options are frozen
/// inside the compiled model, so the profile is part of the identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverProfile {
    /// [`SolverOptions::default`]: the accuracy-first paper configuration.
    Default,
    /// [`SolverOptions::uq`]: the campaign profile (cheaper preconditioner
    /// refresh policy).
    Uq,
    /// [`SolverOptions::fast`]: the latency-first profile.
    Fast,
}

impl SolverProfile {
    fn as_str(self) -> &'static str {
        match self {
            SolverProfile::Default => "default",
            SolverProfile::Uq => "uq",
            SolverProfile::Fast => "fast",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "default" => Some(SolverProfile::Default),
            "uq" => Some(SolverProfile::Uq),
            "fast" => Some(SolverProfile::Fast),
            _ => None,
        }
    }

    /// The solver options this profile compiles with.
    pub fn options(self) -> SolverOptions {
        match self {
            SolverProfile::Default => SolverOptions::default(),
            SolverProfile::Uq => SolverOptions::uq(),
            SolverProfile::Fast => SolverOptions::fast(),
        }
    }
}

/// The geometry/mesh family of a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// The paper package at lateral / vertical mesh spacings in µm.
    Paper { xy_um: u32, z_um: u32 },
    /// A single-wire epoxy block: `nx × ny × nz` cells of 0.5 mm, one
    /// copper wire of `wire_um` µm length bonded across the x extent,
    /// ±20 mV drive, convective boundary.
    Block {
        nx: u32,
        ny: u32,
        nz: u32,
        wire_um: u32,
    },
}

/// A fully-specified model identity: geometry family + solver profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    pub kind: SpecKind,
    pub profile: SolverProfile,
}

impl ModelSpec {
    /// The coarse paper package (the mesh the test suite and UQ benches
    /// use) under the campaign solver profile.
    pub fn paper_coarse() -> ModelSpec {
        ModelSpec {
            kind: SpecKind::Paper { xy_um: 900, z_um: 500 },
            profile: SolverProfile::Uq,
        }
    }

    /// The default test block: 4×2×1 cells, 1.5 mm wire.
    pub fn block_small() -> ModelSpec {
        ModelSpec {
            kind: SpecKind::Block {
                nx: 4,
                ny: 2,
                nz: 1,
                wire_um: 1500,
            },
            profile: SolverProfile::Default,
        }
    }

    /// The canonical identity string: every field that influences the
    /// compiled model, in a fixed order. Materials are named because the
    /// builders bind them from the library by construction.
    pub fn canonical(&self) -> String {
        match self.kind {
            SpecKind::Paper { xy_um, z_um } => format!(
                "paper-v1;pads=28;wires=12;mat=epoxy+copper;xy_um={xy_um};z_um={z_um};profile={}",
                self.profile.as_str()
            ),
            SpecKind::Block { nx, ny, nz, wire_um } => format!(
                "block-v1;cell_um=500;mat=epoxy+copper;nx={nx};ny={ny};nz={nz};wire_um={wire_um};profile={}",
                self.profile.as_str()
            ),
        }
    }

    /// FNV-1a 64-bit hash of [`ModelSpec::canonical`] — the registry key.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Serializes to the protocol's `model` object.
    pub fn to_value(&self) -> Value {
        let mut members = Vec::new();
        match self.kind {
            SpecKind::Paper { xy_um, z_um } => {
                members.push(("kind".to_string(), Value::str("paper")));
                members.push(("xy_um".to_string(), Value::uint(u64::from(xy_um))));
                members.push(("z_um".to_string(), Value::uint(u64::from(z_um))));
            }
            SpecKind::Block { nx, ny, nz, wire_um } => {
                members.push(("kind".to_string(), Value::str("block")));
                members.push(("nx".to_string(), Value::uint(u64::from(nx))));
                members.push(("ny".to_string(), Value::uint(u64::from(ny))));
                members.push(("nz".to_string(), Value::uint(u64::from(nz))));
                members.push(("wire_um".to_string(), Value::uint(u64::from(wire_um))));
            }
        }
        members.push((
            "profile".to_string(),
            Value::str(self.profile.as_str()),
        ));
        Value::Object(members)
    }

    /// Parses the protocol's `model` object; `None` on any missing or
    /// out-of-range field.
    pub fn from_value(v: &Value) -> Option<ModelSpec> {
        let profile = SolverProfile::from_str(v.get("profile")?.as_str()?)?;
        let field_u32 = |name: &str| -> Option<u32> {
            let x = v.get(name)?.as_u64()?;
            u32::try_from(x).ok().filter(|&x| x > 0)
        };
        let kind = match v.get("kind")?.as_str()? {
            "paper" => SpecKind::Paper {
                xy_um: field_u32("xy_um")?,
                z_um: field_u32("z_um")?,
            },
            "block" => SpecKind::Block {
                nx: field_u32("nx")?,
                ny: field_u32("ny")?,
                nz: field_u32("nz")?,
                wire_um: field_u32("wire_um")?,
            },
            _ => return None,
        };
        Some(ModelSpec { kind, profile })
    }

    /// Builds and compiles the model. This is the expensive single-flight
    /// path behind the registry.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidModel`] for infeasible dimensions (e.g. a paper
    /// mesh too coarse to separate bond points).
    pub fn build(&self) -> Result<CompiledModel, CoreError> {
        let model = match self.kind {
            SpecKind::Paper { xy_um, z_um } => {
                let geometry = PackageGeometry::paper();
                let options = BuildOptions {
                    target_spacing_xy: f64::from(xy_um) * 1e-6,
                    target_spacing_z: f64::from(z_um) * 1e-6,
                    ..BuildOptions::paper_fig7()
                };
                build_model(&geometry, &options)?.model
            }
            SpecKind::Block { nx, ny, nz, wire_um } => build_block(nx, ny, nz, wire_um)?,
        };
        CompiledModel::compile(model, self.profile.options())
    }
}

/// Builds the single-wire epoxy block (the `wire_model` fixture of the
/// core ensemble tests, parameterized).
fn build_block(nx: u32, ny: u32, nz: u32, wire_um: u32) -> Result<ElectrothermalModel, CoreError> {
    const CELL: f64 = 0.5e-3;
    let invalid = |what: &str| CoreError::InvalidModel(format!("block spec: {what}"));
    let (lx, ly, lz) = (
        f64::from(nx) * CELL,
        f64::from(ny) * CELL,
        f64::from(nz) * CELL,
    );
    let grid = Grid3::new(
        Axis::uniform(0.0, lx, nx as usize).map_err(|e| invalid(&e.to_string()))?,
        Axis::uniform(0.0, ly, ny as usize).map_err(|e| invalid(&e.to_string()))?,
        Axis::uniform(0.0, lz, nz as usize).map_err(|e| invalid(&e.to_string()))?,
    );
    let paint = CellPaint::new(&grid, MaterialId(0));
    let mut materials = MaterialTable::new();
    materials.add(library::epoxy_resin());
    let mut model = ElectrothermalModel::new(grid, paint, materials)?;
    let wire = etherm_bondwire::BondWire::new(
        "w",
        f64::from(wire_um) * 1e-6,
        25.4e-6,
        library::copper(),
    )
    .map_err(|e| invalid(&e.to_string()))?;
    model.add_wire(wire, (0.0, ly / 2.0, lz / 2.0), (lx, ly / 2.0, lz / 2.0))?;
    let a = model.wires()[0].node_a;
    let b = model.wires()[0].node_b;
    model.set_electric_potential(&[a], 0.02);
    model.set_electric_potential(&[b], -0.02);
    model.set_thermal_boundary(ThermalBoundary::convective(25.0, 300.0));
    Ok(model)
}

/// FNV-1a, 64-bit: tiny, allocation-free, stable across builds — exactly
/// what a cross-process cache key needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_identity_distinguishes_specs() {
        let a = ModelSpec::block_small();
        let mut b = a;
        b.profile = SolverProfile::Fast;
        assert_ne!(a.content_hash(), b.content_hash());
        let c = ModelSpec::paper_coarse();
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn value_round_trip() {
        for spec in [ModelSpec::block_small(), ModelSpec::paper_coarse()] {
            let v = spec.to_value();
            assert_eq!(ModelSpec::from_value(&v), Some(spec));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        use crate::json::parse;
        for src in [
            r#"{"kind":"paper","profile":"uq"}"#,
            r#"{"kind":"block","nx":0,"ny":1,"nz":1,"wire_um":1500,"profile":"default"}"#,
            r#"{"kind":"sphere","profile":"default"}"#,
            r#"{"profile":"default"}"#,
            r#"{"kind":"paper","xy_um":900,"z_um":500,"profile":"warp"}"#,
        ] {
            let v = parse(src).unwrap();
            assert_eq!(ModelSpec::from_value(&v), None, "{src}");
        }
    }

    #[test]
    fn block_spec_builds() {
        let compiled = ModelSpec::block_small().build().unwrap();
        assert_eq!(compiled.model().wires().len(), 1);
    }
}
