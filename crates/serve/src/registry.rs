//! The compiled-model registry: an LRU of `Arc<CompiledModel>` keyed by
//! content hash, with single-flight compilation.
//!
//! Compiling a model is the expensive step (mesh + DoF layout + frozen
//! stamping templates — seconds for the paper package); a burst of
//! requests for the same spec must pay it once. The first requester marks
//! the hash in flight and compiles *outside* the lock; everyone else waits
//! on the condvar and picks up the shared `Arc` (or the compile error).
//! Eviction is strict LRU above `capacity`; an evicted model's sessions
//! drain naturally because jobs hold their own `Arc`.

use crate::spec::ModelSpec;
use etherm_core::{CompiledModel, CoreError};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Recovers from a poisoned mutex instead of panicking: registry state is
/// a cache, safe to read after a payload thread panicked elsewhere.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug)]
struct Entry {
    hash: u64,
    model: Arc<CompiledModel>,
    /// Monotone counter value at last use — larger = more recent.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<Entry>,
    /// Hashes currently being compiled by some thread.
    in_flight: Vec<u64>,
    /// Terminal compile failures, consumed by one waiter each so a later
    /// request retries (transient failures must not brick a hash forever).
    failed: BTreeMap<u64, String>,
    use_counter: u64,
    compiles: u64,
    hits: u64,
}

/// The registry. Cheap to share: all state behind one mutex; compilation
/// runs outside it.
#[derive(Debug)]
pub struct ModelRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl ModelRegistry {
    /// A registry holding at most `capacity` compiled models (≥ 1).
    pub fn new(capacity: usize) -> Self {
        ModelRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        }
    }

    /// Returns the compiled model for `spec`, compiling at most once per
    /// hash across all concurrent callers.
    ///
    /// # Errors
    ///
    /// Propagates the builder's [`CoreError`] (each waiter of a failed
    /// compile receives the error; the next fresh request retries).
    pub fn get_or_compile(&self, spec: &ModelSpec) -> Result<Arc<CompiledModel>, CoreError> {
        let hash = spec.content_hash();
        let mut inner = lock_or_recover(&self.inner);
        loop {
            if let Some(idx) = inner.entries.iter().position(|e| e.hash == hash) {
                inner.use_counter += 1;
                inner.hits += 1;
                let stamp = inner.use_counter;
                if let Some(entry) = inner.entries.get_mut(idx) {
                    entry.last_used = stamp;
                    return Ok(Arc::clone(&entry.model));
                }
            }
            if let Some(message) = inner.failed.remove(&hash) {
                return Err(CoreError::InvalidModel(message));
            }
            if inner.in_flight.contains(&hash) {
                inner = match self.cv.wait(inner) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                continue;
            }
            // This thread compiles.
            inner.in_flight.push(hash);
            drop(inner);
            let built = spec.build();
            inner = lock_or_recover(&self.inner);
            inner.in_flight.retain(|&h| h != hash);
            match built {
                Ok(model) => {
                    let model = Arc::new(model);
                    inner.compiles += 1;
                    inner.use_counter += 1;
                    let stamp = inner.use_counter;
                    inner.entries.push(Entry {
                        hash,
                        model: Arc::clone(&model),
                        last_used: stamp,
                    });
                    self.evict(&mut inner);
                    self.cv.notify_all();
                    return Ok(model);
                }
                Err(e) => {
                    inner.failed.insert(hash, e.to_string());
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    fn evict(&self, inner: &mut Inner) {
        while inner.entries.len() > self.capacity {
            if let Some((idx, _)) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
            {
                inner.entries.remove(idx);
            } else {
                break;
            }
        }
    }

    /// Whether `hash` is currently cached (test/monitoring hook).
    pub fn contains(&self, hash: u64) -> bool {
        lock_or_recover(&self.inner)
            .entries
            .iter()
            .any(|e| e.hash == hash)
    }

    /// Models compiled since construction.
    pub fn compiles(&self) -> u64 {
        lock_or_recover(&self.inner).compiles
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        lock_or_recover(&self.inner).hits
    }

    /// Currently cached model count.
    pub fn len(&self) -> usize {
        lock_or_recover(&self.inner).entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SolverProfile, SpecKind};

    fn block(nx: u32) -> ModelSpec {
        ModelSpec {
            kind: SpecKind::Block {
                nx,
                ny: 2,
                nz: 1,
                wire_um: 1500,
            },
            profile: SolverProfile::Default,
        }
    }

    #[test]
    fn caches_and_counts_hits() {
        let reg = ModelRegistry::new(4);
        let a = reg.get_or_compile(&block(4)).unwrap();
        let b = reg.get_or_compile(&block(4)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.compiles(), 1);
        assert_eq!(reg.hits(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let reg = ModelRegistry::new(2);
        let h3 = block(3).content_hash();
        let h4 = block(4).content_hash();
        let h5 = block(5).content_hash();
        reg.get_or_compile(&block(3)).unwrap();
        reg.get_or_compile(&block(4)).unwrap();
        // Touch 3 so 4 becomes the LRU victim.
        reg.get_or_compile(&block(3)).unwrap();
        reg.get_or_compile(&block(5)).unwrap();
        assert!(reg.contains(h3));
        assert!(!reg.contains(h4));
        assert!(reg.contains(h5));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn single_flight_under_contention() {
        let reg = Arc::new(ModelRegistry::new(2));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                reg.get_or_compile(&block(6)).map(|m| Arc::as_ptr(&m) as usize)
            }));
        }
        let ptrs: Vec<usize> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        assert_eq!(reg.compiles(), 1, "one compile for 8 concurrent requests");
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "all share one Arc");
    }
}
