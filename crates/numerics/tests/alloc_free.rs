//! Proves the Krylov hot path is allocation-free after warm-up.
//!
//! A counting global allocator tracks per-thread heap allocations; after a
//! first (warming) solve populated the [`KrylovWorkspace`] and the
//! preconditioner, subsequent `pcg_with` / `bicgstab_with` calls on the same
//! workspace must not touch the heap at all.

use etherm_numerics::solvers::{
    bicgstab_with, gmres_with, pcg_with, AmgOptions, AmgPrecond, CgOptions, GmresOptions,
    GmresWorkspace, IncompleteCholesky, JacobiPrecond, KrylovWorkspace, Preconditioner, Ssor,
};
use etherm_numerics::sparse::{Coo, Csr};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: a pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the only added behavior is bumping a thread-local counter,
// which neither allocates nor unwinds, so every contract obligation
// (validity of returned pointers, layout handling) is inherited unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout; the
    // caller guarantees `layout` has non-zero size, as required by both.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.alloc_zeroed` under the same caller
    // obligations as `alloc`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    // SAFETY: delegates to `System.realloc`; the caller guarantees `ptr`
    // was allocated by this allocator with `layout` (and this allocator is
    // `System` plus counting), and that `new_size` is non-zero.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System.dealloc`; the caller guarantees `ptr`
    // came from this allocator with this `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

/// 3D 7-point Laplacian plus a mass term — the shape of the transient
/// thermal systems.
fn lap3d(nx: usize) -> Csr {
    let n = nx * nx * nx;
    let idx = |i: usize, j: usize, k: usize| (i * nx + j) * nx + k;
    let mut coo = Coo::new(n, n);
    for i in 0..nx {
        for j in 0..nx {
            for k in 0..nx {
                let p = idx(i, j, k);
                coo.push(p, p, 6.5);
                if i + 1 < nx {
                    coo.push(p, idx(i + 1, j, k), -1.0);
                    coo.push(idx(i + 1, j, k), p, -1.0);
                }
                if j + 1 < nx {
                    coo.push(p, idx(i, j + 1, k), -1.0);
                    coo.push(idx(i, j + 1, k), p, -1.0);
                }
                if k + 1 < nx {
                    coo.push(p, idx(i, j, k + 1), -1.0);
                    coo.push(idx(i, j, k + 1), p, -1.0);
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

#[test]
fn pcg_is_allocation_free_after_warmup() {
    let a = lap3d(8);
    let n = a.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
    let opts = CgOptions::with_tol(1e-10);
    let mut ws = KrylovWorkspace::new();

    for precond_name in ["ic1", "jacobi", "ssor"] {
        // Build preconditioners outside the counted region (construction may
        // allocate; refresh and apply must not).
        let ic = IncompleteCholesky::with_fill(&a, 1).unwrap();
        let jac = JacobiPrecond::new(&a).unwrap();
        let ssor = Ssor::new(&a, 1.2).unwrap();

        // Warm-up solve sizes the workspace.
        let mut x = vec![0.0; n];
        pcg_with(&a, &b, &mut x, &ic, &opts, &mut ws).unwrap();

        let before = allocations();
        let mut solved = 0;
        for _ in 0..3 {
            x.fill(0.0);
            let rep = match precond_name {
                "ic1" => pcg_with(&a, &b, &mut x, &ic, &opts, &mut ws).unwrap(),
                "jacobi" => pcg_with(&a, &b, &mut x, &jac, &opts, &mut ws).unwrap(),
                _ => pcg_with(&a, &b, &mut x, &ssor, &opts, &mut ws).unwrap(),
            };
            assert!(rep.converged);
            solved += rep.iterations;
        }
        assert!(solved > 0);
        assert_eq!(
            allocations() - before,
            0,
            "pcg with {precond_name} allocated on the warm path"
        );
    }
}

#[test]
fn preconditioner_refresh_is_allocation_free() {
    let a = lap3d(6);
    let mut a2 = a.clone();
    a2.scale(1.5);
    let mut ic = IncompleteCholesky::with_fill(&a, 1).unwrap();
    let mut jac = JacobiPrecond::new(&a).unwrap();
    let mut ssor = Ssor::new(&a, 1.1).unwrap();

    let before = allocations();
    ic.refresh(&a2).unwrap();
    jac.refresh(&a2).unwrap();
    ssor.refresh(&a2).unwrap();
    assert_eq!(allocations() - before, 0, "refresh allocated");
}

#[test]
fn amg_apply_and_refresh_are_allocation_free_after_warmup() {
    let a = lap3d(8);
    let n = a.n_rows();
    let mut amg = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
    let mut a2 = a.clone();
    a2.scale(1.25);

    // Warm-up: one V-cycle (the per-level scratch is sized at construction,
    // so even this first apply must not allocate — included in the counted
    // region below together with a numeric-only refresh).
    let r: Vec<f64> = (0..n).map(|i| ((i * 7 % 19) as f64) - 9.0).collect();
    let mut z = vec![0.0; n];

    let before = allocations();
    amg.apply(&r, &mut z);
    amg.refresh(&a2).unwrap();
    amg.apply(&r, &mut z);
    assert_eq!(
        allocations() - before,
        0,
        "amg V-cycle or refresh allocated"
    );

    // And the full PCG hot path with the AMG preconditioner stays clean.
    let opts = CgOptions::with_tol(1e-10);
    let mut ws = KrylovWorkspace::new();
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
    let mut x = vec![0.0; n];
    pcg_with(&a2, &b, &mut x, &amg, &opts, &mut ws).unwrap();
    let before = allocations();
    x.fill(0.0);
    let rep = pcg_with(&a2, &b, &mut x, &amg, &opts, &mut ws).unwrap();
    assert!(rep.converged && rep.iterations > 0);
    assert_eq!(allocations() - before, 0, "pcg with amg allocated");
}

#[test]
fn block_path_is_allocation_free_after_warmup() {
    // The PR-8 contract: the whole multi-RHS chain — fused SpMM panels,
    // batched preconditioner application (including the AMG V-cycle), and
    // the interleaved block PCG — never touches the heap once the panel
    // workspace is sized.
    use etherm_numerics::solvers::{block_pcg_with, BlockKrylovWorkspace, SolveReport};
    use etherm_numerics::sparse::CsrBatch;
    use etherm_numerics::MultiVec;

    let a = lap3d(8);
    let n = a.n_rows();
    let k = 8;

    // k same-pattern matrices with distinct values (the ensemble shape).
    let mats_owned: Vec<Csr> = (0..k)
        .map(|j| {
            let mut m = a.clone();
            m.scale(1.0 + 0.05 * j as f64);
            m
        })
        .collect();
    let mats: Vec<&Csr> = mats_owned.iter().collect();

    let mut b = MultiVec::zeros(n, k);
    for j in 0..k {
        for i in 0..n {
            b.set(i, j, ((i * 13 % 17) as f64) - 8.0 + j as f64);
        }
    }
    let mut x = MultiVec::zeros(n, k);
    let mut y = MultiVec::zeros(n, k);

    // Preconditioners and the batched operator are built outside the
    // counted region (construction may allocate; apply must not).
    let jac = JacobiPrecond::new(&mats_owned[0]).unwrap();
    let ic = IncompleteCholesky::with_fill(&mats_owned[0], 1).unwrap();
    let ssor = Ssor::new(&mats_owned[0], 1.2).unwrap();
    let amg = AmgPrecond::new(&mats_owned[0], AmgOptions::default()).unwrap();
    let op = CsrBatch::new(mats.clone(), 1);
    // The session hot loop re-packs per solve into a cached buffer and
    // borrows it; warm it once here so the counted re-pack is steady-state.
    let mut packed = Vec::new();
    Csr::pack_batch_values(&mats, &mut packed);

    let opts = CgOptions::with_tol(1e-10);
    let mut ws = BlockKrylovWorkspace::new();
    let mut reports: Vec<SolveReport> = Vec::new();

    // Warm-up sizes the panel workspace (and, for AMG, the per-level
    // block scratch) and the reports vector.
    block_pcg_with(&op, &b, &mut x, &amg, &opts, &mut ws, &mut reports).unwrap();

    // Fused SpMM (shared-matrix and batched), the per-solve value re-pack
    // into the warm cached buffer, and the borrowing operator constructor.
    let before = allocations();
    a.spmm_into(&b, &mut y);
    Csr::spmm_batch_into(&mats, &b, &mut y);
    Csr::pack_batch_values(&mats, &mut packed);
    let op_packed = CsrBatch::from_packed(&mats_owned[0], &packed, 1);
    assert_eq!(op_packed.width(), k);
    assert_eq!(allocations() - before, 0, "fused spmm or value re-pack allocated");

    // Batched preconditioner application, all four kinds.
    let before = allocations();
    jac.apply_block(&b, &mut y);
    ic.apply_block(&b, &mut y);
    ssor.apply_block(&b, &mut y);
    amg.apply_block(&b, &mut y);
    assert_eq!(
        allocations() - before,
        0,
        "batched preconditioner apply allocated"
    );

    // The full block PCG hot path on the warmed workspace.
    let before = allocations();
    let mut solved = 0;
    for _ in 0..3 {
        x.fill(0.0);
        block_pcg_with(&op, &b, &mut x, &amg, &opts, &mut ws, &mut reports).unwrap();
        assert!(reports.iter().all(|r| r.converged));
        solved += reports.iter().map(|r| r.iterations).sum::<usize>();
    }
    assert!(solved > 0);
    assert_eq!(allocations() - before, 0, "block pcg allocated on warm path");
}

#[test]
fn gmres_is_allocation_free_after_warmup() {
    // Mildly non-symmetric system (the GMRES use case).
    let n = 200;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 3.0);
        if i + 1 < n {
            coo.push(i, i + 1, -0.6);
            coo.push(i + 1, i, -1.4);
        }
    }
    let a = Csr::from_coo(&coo);
    let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
    let jac = JacobiPrecond::new(&a).unwrap();
    let opts = GmresOptions {
        restart: 25,
        ..GmresOptions::default()
    };
    let mut ws = GmresWorkspace::new();
    let mut x = vec![0.0; n];
    gmres_with(&a, &b, &mut x, &jac, &opts, &mut ws).unwrap();

    let before = allocations();
    x.fill(0.0);
    let rep = gmres_with(&a, &b, &mut x, &jac, &opts, &mut ws).unwrap();
    assert!(rep.converged && rep.iterations > 0);
    assert_eq!(allocations() - before, 0, "gmres allocated on warm path");
}

#[test]
fn bicgstab_is_allocation_free_after_warmup() {
    // Mildly non-symmetric system.
    let n = 150;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 3.0);
        if i + 1 < n {
            coo.push(i, i + 1, -0.5);
            coo.push(i + 1, i, -2.0);
        }
    }
    let a = Csr::from_coo(&coo);
    let b = vec![1.0; n];
    let jac = JacobiPrecond::new(&a).unwrap();
    let opts = CgOptions::with_tol(1e-10);
    let mut ws = KrylovWorkspace::new();
    let mut x = vec![0.0; n];
    bicgstab_with(&a, &b, &mut x, &jac, &opts, &mut ws).unwrap();

    let before = allocations();
    x.fill(0.0);
    let rep = bicgstab_with(&a, &b, &mut x, &jac, &opts, &mut ws).unwrap();
    assert!(rep.converged && rep.iterations > 0);
    assert_eq!(allocations() - before, 0, "bicgstab allocated on warm path");
}
