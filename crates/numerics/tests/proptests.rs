//! Property-based tests for the numerics crate.

use etherm_numerics::dense::DenseMatrix;
use etherm_numerics::interp::{Extrapolate, LinearInterp, PchipInterp};
use etherm_numerics::quadrature::QuadratureRule;
use etherm_numerics::solvers::{
    block_pcg_with, cg, gmres, pcg, pcg_with, solve_tridiagonal, AmgOptions, AmgPrecond,
    BlockKrylovWorkspace, CgOptions, GmresOptions, IdentityPrecond, IncompleteCholesky,
    JacobiPrecond, KrylovWorkspace, SolveReport,
};
use etherm_numerics::sparse::{BlockLinOp, Coo, Csr, CsrBatch, LinOp};
use etherm_numerics::{vector, MultiVec};
use proptest::prelude::*;

/// Strategy: a random SPD matrix built as `B Bᵀ + n·I` from a random square B.
fn spd_matrix(n: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut b = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = data[i * n + j];
            }
        }
        let bt = b.transpose();
        let mut a = b.matmul(&bt).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

fn dense_to_csr(a: &DenseMatrix) -> Csr {
    let mut coo = Coo::new(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            coo.push(i, j, a[(i, j)]);
        }
    }
    Csr::from_coo(&coo)
}

proptest! {
    #[test]
    fn dot_is_commutative(x in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        let d1 = vector::dot(&x, &y);
        let d2 = vector::dot(&y, &x);
        prop_assert!((d1 - d2).abs() <= 1e-9 * d1.abs().max(1.0));
    }

    #[test]
    fn norm_triangle_inequality(
        x in proptest::collection::vec(-1e3f64..1e3, 1..64),
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 - 1.0).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
    }

    #[test]
    fn csr_roundtrip_matches_dense(
        entries in proptest::collection::vec((0usize..8, 0usize..8, -10.0f64..10.0), 0..64),
    ) {
        let mut coo = Coo::new(8, 8);
        let mut dense = DenseMatrix::zeros(8, 8);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
            dense[(i, j)] += if v == 0.0 { 0.0 } else { v };
        }
        let csr = Csr::from_coo(&coo);
        let back = csr.to_dense();
        prop_assert!(dense.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn spmv_is_linear(
        entries in proptest::collection::vec((0usize..6, 0usize..6, -10.0f64..10.0), 1..30),
        x in proptest::collection::vec(-5.0f64..5.0, 6),
        y in proptest::collection::vec(-5.0f64..5.0, 6),
        alpha in -3.0f64..3.0,
    ) {
        let mut coo = Coo::new(6, 6);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
        }
        let a = Csr::from_coo(&coo);
        // A(x + αy) == Ax + αAy
        let mut xy = vec![0.0; 6];
        for i in 0..6 {
            xy[i] = x[i] + alpha * y[i];
        }
        let lhs = a.matvec(&xy);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        for i in 0..6 {
            let rhs = ax[i] + alpha * ay[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_preserves_entries(
        entries in proptest::collection::vec((0usize..7, 0usize..5, -10.0f64..10.0), 0..40),
    ) {
        let mut coo = Coo::new(7, 5);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
        }
        let a = Csr::from_coo(&coo);
        let t = a.transpose();
        for i in 0..7 {
            for j in 0..5 {
                prop_assert_eq!(a.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn cg_solves_random_spd(a in spd_matrix(10), bvec in proptest::collection::vec(-10.0f64..10.0, 10)) {
        let csr = dense_to_csr(&a);
        let mut x = vec![0.0; 10];
        let rep = cg(&csr, &bvec, &mut x, &CgOptions::with_tol(1e-12)).unwrap();
        prop_assert!(rep.converged);
        let mut r = vec![0.0; 10];
        csr.residual(&bvec, &x, &mut r);
        prop_assert!(vector::norm2(&r) <= 1e-8 * vector::norm2(&bvec).max(1.0));
    }

    #[test]
    fn pcg_agrees_with_lu(a in spd_matrix(8), bvec in proptest::collection::vec(-10.0f64..10.0, 8)) {
        let csr = dense_to_csr(&a);
        let mut x = vec![0.0; 8];
        let ic = IncompleteCholesky::new(&csr).unwrap();
        let rep = pcg(&csr, &bvec, &mut x, &ic, &CgOptions::with_tol(1e-13)).unwrap();
        prop_assert!(rep.converged);
        let x_lu = a.solve(&bvec).unwrap();
        prop_assert!(vector::max_abs_diff(&x, &x_lu) < 1e-6);
    }

    #[test]
    fn jacobi_preconditioned_cg_converges(a in spd_matrix(12)) {
        let csr = dense_to_csr(&a);
        let b = vec![1.0; 12];
        let mut x = vec![0.0; 12];
        let j = JacobiPrecond::new(&csr).unwrap();
        let rep = pcg(&csr, &b, &mut x, &j, &CgOptions::default()).unwrap();
        prop_assert!(rep.converged);
    }

    #[test]
    fn lu_solve_then_matvec_roundtrips(a in spd_matrix(9), x_true in proptest::collection::vec(-5.0f64..5.0, 9)) {
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        prop_assert!(vector::max_abs_diff(&x, &x_true) < 1e-6);
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in spd_matrix(7), bvec in proptest::collection::vec(-5.0f64..5.0, 7)) {
        let x_lu = a.solve(&bvec).unwrap();
        let x_ch = a.cholesky().unwrap().solve(&bvec);
        prop_assert!(vector::max_abs_diff(&x_lu, &x_ch) < 1e-8);
    }

    #[test]
    fn tridiagonal_matches_dense(
        n in 2usize..10,
        seed in proptest::collection::vec(0.1f64..2.0, 30),
    ) {
        let diag: Vec<f64> = (0..n).map(|i| 4.0 + seed[i]).collect();
        let lower: Vec<f64> = (0..n - 1).map(|i| -seed[i + 10]).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| -seed[i + 20]).collect();
        let rhs: Vec<f64> = (0..n).map(|i| seed[i] * 3.0 - 1.0).collect();
        let x = solve_tridiagonal(&lower, &diag, &upper, &rhs).unwrap();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i];
        }
        for i in 0..n - 1 {
            a[(i + 1, i)] = lower[i];
            a[(i, i + 1)] = upper[i];
        }
        let xd = a.solve(&rhs).unwrap();
        prop_assert!(vector::max_abs_diff(&x, &xd) < 1e-9);
    }

    #[test]
    fn row_sums_match_matvec_of_ones(
        entries in proptest::collection::vec((0usize..5, 0usize..5, -10.0f64..10.0), 0..25),
    ) {
        let mut coo = Coo::new(5, 5);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
        }
        let a = Csr::from_coo(&coo);
        let ones = vec![1.0; 5];
        let av = a.matvec(&ones);
        let rs = a.row_sums();
        for i in 0..5 {
            prop_assert!((av[i] - rs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gauss_legendre_is_exact_on_random_cubics(
        n in 2usize..24,
        c in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let rule = QuadratureRule::gauss_legendre(n).unwrap();
        let got = rule.integrate(|x| c[0] + c[1] * x + c[2] * x * x + c[3] * x * x * x);
        // ∫_{-1}^{1}: odd terms vanish, c0·2 + c2·2/3.
        let want = 2.0 * c[0] + 2.0 / 3.0 * c[2];
        prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn gauss_hermite_weights_positive_and_nodes_symmetric(n in 1usize..48) {
        let rule = QuadratureRule::gauss_hermite(n).unwrap();
        prop_assert!(rule.weights().iter().all(|&w| w > 0.0));
        let x = rule.nodes();
        for i in 0..n {
            prop_assert!((x[i] + x[n - 1 - i]).abs() < 1e-10);
        }
        let total: f64 = rule.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pchip_stays_within_data_hull_on_monotone_tables(
        raw in proptest::collection::vec(0.01f64..5.0, 3..12),
    ) {
        // Build a strictly increasing table by cumulative sums.
        let mut xs = vec![0.0];
        let mut ys = vec![1.0];
        for (k, &dv) in raw.iter().enumerate() {
            xs.push(xs[k] + 0.5 + dv * 0.1);
            ys.push(ys[k] + dv);
        }
        let f = PchipInterp::new(xs.clone(), ys.clone(), Extrapolate::Clamp).unwrap();
        let (lo, hi) = (ys[0], *ys.last().unwrap());
        for i in 0..=100 {
            let t = xs[0] + (xs[xs.len() - 1] - xs[0]) * i as f64 / 100.0;
            let v = f.eval(t);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "t={t}: {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn linear_interp_is_exact_on_affine_data(
        n in 2usize..10,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let f = LinearInterp::new(xs, ys, Extrapolate::Linear).unwrap();
        for i in 0..40 {
            let t = -2.0 + i as f64 * 0.3;
            prop_assert!((f.eval(t) - (a * t + b)).abs() < 1e-9);
        }
    }

    #[test]
    fn amg_galerkin_coarse_operator_is_symmetric_spd_shaped(
        a in spd_matrix(9),
        theta in 0.0f64..0.3,
    ) {
        // The Galerkin product Pᵀ·A·P of a random SPD matrix must stay
        // symmetric with a nonnegative diagonal on every coarse level.
        let csr = dense_to_csr(&a);
        let opts = AmgOptions {
            strength_theta: theta,
            coarse_max: 2,
            ..AmgOptions::default()
        };
        let m = AmgPrecond::new(&csr, opts).unwrap();
        for l in 1..m.n_levels() {
            let ac = m.level_matrix(l);
            let scale = ac.norm_inf().max(1e-30);
            prop_assert!(ac.is_symmetric(1e-12 * scale), "level {} not symmetric", l);
            for i in 0..ac.n_rows() {
                let d = ac.get(i, i);
                prop_assert!(d.is_finite() && d >= 0.0, "level {} diag {} = {}", l, i, d);
            }
        }
        // And the V-cycle still solves the system as a preconditioner.
        let n = csr.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = vec![0.0; n];
        let report = pcg(&csr, &b, &mut x, &m, &CgOptions::default()).unwrap();
        prop_assert!(report.converged);
        let mut r = vec![0.0; n];
        csr.residual(&b, &x, &mut r);
        prop_assert!(vector::norm2(&r) <= 1e-7 * vector::norm2(&b));
    }

    #[test]
    fn block_pcg_k1_is_bit_identical_to_scalar_pcg(
        a in spd_matrix(10),
        bvec in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        // The k=1 degenerate panel must reproduce the scalar solver bit for
        // bit — same iterates, same residuals, same solution words — for
        // arbitrary SPD systems, not just the hand-picked unit-test one.
        let csr = dense_to_csr(&a);
        let n = csr.n_rows();
        let jac = JacobiPrecond::new(&csr).unwrap();
        let opts = CgOptions::with_tol(1e-12);

        let mut x_scalar = vec![0.0; n];
        let mut ws = KrylovWorkspace::new();
        let rep = pcg_with(&csr, &bvec, &mut x_scalar, &jac, &opts, &mut ws).unwrap();

        let mut b_panel = MultiVec::zeros(n, 1);
        b_panel.copy_col_from(0, &bvec);
        let mut x_panel = MultiVec::zeros(n, 1);
        let mut bws = BlockKrylovWorkspace::new();
        let mut reports: Vec<SolveReport> = Vec::new();
        let op = CsrBatch::new(vec![&csr], 1);
        block_pcg_with(&op, &b_panel, &mut x_panel, &jac, &opts, &mut bws, &mut reports).unwrap();

        prop_assert_eq!(reports[0].converged, rep.converged);
        prop_assert_eq!(reports[0].iterations, rep.iterations);
        prop_assert_eq!(reports[0].residual.to_bits(), rep.residual.to_bits());
        let x_col = x_panel.col_vec(0);
        for i in 0..n {
            prop_assert_eq!(x_col[i].to_bits(), x_scalar[i].to_bits());
        }
    }

    #[test]
    fn spmm_threaded_is_bit_identical_to_serial_for_any_width(
        entries in proptest::collection::vec((0usize..24, 0usize..24, -10.0f64..10.0), 1..200),
        k in 1usize..40,
        n_threads in 1usize..8,
    ) {
        // The banded threading must stay bitwise equal to the serial kernel
        // for every (k, n_threads) pair because each row's accumulation runs
        // in the identical nnz order on the same contiguous interleaved rows.
        let mut coo = Coo::new(24, 24);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
        }
        let a = Csr::from_coo(&coo);
        let mut x = MultiVec::zeros(24, k);
        for c in 0..k {
            for i in 0..24 {
                x.set(i, c, ((i * 7 + c * 13) % 29) as f64 - 14.0);
            }
        }
        let mut y_serial = MultiVec::zeros(24, k);
        let mut y_threaded = MultiVec::zeros(24, k);
        a.spmm_into(&x, &mut y_serial);
        a.spmm_threaded(&x, &mut y_threaded, n_threads);
        for (s, t) in y_serial.as_slice().iter().zip(y_threaded.as_slice()) {
            prop_assert_eq!(s.to_bits(), t.to_bits());
        }
    }

    #[test]
    fn fused_spmm_dot_is_bit_identical_to_separate_passes(
        entries in proptest::collection::vec((0usize..24, 0usize..24, -10.0f64..10.0), 1..200),
        k in 1usize..20,
    ) {
        // The serial packed kernel that folds the per-column pᵀAp dots into
        // the matrix traversal must agree bitwise with apply-then-dot: it
        // claims the identical four-lane reduction order, so any deviation
        // is a bug, not rounding.
        let mut coo = Coo::new(24, 24);
        for &(i, j, v) in &entries {
            coo.push(i, j, v);
        }
        let a = Csr::from_coo(&coo);
        let mats: Vec<&Csr> = vec![&a; k];
        let mut packed = Vec::new();
        Csr::pack_batch_values(&mats, &mut packed);
        let op = CsrBatch::from_packed(&a, &packed[..a.nnz() * k], 1);
        let mut x = MultiVec::zeros(24, k);
        for c in 0..k {
            for i in 0..24 {
                x.set(i, c, ((i * 11 + c * 5) % 31) as f64 - 15.0);
            }
        }
        let mut y_sep = MultiVec::zeros(24, k);
        let mut y_fused = MultiVec::zeros(24, k);
        let mut lanes = vec![0.0; 5 * k];
        let mut dots_fused = vec![0.0; k];
        op.apply_block_into(&x, &mut y_sep);
        op.apply_block_dot_into(&x, &mut y_fused, &mut lanes, &mut dots_fused);
        for (s, f) in y_sep.as_slice().iter().zip(y_fused.as_slice()) {
            prop_assert_eq!(s.to_bits(), f.to_bits());
        }
        // Reference dots in the documented lane order: the scalar
        // vector::dot of each column pair.
        for c in 0..k {
            let reference = vector::dot(&x.col_vec(c), &y_sep.col_vec(c));
            prop_assert_eq!(dots_fused[c].to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn block_pcg_columns_are_independent_of_panel_packing(
        a in spd_matrix(9),
        rhs in proptest::collection::vec(-10.0f64..10.0, 27),
        perm_seed in 0usize..6,
    ) {
        // Per-column convergence masks mean a column's iterates never read a
        // peer column: permuting the packing order must permute the outputs
        // bitwise, nothing more.
        let csr = dense_to_csr(&a);
        let n = csr.n_rows();
        let k = 3;
        let jac = JacobiPrecond::new(&csr).unwrap();
        let opts = CgOptions::with_tol(1e-12);
        // One of the six permutations of three columns.
        let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = perms[perm_seed];

        let solve = |order: &[usize]| {
            let mut b = MultiVec::zeros(n, k);
            for (slot, &col) in order.iter().enumerate() {
                b.copy_col_from(slot, &rhs[col * n..(col + 1) * n]);
            }
            let mut x = MultiVec::zeros(n, k);
            let mut ws = BlockKrylovWorkspace::new();
            let mut reports: Vec<SolveReport> = Vec::new();
            let op = CsrBatch::new(vec![&csr; k], 1);
            block_pcg_with(&op, &b, &mut x, &jac, &opts, &mut ws, &mut reports).unwrap();
            (x, reports)
        };

        let (x_id, rep_id) = solve(&[0, 1, 2]);
        let (x_pm, rep_pm) = solve(&perm);
        for (slot, &col) in perm.iter().enumerate() {
            prop_assert_eq!(rep_pm[slot].iterations, rep_id[col].iterations);
            prop_assert_eq!(rep_pm[slot].residual.to_bits(), rep_id[col].residual.to_bits());
            let (xs, xc) = (x_pm.col_vec(slot), x_id.col_vec(col));
            for i in 0..n {
                prop_assert_eq!(xs[i].to_bits(), xc[i].to_bits());
            }
        }
    }

    #[test]
    fn gmres_solves_random_diagonally_dominant_systems(
        vals in proptest::collection::vec(-0.4f64..0.4, 48),
        rhs in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        // 8×8 strictly diagonally dominant, generally non-symmetric.
        let n = 8;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
        }
        let mut k = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j && k < vals.len() {
                    coo.push(i, j, vals[k] / n as f64);
                    k += 1;
                }
            }
        }
        let a = Csr::from_coo(&coo);
        let mut x = vec![0.0; n];
        let report = gmres(&a, &rhs, &mut x, &IdentityPrecond::new(n), &GmresOptions::default()).unwrap();
        prop_assert!(report.converged);
        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        for i in 0..n {
            prop_assert!((ax[i] - rhs[i]).abs() < 1e-7);
        }
    }
}
