//! Mesh-independence of AMG-preconditioned CG on a manufactured 3-D
//! Poisson problem.
//!
//! The whole point of the smoothed-aggregation hierarchy is that CG
//! iteration counts stay (nearly) constant as the grid is refined, where
//! single-level preconditioners degrade. This test verifies the property on
//! the 7-point Laplacian with a manufactured solution: a genuine two-grid
//! (`max_levels = 2`) cycle and the full V-cycle must both stay within a
//! tight iteration budget across two refinements, and the computed solution
//! must match the manufactured one.

use etherm_numerics::solvers::{pcg, AmgOptions, AmgPrecond, CgOptions, IncompleteCholesky};
use etherm_numerics::sparse::{Coo, Csr};

/// 7-point Laplacian with Dirichlet-eliminated boundary (diagonal stays 6).
fn poisson3d(nx: usize) -> Csr {
    let n = nx * nx * nx;
    let idx = |i: usize, j: usize, k: usize| (i * nx + j) * nx + k;
    let mut coo = Coo::new(n, n);
    for i in 0..nx {
        for j in 0..nx {
            for k in 0..nx {
                let c = idx(i, j, k);
                coo.push(c, c, 6.0);
                let mut link = |o: usize| coo.push(c, o, -1.0);
                if i > 0 {
                    link(idx(i - 1, j, k));
                }
                if i + 1 < nx {
                    link(idx(i + 1, j, k));
                }
                if j > 0 {
                    link(idx(i, j - 1, k));
                }
                if j + 1 < nx {
                    link(idx(i, j + 1, k));
                }
                if k > 0 {
                    link(idx(i, j, k - 1));
                }
                if k + 1 < nx {
                    link(idx(i, j, k + 1));
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Manufactured smooth solution sampled on the grid.
fn manufactured(nx: usize) -> Vec<f64> {
    let h = 1.0 / (nx + 1) as f64;
    let mut x = Vec::with_capacity(nx * nx * nx);
    for i in 0..nx {
        for j in 0..nx {
            for k in 0..nx {
                let (xi, yj, zk) = (
                    (i + 1) as f64 * h,
                    (j + 1) as f64 * h,
                    (k + 1) as f64 * h,
                );
                x.push(
                    (std::f64::consts::PI * xi).sin()
                        * (std::f64::consts::PI * yj).sin()
                        * (2.0 * std::f64::consts::PI * zk).sin(),
                );
            }
        }
    }
    x
}

/// PCG iterations to solve the manufactured problem on an `nx³` grid, plus
/// the max error against the manufactured solution.
fn solve(nx: usize, opts: AmgOptions) -> (usize, f64) {
    let a = poisson3d(nx);
    let n = a.n_rows();
    let x_true = manufactured(nx);
    let mut b = vec![0.0; n];
    a.spmv(&x_true, &mut b);
    let m = AmgPrecond::new(&a, opts).expect("amg builds");
    let mut x = vec![0.0; n];
    let report = pcg(&a, &b, &mut x, &m, &CgOptions::with_tol(1e-10)).expect("pcg runs");
    assert!(report.converged, "nx = {nx}: {report}");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    (report.iterations, err)
}

#[test]
fn two_grid_iterations_bounded_across_refinements() {
    // A genuine two-grid cycle needs the single coarse level solved
    // *exactly*; `coarse_max = 128` keeps the ~n/8 aggregate count of both
    // refinements inside the dense-direct fallback (8·coarse_max).
    let opts = AmgOptions {
        max_levels: 2,
        coarse_max: 128,
        ..AmgOptions::default()
    };
    let (it_coarse, err_coarse) = solve(8, opts);
    let (it_fine, err_fine) = solve(16, opts);
    assert!(err_coarse < 1e-8 && err_fine < 1e-8);
    // Near-mesh-independence: refining 8³ → 16³ (8× the unknowns) may grow
    // the iteration count by at most 30 %.
    assert!(
        (it_fine as f64) <= 1.3 * it_coarse as f64,
        "two-grid iterations grew {it_coarse} -> {it_fine}"
    );
    assert!(it_fine <= 30, "two-grid cycle too weak: {it_fine} iterations");
}

#[test]
fn vcycle_iterations_bounded_while_ic_degrades() {
    let (it_coarse, _) = solve(8, AmgOptions::default());
    let (it_fine, err) = solve(16, AmgOptions::default());
    assert!(err < 1e-8);
    assert!(
        (it_fine as f64) <= 1.3 * it_coarse as f64,
        "V-cycle iterations grew {it_coarse} -> {it_fine}"
    );
    // Reference point: a single-level IC(0) factorization degrades with
    // refinement on the same problem (this is what motivates AMG).
    let ic_iters = |nx: usize| {
        let a = poisson3d(nx);
        let n = a.n_rows();
        let x_true = manufactured(nx);
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let mut x = vec![0.0; n];
        let report = pcg(&a, &b, &mut x, &ic, &CgOptions::with_tol(1e-10)).unwrap();
        assert!(report.converged);
        report.iterations
    };
    let ic_growth = ic_iters(16) as f64 / ic_iters(8).max(1) as f64;
    assert!(
        ic_growth > 1.3,
        "expected IC(0) iteration growth beyond 1.3x, got {ic_growth}"
    );
}
