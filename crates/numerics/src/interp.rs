//! One-dimensional interpolation: piecewise linear and monotone cubic
//! (Fritsch–Carlson) interpolants.
//!
//! Used for tabulated temperature-dependent material curves (σ(T), λ(T) from
//! data tables rather than first-order laws) and for resampling time series
//! when comparing transients computed with different step sizes.

use crate::error::NumericsError;

/// Extrapolation behaviour outside the abscissa range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extrapolate {
    /// Clamp to the boundary value (default; physical for material tables).
    #[default]
    Clamp,
    /// Extend the boundary segment/tangent linearly.
    Linear,
}

/// Piecewise-linear interpolant through `(x_k, y_k)` with strictly
/// increasing `x_k`.
///
/// # Example
///
/// ```
/// use etherm_numerics::interp::{Extrapolate, LinearInterp};
///
/// # fn main() -> Result<(), etherm_numerics::NumericsError> {
/// let f = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 2.0], Extrapolate::Clamp)?;
/// assert_eq!(f.eval(0.5), 1.0);
/// assert_eq!(f.eval(10.0), 2.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    x: Vec<f64>,
    y: Vec<f64>,
    extrapolate: Extrapolate,
}

impl LinearInterp {
    /// Builds the interpolant.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if fewer than two points
    /// are supplied, lengths differ, any value is non-finite, or the
    /// abscissae are not strictly increasing.
    pub fn new(x: Vec<f64>, y: Vec<f64>, extrapolate: Extrapolate) -> Result<Self, NumericsError> {
        validate_table(&x, &y)?;
        Ok(LinearInterp { x, y, extrapolate })
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the table is empty (never true for constructed interpolants).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Evaluates the interpolant at `t`.
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.x.len();
        if t <= self.x[0] {
            return match self.extrapolate {
                Extrapolate::Clamp => self.y[0],
                Extrapolate::Linear => {
                    let s = (self.y[1] - self.y[0]) / (self.x[1] - self.x[0]);
                    self.y[0] + s * (t - self.x[0])
                }
            };
        }
        if t >= self.x[n - 1] {
            return match self.extrapolate {
                Extrapolate::Clamp => self.y[n - 1],
                Extrapolate::Linear => {
                    let s = (self.y[n - 1] - self.y[n - 2]) / (self.x[n - 1] - self.x[n - 2]);
                    self.y[n - 1] + s * (t - self.x[n - 1])
                }
            };
        }
        let k = segment_index(&self.x, t);
        let u = (t - self.x[k]) / (self.x[k + 1] - self.x[k]);
        self.y[k] + u * (self.y[k + 1] - self.y[k])
    }
}

/// Monotone cubic Hermite interpolant (Fritsch–Carlson slope limiting).
///
/// Preserves monotonicity of the data: if the `y_k` are non-decreasing on a
/// segment, so is the interpolant — important for physical material curves
/// where a plain cubic spline would overshoot.
#[derive(Debug, Clone, PartialEq)]
pub struct PchipInterp {
    x: Vec<f64>,
    y: Vec<f64>,
    slope: Vec<f64>,
    extrapolate: Extrapolate,
}

impl PchipInterp {
    /// Builds the interpolant.
    ///
    /// # Errors
    ///
    /// Same validation as [`LinearInterp::new`].
    pub fn new(x: Vec<f64>, y: Vec<f64>, extrapolate: Extrapolate) -> Result<Self, NumericsError> {
        validate_table(&x, &y)?;
        let n = x.len();
        let mut delta = vec![0.0; n - 1];
        for k in 0..n - 1 {
            delta[k] = (y[k + 1] - y[k]) / (x[k + 1] - x[k]);
        }
        let mut slope = vec![0.0; n];
        slope[0] = delta[0];
        slope[n - 1] = delta[n - 2];
        for k in 1..n - 1 {
            if delta[k - 1] * delta[k] <= 0.0 {
                slope[k] = 0.0;
            } else {
                // Weighted harmonic mean (Fritsch–Butland variant), which
                // automatically satisfies the Fritsch–Carlson region.
                let h0 = x[k] - x[k - 1];
                let h1 = x[k + 1] - x[k];
                let w1 = 2.0 * h1 + h0;
                let w2 = h1 + 2.0 * h0;
                slope[k] = (w1 + w2) / (w1 / delta[k - 1] + w2 / delta[k]);
            }
        }
        Ok(PchipInterp {
            x,
            y,
            slope,
            extrapolate,
        })
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the table is empty (never true for constructed interpolants).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Evaluates the interpolant at `t`.
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.x.len();
        if t <= self.x[0] {
            return match self.extrapolate {
                Extrapolate::Clamp => self.y[0],
                Extrapolate::Linear => self.y[0] + self.slope[0] * (t - self.x[0]),
            };
        }
        if t >= self.x[n - 1] {
            return match self.extrapolate {
                Extrapolate::Clamp => self.y[n - 1],
                Extrapolate::Linear => self.y[n - 1] + self.slope[n - 1] * (t - self.x[n - 1]),
            };
        }
        let k = segment_index(&self.x, t);
        let h = self.x[k + 1] - self.x[k];
        let u = (t - self.x[k]) / h;
        let (h00, h10, h01, h11) = hermite_basis(u);
        h00 * self.y[k] + h10 * h * self.slope[k] + h01 * self.y[k + 1] + h11 * h * self.slope[k + 1]
    }
}

fn hermite_basis(u: f64) -> (f64, f64, f64, f64) {
    let u2 = u * u;
    let u3 = u2 * u;
    (
        2.0 * u3 - 3.0 * u2 + 1.0,
        u3 - 2.0 * u2 + u,
        -2.0 * u3 + 3.0 * u2,
        u3 - u2,
    )
}

fn segment_index(x: &[f64], t: f64) -> usize {
    // Binary search for the segment with x[k] <= t < x[k+1].
    match x.partition_point(|&v| v <= t) {
        0 => 0,
        p => (p - 1).min(x.len() - 2),
    }
}

fn validate_table(x: &[f64], y: &[f64]) -> Result<(), NumericsError> {
    if x.len() < 2 || x.len() != y.len() {
        return Err(NumericsError::InvalidArgument(format!(
            "interpolation table needs ≥ 2 matching points (got {}/{})",
            x.len(),
            y.len()
        )));
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidArgument(
            "interpolation table must be finite".into(),
        ));
    }
    if x.windows(2).any(|w| w[0] >= w[1]) {
        return Err(NumericsError::InvalidArgument(
            "interpolation abscissae must be strictly increasing".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_knots_and_midpoints() {
        let f = LinearInterp::new(
            vec![0.0, 1.0, 2.0, 4.0],
            vec![1.0, 3.0, 2.0, 2.0],
            Extrapolate::Clamp,
        )
        .unwrap();
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (4.0, 2.0)] {
            assert_eq!(f.eval(x), y);
        }
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.eval(3.0), 2.0);
    }

    #[test]
    fn linear_extrapolation_modes() {
        let clamp =
            LinearInterp::new(vec![0.0, 1.0], vec![0.0, 2.0], Extrapolate::Clamp).unwrap();
        assert_eq!(clamp.eval(-1.0), 0.0);
        assert_eq!(clamp.eval(5.0), 2.0);
        let lin = LinearInterp::new(vec![0.0, 1.0], vec![0.0, 2.0], Extrapolate::Linear).unwrap();
        assert_eq!(lin.eval(-1.0), -2.0);
        assert_eq!(lin.eval(2.0), 4.0);
    }

    #[test]
    fn pchip_reproduces_linear_data_exactly() {
        let f = PchipInterp::new(
            vec![0.0, 0.5, 2.0, 3.0],
            vec![1.0, 2.0, 5.0, 7.0],
            Extrapolate::Linear,
        )
        .unwrap();
        for t in [0.1, 0.25, 1.0, 2.5, 2.9] {
            assert!((f.eval(t) - (1.0 + 2.0 * t)).abs() < 1e-12, "t={t}");
        }
        assert!((f.eval(-1.0) - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn pchip_is_monotone_on_monotone_data() {
        // Data with a sharp knee where a natural cubic spline would overshoot.
        let f = PchipInterp::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 0.1, 0.2, 5.0, 5.1],
            Extrapolate::Clamp,
        )
        .unwrap();
        let mut prev = f.eval(0.0);
        for i in 1..=400 {
            let t = i as f64 * 0.01;
            let v = f.eval(t);
            assert!(v >= prev - 1e-12, "not monotone at t={t}: {v} < {prev}");
            prev = v;
        }
        // Never overshoots the data range.
        assert!(prev <= 5.1 + 1e-12);
    }

    #[test]
    fn pchip_flat_at_local_extrema() {
        let f = PchipInterp::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0, 0.0],
            Extrapolate::Clamp,
        )
        .unwrap();
        // The peak knot must be hit exactly and not exceeded nearby.
        assert_eq!(f.eval(1.0), 1.0);
        assert!(f.eval(0.95) <= 1.0 + 1e-12);
        assert!(f.eval(1.05) <= 1.0 + 1e-12);
    }

    #[test]
    fn pchip_interpolates_smooth_function_accurately() {
        let n = 33;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 3.0).collect();
        let y: Vec<f64> = x.iter().map(|&t| (t).exp()).collect();
        let f = PchipInterp::new(x, y, Extrapolate::Clamp).unwrap();
        // One-sided boundary slopes limit the edge accuracy to ~1e-3.
        for i in 0..300 {
            let t = i as f64 * 0.01;
            let err = (f.eval(t) - t.exp()).abs() / t.exp();
            assert!(err < 2e-3, "t={t}: rel err {err}");
        }
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0], Extrapolate::Clamp).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0], Extrapolate::Clamp).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0], Extrapolate::Clamp).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0], Extrapolate::Clamp).is_err());
        assert!(
            LinearInterp::new(vec![0.0, f64::NAN], vec![1.0, 2.0], Extrapolate::Clamp).is_err()
        );
        assert!(PchipInterp::new(vec![0.0], vec![1.0], Extrapolate::Clamp).is_err());
    }

    #[test]
    fn segment_lookup_edges() {
        let f = LinearInterp::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 1.0, 4.0],
            Extrapolate::Clamp,
        )
        .unwrap();
        // Exactly at an interior knot: continuous from both sides.
        assert_eq!(f.eval(1.0), 1.0);
        assert!((f.eval(1.0 - 1e-12) - 1.0).abs() < 1e-9);
        assert!((f.eval(1.0 + 1e-12) - 1.0).abs() < 1e-9);
    }
}
