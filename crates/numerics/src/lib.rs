//! Dense and sparse linear algebra plus linear/nonlinear solver kernels for the
//! `etherm` electrothermal simulator.
//!
//! The Rust PDE/FEM ecosystem offers no lightweight, dependency-free sparse
//! solver stack, so everything here is handwritten:
//!
//! * [`vector`] — BLAS-1 style operations on `&[f64]` slices,
//! * [`dense`] — small dense matrices with LU and Cholesky factorizations,
//! * [`sparse`] — COO assembly and CSR storage with matrix-vector kernels,
//! * [`multivec`] — column-major `n × k` panels and fused multi-RHS kernels
//!   for the batched (block) Krylov path,
//! * [`solvers`] — CG/PCG (Jacobi, IC(0), SSOR preconditioners), BiCGStab,
//!   and a Thomas tridiagonal solver,
//! * [`fixedpoint`] — a damped fixed-point (Picard) driver used by the
//!   nonlinear electrothermal coupling.
//!
//! # Example
//!
//! Solve a small SPD system with preconditioned CG:
//!
//! ```
//! use etherm_numerics::sparse::{Coo, Csr};
//! use etherm_numerics::solvers::{pcg, IncompleteCholesky, CgOptions};
//!
//! // 1D Laplacian with Dirichlet ends: tridiag(-1, 2, -1).
//! let n = 16;
//! let mut coo = Coo::new(n, n);
//! for i in 0..n {
//!     coo.push(i, i, 2.0);
//!     if i + 1 < n {
//!         coo.push(i, i + 1, -1.0);
//!         coo.push(i + 1, i, -1.0);
//!     }
//! }
//! let a = Csr::from_coo(&coo);
//! let b = vec![1.0; n];
//! let precond = IncompleteCholesky::new(&a).unwrap();
//! let mut x = vec![0.0; n];
//! let report = pcg(&a, &b, &mut x, &precond, &CgOptions::default()).unwrap();
//! assert!(report.converged);
//! ```

#![forbid(unsafe_code)]

pub mod dense;
pub mod error;
pub mod fixedpoint;
pub mod interp;
pub mod multivec;
pub mod quadrature;
pub mod solvers;
pub mod sparse;
pub mod vector;

pub use error::NumericsError;
pub use multivec::MultiVec;
pub use sparse::{BlockLinOp, Coo, Csr, CsrBatch, LinOp, ParSpmv};
