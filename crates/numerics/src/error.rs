//! Error types for the numerics crate.

use std::fmt;

/// Errors produced by linear-algebra routines and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A factorization broke down (zero/negative pivot, loss of positive
    /// definiteness, ...).
    FactorizationFailed {
        /// Which factorization failed.
        kind: &'static str,
        /// Index of the offending pivot/row.
        index: usize,
    },
    /// An iterative solver hit its iteration limit without converging.
    NotConverged {
        /// Solver name.
        solver: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// An iterative solver encountered a numerical breakdown (e.g. division
    /// by a vanishing inner product).
    Breakdown {
        /// Solver name.
        solver: &'static str,
        /// Description of the breakdown.
        detail: &'static str,
    },
    /// A solver detected a non-finite (NaN/Inf) value in its input or
    /// iteration state and stopped instead of iterating on garbage. Unlike
    /// [`NumericsError::Breakdown`] (a structural property of the operator,
    /// e.g. loss of positive definiteness), a non-finite value usually means
    /// contaminated data — the caller may retry from a clean state.
    NonFinite {
        /// Solver name.
        solver: &'static str,
        /// Which quantity became non-finite.
        detail: &'static str,
    },
    /// An argument was invalid (NaN input, empty system, zero step, ...).
    InvalidArgument(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            NumericsError::FactorizationFailed { kind, index } => {
                write!(f, "{kind} factorization failed at pivot {index}")
            }
            NumericsError::NotConverged {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::Breakdown { solver, detail } => {
                write!(f, "{solver} breakdown: {detail}")
            }
            NumericsError::NonFinite { solver, detail } => {
                write!(f, "{solver} encountered a non-finite {detail}")
            }
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumericsError::DimensionMismatch {
            context: "spmv",
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains('4'));

        let e = NumericsError::NotConverged {
            solver: "cg",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("cg"));
        assert!(e.to_string().contains("100"));

        let e = NumericsError::Breakdown {
            solver: "bicgstab",
            detail: "rho vanished",
        };
        assert!(e.to_string().contains("rho"));

        let e = NumericsError::FactorizationFailed {
            kind: "cholesky",
            index: 2,
        };
        assert!(e.to_string().contains("cholesky"));

        let e = NumericsError::InvalidArgument("empty".into());
        assert!(e.to_string().contains("empty"));

        let e = NumericsError::NonFinite {
            solver: "pcg",
            detail: "residual",
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("residual"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
