//! BLAS-1 style vector operations on `&[f64]` slices.
//!
//! The simulator stores all field vectors (potentials, temperatures, heat
//! sources) as plain `Vec<f64>`, so these free functions are the workhorse of
//! every solver kernel.
//!
//! All functions panic on dimension mismatch — such mismatches are programmer
//! errors inside the solver stack, not recoverable runtime conditions.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Accumulate in four independent lanes: meaningfully faster than a naive
    // fold on long vectors and deterministic across runs.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// `y ← a·x + y`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Fused `y ← a·x + y` returning `‖y‖₂` of the updated vector.
///
/// One memory pass instead of two for CG's residual update + norm check.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpy_norm2(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_norm2: length mismatch");
    // Same four-lane accumulation as [`dot`]: deterministic and keeps the
    // floating-point dependency chain short.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = 4 * c;
        for l in 0..4 {
            let v = y[i + l] + a * x[i + l];
            y[i + l] = v;
            acc[l] += v * v;
        }
    }
    let mut tail = 0.0;
    for i in 4 * chunks..x.len() {
        let v = y[i] + a * x[i];
        y[i] = v;
        tail += v * v;
    }
    (acc[0] + acc[1] + acc[2] + acc[3] + tail).sqrt()
}

/// `y ← x + b·y` (the "xpby" update used by CG's direction recurrence).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Sets every entry of `x` to `value`.
#[inline]
pub fn fill(x: &mut [f64], value: f64) {
    for xi in x.iter_mut() {
        *xi = value;
    }
}

/// Component-wise product `z ← x ⊙ y`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: output length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] * y[i];
    }
}

/// Maximum absolute component-wise difference `‖x − y‖∞`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Relative ℓ₂ difference `‖x − y‖₂ / max(‖y‖₂, floor)`.
///
/// Useful as a Picard-iteration convergence measure that stays meaningful
/// when the reference vector is (nearly) zero.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rel_diff2(x: &[f64], y: &[f64], floor: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_diff2: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    num.sqrt() / den.sqrt().max(floor)
}

/// Returns `true` if every entry is finite (no NaN/∞).
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Sum of all entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    // Pairwise-ish summation for improved accuracy on long vectors.
    if x.len() <= 32 {
        return x.iter().sum();
    }
    let mid = x.len() / 2;
    sum(&x[..mid]) + sum(&x[mid..])
}

/// Arithmetic mean; returns 0 for the empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Index and value of the maximum entry; `None` for the empty slice.
/// NaN entries are ignored (never selected) unless all entries are NaN.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.or_else(|| x.first().map(|&v| (0, v)))
}

/// Linear interpolation between `a` and `b` with parameter `t ∈ [0, 1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..101).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..101).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn axpy_norm2_matches_separate_ops() {
        let x: Vec<f64> = (0..57).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y: Vec<f64> = (0..57).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y2 = y.clone();
        let n = axpy_norm2(-0.35, &x, &mut y);
        axpy(-0.35, &x, &mut y2);
        assert_eq!(y, y2);
        assert_eq!(n, norm2(&y2));
    }

    #[test]
    fn norms_on_known_vector() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert!((norm_inf(&x) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_and_xpby() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        let mut p = [1.0, 1.0, 1.0];
        xpby(&x, 0.5, &mut p); // p = x + 0.5 p
        assert_eq!(p, [1.5, 2.5, 3.5]);
    }

    #[test]
    fn scale_fill_copy() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        fill(&mut x, 7.0);
        assert_eq!(x, [7.0, 7.0]);
        let src = [1.0, 2.0];
        let mut dst = [0.0; 2];
        copy(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn hadamard_product() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let mut z = [0.0; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn diffs() {
        let x = [1.0, 2.0];
        let y = [1.5, 1.0];
        assert!((max_abs_diff(&x, &y) - 1.0).abs() < 1e-15);
        assert!(rel_diff2(&x, &x, 1e-30) == 0.0);
        assert!(rel_diff2(&x, &y, 1e-30) > 0.0);
    }

    #[test]
    fn rel_diff_uses_floor_for_zero_reference() {
        let x = [1e-12, 0.0];
        let y = [0.0, 0.0];
        let d = rel_diff2(&x, &y, 1.0);
        assert!((d - 1e-12).abs() < 1e-20);
    }

    #[test]
    fn finite_detection() {
        assert!(all_finite(&[0.0, 1.0, -2.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn sum_is_accurate_on_long_vectors() {
        let x = vec![0.1; 10_000];
        assert!((sum(&x) - 1000.0).abs() < 1e-9);
        assert!((mean(&x) - 0.1).abs() < 1e-13);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn argmax_basic_and_nan() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some((1, 3.0)));
        // First maximal entry wins.
        assert_eq!(argmax(&[5.0, 5.0]), Some((0, 5.0)));
        // NaN is skipped.
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some((1, 2.0)));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
