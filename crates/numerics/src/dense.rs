//! Small dense matrices with LU and Cholesky factorizations.
//!
//! Dense routines are used for reference solutions in tests, for the analytic
//! multi-segment bonding-wire chains (a handful of unknowns), and as a
//! fallback direct solver for tiny systems. They are *not* intended for the
//! discretized field problems — use [`crate::sparse`] + [`crate::solvers`]
//! there.

use crate::error::NumericsError;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use etherm_numerics::dense::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
/// let x = a.solve(&[1.0, 2.0]).unwrap();
/// // Verify A x = b.
/// let r = a.matvec(&x);
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if the rows have differing
    /// lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        if rows.is_empty() {
            return Err(NumericsError::InvalidArgument(
                "from_rows: no rows given".into(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericsError::InvalidArgument(
                "from_rows: ragged rows".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = DenseMatrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = crate::vector::dot(row, x);
        }
        y
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix, NumericsError> {
        if self.cols != b.rows {
            return Err(NumericsError::DimensionMismatch {
                context: "matmul",
                expected: self.cols,
                found: b.rows,
            });
        }
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        Ok(c)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute entry difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff: shape mismatch"
        );
        crate::vector::max_abs_diff(&self.data, &other.data)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if the matrix is
    /// (numerically) singular, and [`NumericsError::InvalidArgument`] if it is
    /// not square.
    pub fn lu(&self) -> Result<LuFactors, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidArgument(
                "lu: matrix must be square".into(),
            ));
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;
        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "lu",
                    index: k,
                });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in k + 1..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(LuFactors {
            n,
            lu,
            perm,
            sign,
        })
    }

    /// Cholesky factorization `A = L Lᵀ` for symmetric positive definite `A`.
    ///
    /// Only the lower triangle of `self` is read.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if a non-positive pivot
    /// is encountered (matrix not SPD) and [`NumericsError::InvalidArgument`]
    /// for non-square input.
    pub fn cholesky(&self) -> Result<CholeskyFactor, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidArgument(
                "cholesky: matrix must be square".into(),
            ));
        }
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(NumericsError::FactorizationFailed {
                            kind: "cholesky",
                            index: i,
                        });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(CholeskyFactor { n, l })
    }

    /// Solves `A x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures; see [`DenseMatrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        Ok(self.lu()?.solve(b))
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns an error for non-square matrices. Singular matrices yield
    /// `Ok(0.0)` only when the zero pivot occurs on the last column; earlier
    /// breakdowns are reported as factorization failures.
    pub fn det(&self) -> Result<f64, NumericsError> {
        match self.lu() {
            Ok(f) => Ok(f.det()),
            Err(NumericsError::FactorizationFailed { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Packed LU factors with the row permutation, produced by [`DenseMatrix::lu`].
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "LuFactors::solve: dimension mismatch");
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.lu[i * n + k] * x[k];
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in i + 1..n {
                s -= self.lu[i * n + k] * x[k];
            }
            x[i] = s / self.lu[i * n + i];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`, produced by
/// [`DenseMatrix::cholesky`].
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    l: Vec<f64>,
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` of the factor (zero above the diagonal).
    pub fn l(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[i * self.n + j]
        }
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "CholeskyFactor::solve: dimension mismatch");
        let n = self.n;
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.l[i * n + k] * y[k];
            }
            y[i] = s / self.l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.l[k * n + i] * y[k];
            }
            y[i] = s / self.l[i * n + i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_spd() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[4.0, 1.0, 0.5],
            &[1.0, 3.0, 0.25],
            &[0.5, 0.25, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        for i in 0..4 {
            assert!((x[i] - b[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn lu_solves_random_system() {
        let a = DenseMatrix::from_rows(&[
            &[2.0, -1.0, 3.0],
            &[4.0, 2.0, 1.0],
            &[-6.0, 1.0, 2.0],
        ])
        .unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.lu(),
            Err(NumericsError::FactorizationFailed { kind: "lu", .. })
        ));
        assert_eq!(a.det().unwrap(), 0.0);
    }

    #[test]
    fn lu_requires_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(NumericsError::InvalidArgument(_))));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.det().unwrap() - (-2.0)).abs() < 1e-14);
        // Permutation handling: swapping rows flips the sign.
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]).unwrap();
        assert!((b.det().unwrap() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = example_spd();
        let f = a.cholesky().unwrap();
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += f.l(i, k) * f.l(j, k);
                }
                assert!((s - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solve_matches_lu_solve() {
        let a = example_spd();
        let b = [1.0, 0.0, -1.0];
        let x1 = a.cholesky().unwrap().solve(&b);
        let x2 = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x1[i] - x2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(NumericsError::FactorizationFailed {
                kind: "cholesky",
                ..
            })
        ));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        let aat = a.matmul(&at).unwrap();
        // First entry: [1,2]·[1,2] = 5.
        assert_eq!(aat[(0, 0)], 5.0);
        assert!(a.matmul(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(DenseMatrix::from_rows(&[]).is_err());
        assert!(DenseMatrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = DenseMatrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 3);
    }
}
