//! Row-interleaved multi-vector panels for batched (multi-RHS) linear
//! algebra.
//!
//! A [`MultiVec`] stores `k` vectors of length `n` as one contiguous
//! row-interleaved buffer: *row* `i` — entry `i` of every column — occupies
//! `data[i·k .. (i+1)·k]`. A sparse row traversal that touches entry `j` of
//! the operand therefore loads one contiguous `k`-wide slice (`x.row(j)`)
//! instead of `k` scattered values 8·n bytes apart, which is what makes the
//! fused kernels ([`Csr::spmm_into`](crate::sparse::Csr::spmm_into), the
//! batched AMG V-cycle, the interleaved block CG) faster than `k` scalar
//! passes rather than merely equivalent to them. Per-*column* operations
//! remain bit-reproducible because each column's floating-point operation
//! sequence (row order, nnz order, reduction lanes) is kept identical to the
//! scalar kernels — the layout changes the stride, never the order.

/// A dense `n × k` panel of `k` column vectors, stored row-interleaved
/// (`self[i, c] == data[i·k + c]`, rows contiguous).
///
/// Buffers grow on demand and never shrink ([`MultiVec::ensure`]), so a
/// panel reused across same-shaped solves is heap-allocation-free after the
/// first call — the same steady-state contract as
/// [`KrylovWorkspace`](crate::solvers::KrylovWorkspace).
///
/// # Example
///
/// Advance `k = 8` right-hand sides with one matrix traversal and solve
/// them simultaneously with the interleaved block CG:
///
/// ```
/// use etherm_numerics::multivec::MultiVec;
/// use etherm_numerics::solvers::{block_pcg_with, BlockKrylovWorkspace, CgOptions};
/// use etherm_numerics::solvers::JacobiPrecond;
/// use etherm_numerics::sparse::{Coo, Csr};
///
/// // 1D Laplacian, 32 DoFs.
/// let n = 32;
/// let mut coo = Coo::new(n, n);
/// for i in 0..n {
///     coo.push(i, i, 2.0);
///     if i + 1 < n {
///         coo.push(i, i + 1, -1.0);
///         coo.push(i + 1, i, -1.0);
///     }
/// }
/// let a = Csr::from_coo(&coo);
///
/// // Panel of 8 right-hand sides: column j is the scaled unit load (j+1)·e_j.
/// let k = 8;
/// let mut b = MultiVec::zeros(n, k);
/// for j in 0..k {
///     b.set(j, j, (j + 1) as f64);
/// }
///
/// // One fused traversal computes A·B for all 8 columns...
/// let mut ab = MultiVec::zeros(n, k);
/// a.spmm_into(&b, &mut ab);
/// assert_eq!(ab.get(0, 0), 2.0);
///
/// // ...and the block solver shares every traversal across the panel.
/// let precond = JacobiPrecond::new(&a).unwrap();
/// let mut x = MultiVec::zeros(n, k);
/// let mut ws = BlockKrylovWorkspace::new();
/// let mut reports = Vec::new();
/// block_pcg_with(&a, &b, &mut x, &precond, &CgOptions::default(), &mut ws, &mut reports)
///     .unwrap();
/// assert!(reports.iter().all(|r| r.converged));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiVec {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An empty panel (`0 × 0`); storage is allocated by [`MultiVec::ensure`].
    pub fn new() -> Self {
        MultiVec::default()
    }

    /// A zero-initialized `n × k` panel.
    pub fn zeros(n: usize, k: usize) -> Self {
        MultiVec {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Number of rows `n` (the length of each column).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of columns `k` (the panel width).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.k
    }

    /// Reshapes to `n × k`, growing the backing buffer only when the new
    /// shape needs more storage than any previous one (grow-never-shrink:
    /// reuse across same-shaped solves is allocation-free after warm-up).
    /// Newly exposed storage is zeroed; previously stored values are *not*
    /// preserved entry-wise across shape changes.
    pub fn ensure(&mut self, n: usize, k: usize) {
        let need = n * k;
        if self.data.len() < need {
            self.data.resize(need, 0.0);
        }
        self.n = n;
        self.k = k;
    }

    /// Row `i` — entry `i` of every column — as a contiguous `k`-slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "MultiVec: row {i} out of {}", self.n);
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Row `i` as a contiguous mutable `k`-slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.n, "MultiVec: row {i} out of {}", self.n);
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Entry `(i, c)` (row `i` of column `c`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `c` is out of range.
    #[inline]
    pub fn get(&self, i: usize, c: usize) -> f64 {
        assert!(c < self.k, "MultiVec: column {c} out of {}", self.k);
        self.row(i)[c]
    }

    /// Sets entry `(i, c)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `c` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, c: usize, value: f64) {
        assert!(c < self.k, "MultiVec: column {c} out of {}", self.k);
        self.row_mut(i)[c] = value;
    }

    /// Sets every entry of the logical `n × k` panel to `value`.
    pub fn fill(&mut self, value: f64) {
        let logical = self.n * self.k;
        for v in &mut self.data[..logical] {
            *v = value;
        }
    }

    /// The logical `n·k` storage as one row-interleaved slice
    /// (`self[i, c] == as_slice()[i·k + c]`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data[..self.n * self.k]
    }

    /// The logical `n·k` storage as one mutable row-interleaved slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        let logical = self.n * self.k;
        &mut self.data[..logical]
    }

    /// Copies `src` into column `c` (strided write, one entry per row).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or `src.len() != self.n_rows()`.
    pub fn copy_col_from(&mut self, c: usize, src: &[f64]) {
        assert!(c < self.k, "MultiVec: column {c} out of {}", self.k);
        assert_eq!(src.len(), self.n, "copy_col_from: length");
        if self.n == 0 {
            return;
        }
        let k = self.k;
        for (dst, &v) in self.data[c..].iter_mut().step_by(k).zip(src) {
            *dst = v;
        }
    }

    /// Copies column `c` into `dst` (strided read, one entry per row).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or `dst.len() != self.n_rows()`.
    pub fn copy_col_into(&self, c: usize, dst: &mut [f64]) {
        assert!(c < self.k, "MultiVec: column {c} out of {}", self.k);
        assert_eq!(dst.len(), self.n, "copy_col_into: length");
        if self.n == 0 {
            return;
        }
        let logical = self.n * self.k;
        for (d, src) in dst.iter_mut().zip(self.data[..logical][c..].iter().step_by(self.k)) {
            *d = *src;
        }
    }

    /// Column `c` gathered into a freshly allocated `Vec` (convenience for
    /// tests and result extraction; the hot paths use [`MultiVec::row`] /
    /// [`MultiVec::copy_col_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_cols()`.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.copy_col_into(c, &mut out);
        out
    }

    /// Copies the logical panel of `other` (same shape required).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_panel_from(&mut self, other: &MultiVec) {
        assert_eq!(self.n, other.n, "copy_panel_from: row count");
        assert_eq!(self.k, other.k, "copy_panel_from: panel width");
        self.as_mut_slice().copy_from_slice(other.as_slice());
    }
}

/// Per-column dot products of two interleaved panels:
/// `out[c] ← Σᵢ x[i,c]·y[i,c]`, every column at once.
///
/// Replicates [`crate::vector::dot`] per column exactly: lane `l ∈ 0..4`
/// accumulates rows `4t + l` of the first `4·⌊n/4⌋` rows, the tail lane the
/// remaining rows, and the reduction is `(((l₀ + l₁) + l₂) + l₃) + tail` —
/// so `out[c]` is bit-identical to `dot(x.col(c), y.col(c))`. Shared by the
/// block solver's standalone dot passes and the fused
/// spmm-plus-dot kernel ([`Csr::spmm_packed_dot_into`]), which must agree
/// bit for bit.
///
/// `lanes` is scratch of length `≥ 5k` (four lanes + tail).
///
/// [`Csr::spmm_packed_dot_into`]: crate::sparse::Csr::spmm_packed_dot_into
pub(crate) fn dot_columns(
    x: &[f64],
    y: &[f64],
    n: usize,
    k: usize,
    lanes: &mut [f64],
    out: &mut [f64],
) {
    let lanes = &mut lanes[..5 * k];
    lanes.fill(0.0);
    let chunks = n / 4;
    for t in 0..chunks {
        let base = 4 * t * k;
        for l in 0..4 {
            let xrow = &x[base + l * k..base + (l + 1) * k];
            let yrow = &y[base + l * k..base + (l + 1) * k];
            let lane = &mut lanes[l * k..(l + 1) * k];
            for ((lv, xv), yv) in lane.iter_mut().zip(xrow).zip(yrow) {
                *lv += xv * yv;
            }
        }
    }
    for i in 4 * chunks..n {
        let xrow = &x[i * k..(i + 1) * k];
        let yrow = &y[i * k..(i + 1) * k];
        let tail = &mut lanes[4 * k..5 * k];
        for ((tv, xv), yv) in tail.iter_mut().zip(xrow).zip(yrow) {
            *tv += xv * yv;
        }
    }
    for (c, o) in out[..k].iter_mut().enumerate() {
        *o = lanes[c] + lanes[k + c] + lanes[2 * k + c] + lanes[3 * k + c] + lanes[4 * k + c];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_entry_access() {
        let mut m = MultiVec::zeros(3, 2);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        m.set(2, 1, 5.0);
        assert_eq!(m.col_vec(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col_vec(0), &[0.0; 3]);
        // Row-interleaved: entry (2, 1) sits at 2·k + 1 = 5.
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0, 0.0, 0.0, 5.0]);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.row(2), &[0.0, 5.0]);
    }

    #[test]
    fn ensure_grows_and_never_shrinks() {
        let mut m = MultiVec::new();
        m.ensure(4, 3);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        let cap = m.data.capacity();
        m.ensure(2, 2);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.as_slice().len(), 4);
        assert_eq!(m.data.capacity(), cap, "shrinking shape must not realloc");
        m.ensure(4, 3);
        assert_eq!(m.data.capacity(), cap, "regrowth within capacity");
    }

    #[test]
    fn rows_are_contiguous_and_ordered() {
        let mut m = MultiVec::zeros(2, 3);
        for i in 0..2 {
            for c in 0..3 {
                m.set(i, c, (10 * i + c) as f64);
            }
        }
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn fill_and_copy_helpers() {
        let mut m = MultiVec::zeros(2, 2);
        m.fill(1.5);
        assert_eq!(m.as_slice(), &[1.5; 4]);
        m.copy_col_from(1, &[3.0, 4.0]);
        assert_eq!(m.col_vec(1), &[3.0, 4.0]);
        assert_eq!(m.col_vec(0), &[1.5, 1.5]);
        let mut out = vec![0.0; 2];
        m.copy_col_into(1, &mut out);
        assert_eq!(out, &[3.0, 4.0]);
        let mut other = MultiVec::zeros(2, 2);
        other.copy_panel_from(&m);
        assert_eq!(other.col_vec(0), &[1.5, 1.5]);
        assert_eq!(other.col_vec(1), &[3.0, 4.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = MultiVec::zeros(0, 4);
        assert_eq!(m.as_slice().len(), 0);
        assert_eq!(m.col_vec(3).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn column_out_of_range_panics() {
        let m = MultiVec::zeros(2, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn row_out_of_range_panics() {
        let m = MultiVec::zeros(2, 1);
        let _ = m.row(2);
    }
}
