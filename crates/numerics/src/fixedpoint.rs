//! Damped fixed-point (Picard) iteration driver.
//!
//! The nonlinear electrothermal step solves `x = Φ(x)` where `Φ` lags the
//! temperature-dependent material coefficients. This module provides the
//! generic iteration loop with damping and convergence bookkeeping so the
//! core solver can focus on physics.

use crate::error::NumericsError;
use crate::vector;

/// Options for [`fixed_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointOptions {
    /// Convergence tolerance on the relative ℓ₂ update `‖xₖ₊₁ − xₖ‖/‖xₖ‖`.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Damping factor `θ ∈ (0, 1]`: `xₖ₊₁ = (1−θ)xₖ + θΦ(xₖ)`.
    pub damping: f64,
    /// Floor for the relative-update denominator (see
    /// [`crate::vector::rel_diff2`]).
    pub denom_floor: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            tol: 1e-8,
            max_iter: 50,
            damping: 1.0,
            denom_floor: 1e-12,
        }
    }
}

/// Result of a fixed-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointReport {
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative update size.
    pub update: f64,
    /// History of relative update sizes (one per iteration).
    pub history: Vec<f64>,
}

/// Iterates `x ← (1−θ)x + θΦ(x)` until the relative update drops below
/// `options.tol`.
///
/// The map `phi` writes its output into the provided buffer; `x` is updated
/// in place and holds the fixed point on success.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for a non-positive damping
/// factor or zero `max_iter`, and propagates any error returned by `phi`.
/// Reaching `max_iter` is reported via `converged == false`, not an error.
///
/// # Example
///
/// ```
/// use etherm_numerics::fixedpoint::{fixed_point, FixedPointOptions};
///
/// // Solve x = cos(x) component-wise.
/// let mut x = vec![0.0_f64; 3];
/// let report = fixed_point(
///     &mut x,
///     |x, out| {
///         for (o, xi) in out.iter_mut().zip(x) {
///             *o = xi.cos();
///         }
///         Ok(())
///     },
///     &FixedPointOptions { tol: 1e-12, max_iter: 200, ..Default::default() },
/// )
/// .unwrap();
/// assert!(report.converged);
/// assert!((x[0] - 0.7390851332151607).abs() < 1e-10);
/// ```
pub fn fixed_point<F>(
    x: &mut [f64],
    mut phi: F,
    options: &FixedPointOptions,
) -> Result<FixedPointReport, NumericsError>
where
    F: FnMut(&[f64], &mut [f64]) -> Result<(), NumericsError>,
{
    if options.damping <= 0.0 || options.damping > 1.0 {
        return Err(NumericsError::InvalidArgument(format!(
            "fixed_point: damping must be in (0, 1], got {}",
            options.damping
        )));
    }
    if options.max_iter == 0 {
        return Err(NumericsError::InvalidArgument(
            "fixed_point: max_iter must be positive".into(),
        ));
    }
    let n = x.len();
    let mut next = vec![0.0; n];
    let mut history = Vec::new();
    let theta = options.damping;

    for iter in 1..=options.max_iter {
        phi(x, &mut next)?;
        if !vector::all_finite(&next) {
            return Err(NumericsError::Breakdown {
                solver: "fixed_point",
                detail: "iterate became non-finite",
            });
        }
        // Damped update, measuring the *undamped* step for convergence.
        let update = vector::rel_diff2(&next, x, options.denom_floor);
        history.push(update);
        for i in 0..n {
            x[i] = (1.0 - theta) * x[i] + theta * next[i];
        }
        if update <= options.tol {
            return Ok(FixedPointReport {
                converged: true,
                iterations: iter,
                update,
                history,
            });
        }
    }
    let update = *history.last().unwrap_or(&f64::INFINITY);
    Ok(FixedPointReport {
        converged: false,
        iterations: options.max_iter,
        update,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_contraction() {
        let mut x = vec![1.0; 4];
        let rep = fixed_point(
            &mut x,
            |x, out| {
                for (o, xi) in out.iter_mut().zip(x) {
                    *o = 0.5 * xi + 1.0; // fixed point at 2
                }
                Ok(())
            },
            &FixedPointOptions {
                tol: 1e-12,
                max_iter: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.converged);
        assert!((x[0] - 2.0).abs() < 1e-10);
        // Updates must be monotonically decreasing for a linear contraction.
        for w in rep.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn damping_stabilizes_divergent_map() {
        // Φ(x) = −1.5x + 5 diverges undamped (|Φ'| > 1) but converges with
        // θ = 0.5 since the damped map has slope (1−θ) + θ(−1.5) = −0.25.
        let opts = FixedPointOptions {
            tol: 1e-10,
            max_iter: 200,
            damping: 0.5,
            ..Default::default()
        };
        let mut x = vec![0.0];
        let rep = fixed_point(
            &mut x,
            |x, out| {
                out[0] = -1.5 * x[0] + 5.0;
                Ok(())
            },
            &opts,
        )
        .unwrap();
        assert!(rep.converged, "{rep:?}");
        assert!((x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn reports_non_convergence() {
        let mut x = vec![1.0];
        let rep = fixed_point(
            &mut x,
            |x, out| {
                out[0] = x[0] + 1.0; // no fixed point
                Ok(())
            },
            &FixedPointOptions {
                tol: 1e-10,
                max_iter: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 5);
        assert_eq!(rep.history.len(), 5);
    }

    #[test]
    fn propagates_inner_error() {
        let mut x = vec![1.0];
        let e = fixed_point(
            &mut x,
            |_, _| {
                Err(NumericsError::InvalidArgument("inner".into()))
            },
            &FixedPointOptions::default(),
        );
        assert!(e.is_err());
    }

    #[test]
    fn detects_nan() {
        let mut x = vec![1.0];
        let e = fixed_point(
            &mut x,
            |_, out| {
                out[0] = f64::NAN;
                Ok(())
            },
            &FixedPointOptions::default(),
        );
        assert!(matches!(e, Err(NumericsError::Breakdown { .. })));
    }

    #[test]
    fn validates_options() {
        let mut x = vec![1.0];
        let bad_damping = FixedPointOptions {
            damping: 0.0,
            ..Default::default()
        };
        assert!(fixed_point(&mut x, |_, _| Ok(()), &bad_damping).is_err());
        let bad_iter = FixedPointOptions {
            max_iter: 0,
            ..Default::default()
        };
        assert!(fixed_point(&mut x, |_, _| Ok(()), &bad_iter).is_err());
    }
}
