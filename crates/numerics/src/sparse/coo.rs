//! Coordinate (triplet) format used during matrix assembly.

/// A sparse matrix in coordinate (COO/triplet) format.
///
/// Duplicate entries are allowed and are summed when compressing to CSR,
/// which is exactly the semantics of finite-integration "stamping": every
/// edge/boundary/wire contribution pushes its triplets independently.
///
/// # Example
///
/// ```
/// use etherm_numerics::sparse::{Coo, Csr};
///
/// let mut coo = Coo::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicates accumulate
/// let csr = Csr::from_coo(&coo);
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty `n_rows × n_cols` COO matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Coo {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty COO with pre-allocated capacity for `nnz` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, nnz: usize) -> Self {
        Coo {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (including duplicates and explicit zeros).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends the triplet `(row, col, value)`.
    ///
    /// Zero values are skipped — they would only bloat the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n_rows, "Coo::push: row {row} out of bounds");
        assert!(col < self.n_cols, "Coo::push: col {col} out of bounds");
        if value == 0.0 {
            return;
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Appends the triplet `(row, col, value)` even when `value` is zero,
    /// forcing the position into the sparsity pattern.
    ///
    /// Use this for structural entries (e.g. diagonals that later receive
    /// mass/Robin contributions via `Csr::add_diag`).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    #[inline]
    pub fn push_structural(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n_rows, "Coo::push_structural: row {row} out of bounds");
        assert!(col < self.n_cols, "Coo::push_structural: col {col} out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Stamps a symmetric 2×2 conductance block
    /// `[[g, -g], [-g, g]]` between DoFs `a` and `b`.
    ///
    /// This is the lumped-element stamp of the paper's Eq. for `G_bw`
    /// (two-terminal conductance between two mesh nodes).
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` are out of bounds or if the matrix is not square.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        assert_eq!(
            self.n_rows, self.n_cols,
            "stamp_conductance requires a square matrix"
        );
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Iterates over the stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Removes all triplets, keeping allocations (for reassembly loops).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Appends all triplets of `other`, optionally scaled.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn extend_scaled(&mut self, other: &Coo, scale: f64) {
        assert_eq!(self.n_rows, other.n_rows, "extend_scaled: row mismatch");
        assert_eq!(self.n_cols, other.n_cols, "extend_scaled: col mismatch");
        for (r, c, v) in other.iter() {
            self.push(r, c, scale * v);
        }
    }

    /// Internal accessor used by CSR compression.
    pub(crate) fn triplets(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_skips_zeros_and_counts() {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 0.0);
        assert_eq!(c.nnz(), 0);
        c.push(1, 2, 5.0);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_bounds_checked() {
        let mut c = Coo::new(2, 2);
        c.push(2, 0, 1.0);
    }

    #[test]
    fn conductance_stamp_pattern() {
        let mut c = Coo::new(4, 4);
        c.stamp_conductance(1, 3, 2.0);
        let t: Vec<_> = c.iter().collect();
        assert_eq!(t.len(), 4);
        assert!(t.contains(&(1, 1, 2.0)));
        assert!(t.contains(&(3, 3, 2.0)));
        assert!(t.contains(&(1, 3, -2.0)));
        assert!(t.contains(&(3, 1, -2.0)));
    }

    #[test]
    fn clear_keeps_shape() {
        let mut c = Coo::with_capacity(2, 2, 8);
        c.push(0, 1, 1.0);
        c.clear();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.n_rows(), 2);
    }

    #[test]
    fn extend_scaled_accumulates() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        let mut b = Coo::new(2, 2);
        b.push(0, 0, 2.0);
        b.push(1, 1, 3.0);
        a.extend_scaled(&b, 10.0);
        let t: Vec<_> = a.iter().collect();
        assert!(t.contains(&(0, 0, 1.0)));
        assert!(t.contains(&(0, 0, 20.0)));
        assert!(t.contains(&(1, 1, 30.0)));
    }
}
