//! Sparse matrix storage: COO assembly format and CSR compute format.
//!
//! The FIT assembly path is: stamp entries into a [`Coo`] (duplicates allowed,
//! they are summed), compress once into a [`Csr`], then hand the CSR to the
//! Krylov solvers in [`crate::solvers`]. The [`LinOp`] trait abstracts over
//! "things that can be applied to a vector" so solvers also accept composite
//! operators (e.g. matrix plus rank-one wire updates) without materializing
//! them.

mod coo;
mod csr;

pub use coo::Coo;
pub use csr::Csr;

/// An abstract linear operator `y = A x` on ℝⁿ.
///
/// Implemented by [`Csr`] and by composite operators in higher layers. All
/// Krylov solvers in [`crate::solvers`] are written against this trait.
pub trait LinOp {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y ← A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differ from
    /// [`LinOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Explicit in-place application `y ← A x` into a caller-owned buffer.
    ///
    /// The default forwards to [`LinOp::apply`]; operators that can exploit
    /// the destination (e.g. fused composite updates) may override it. The
    /// Krylov hot path calls this entry point exclusively, so overriding it
    /// is sufficient to keep a composite operator allocation-free.
    #[inline]
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.apply(x, y);
    }
}

/// A [`LinOp`] view of a [`Csr`] whose products run on `n_threads` OS
/// threads via [`Csr::spmv_threaded`].
///
/// The row partition is deterministic and each thread writes a disjoint
/// slice of the output, so the product is bit-identical to the serial one —
/// solvers behave identically regardless of the thread count.
#[derive(Debug, Clone, Copy)]
pub struct ParSpmv<'a> {
    a: &'a Csr,
    n_threads: usize,
}

impl<'a> ParSpmv<'a> {
    /// Wraps `a`; `n_threads <= 1` degenerates to the serial kernel.
    pub fn new(a: &'a Csr, n_threads: usize) -> Self {
        ParSpmv { a, n_threads }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &'a Csr {
        self.a
    }

    /// The configured thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }
}

impl LinOp for ParSpmv<'_> {
    fn dim(&self) -> usize {
        self.a.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_threaded(x, y, self.n_threads);
    }
}

/// A [`LinOp`] that adds a diagonal to a base operator: `(A + diag(d)) x`.
///
/// Used for implicit-Euler systems `(M/Δt + K)` without copying `K`.
#[derive(Debug, Clone)]
pub struct DiagShifted<'a, A: LinOp> {
    base: &'a A,
    diag: &'a [f64],
}

impl<'a, A: LinOp> DiagShifted<'a, A> {
    /// Wraps `base` with an additive diagonal `diag`.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != base.dim()`.
    pub fn new(base: &'a A, diag: &'a [f64]) -> Self {
        assert_eq!(diag.len(), base.dim(), "DiagShifted: diagonal length");
        DiagShifted { base, diag }
    }
}

impl<'a, A: LinOp> LinOp for DiagShifted<'a, A> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        for i in 0..x.len() {
            y[i] += self.diag[i] * x[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_spmv_matches_serial_apply() {
        let mut coo = Coo::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 2, -1.0);
        coo.push(2, 0, -1.0);
        let a = Csr::from_coo(&coo);
        let op = ParSpmv::new(&a, 2);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.n_threads(), 2);
        assert!(std::ptr::eq(op.matrix(), &a));
        let x = [1.0, 2.0, 3.0];
        let mut y_par = [0.0; 3];
        let mut y_ser = [0.0; 3];
        op.apply_into(&x, &mut y_par);
        a.apply(&x, &mut y_ser);
        assert_eq!(y_par, y_ser);
    }

    #[test]
    fn diag_shifted_applies_shift() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = Csr::from_coo(&coo);
        let d = [10.0, 20.0];
        let op = DiagShifted::new(&a, &d);
        assert_eq!(op.dim(), 2);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [11.0, 21.0]);
    }
}
