//! Sparse matrix storage: COO assembly format and CSR compute format.
//!
//! The FIT assembly path is: stamp entries into a [`Coo`] (duplicates allowed,
//! they are summed), compress once into a [`Csr`], then hand the CSR to the
//! Krylov solvers in [`crate::solvers`]. The [`LinOp`] trait abstracts over
//! "things that can be applied to a vector" so solvers also accept composite
//! operators (e.g. matrix plus rank-one wire updates) without materializing
//! them.

mod coo;
mod csr;

pub use coo::Coo;
pub use csr::Csr;

use crate::multivec::{dot_columns, MultiVec};

/// An abstract linear operator `y = A x` on ℝⁿ.
///
/// Implemented by [`Csr`] and by composite operators in higher layers. All
/// Krylov solvers in [`crate::solvers`] are written against this trait.
pub trait LinOp {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y ← A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differ from
    /// [`LinOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Explicit in-place application `y ← A x` into a caller-owned buffer.
    ///
    /// The default forwards to [`LinOp::apply`]; operators that can exploit
    /// the destination (e.g. fused composite updates) may override it. The
    /// Krylov hot path calls this entry point exclusively, so overriding it
    /// is sufficient to keep a composite operator allocation-free.
    #[inline]
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.apply(x, y);
    }

    /// Computes `y.col(j) ← A x.col(j)` for every column of the panel.
    ///
    /// The default loops [`LinOp::apply_into`] over the columns, staging
    /// each one through freshly allocated contiguous buffers (the panel is
    /// row-interleaved); operators with a fused multi-RHS kernel override it
    /// ([`Csr`] uses [`Csr::spmm_into`], [`ParSpmv`] uses
    /// [`Csr::spmm_threaded`]) so one matrix traversal advances all `k`
    /// right-hand sides — and stays allocation-free. Overrides must keep
    /// each column bit-identical to the scalar [`LinOp::apply_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if the panel row counts differ from
    /// [`LinOp::dim`] or the panel widths differ from each other.
    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n_cols(), y.n_cols(), "apply_block: panel widths");
        let mut xc = vec![0.0; x.n_rows()];
        let mut yc = vec![0.0; y.n_rows()];
        for j in 0..x.n_cols() {
            x.copy_col_into(j, &mut xc);
            self.apply_into(&xc, &mut yc);
            y.copy_col_from(j, &yc);
        }
    }
}

/// An abstract block operator on `n × k` panels: `Y = op(X)` column-wise.
///
/// The block Krylov solvers are written against this trait. Every [`LinOp`]
/// is a `BlockLinOp` through a blanket impl (applying the same operator to
/// each column); operators that apply a *different* matrix per column — the
/// ensemble case, [`CsrBatch`] — implement it directly.
pub trait BlockLinOp {
    /// Dimension `n` of the (square) operator. (Named distinctly from
    /// [`LinOp::dim`] so the blanket impl never makes `dim()` calls
    /// ambiguous when both traits are in scope.)
    fn block_dim(&self) -> usize;

    /// Computes `y.col(j) ← A_j x.col(j)` for every column of the panel.
    ///
    /// # Panics
    ///
    /// Implementations may panic on shape mismatch.
    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec);

    /// Computes `y ← op(x)` *and* the per-column dots
    /// `out[c] = Σᵢ x[i,c]·y[i,c]` (the block CG's `pᵀAp`) in one step.
    ///
    /// The default performs the apply followed by a separate fused dot pass.
    /// Operators whose traversal emits output rows in order (the serial
    /// [`CsrBatch`] kernel) override it to accumulate the dot inside the
    /// traversal — saving one full read of both panels per Krylov iteration
    /// — while keeping the exact four-lane reduction order, so the result
    /// is always bit-identical to the default. `lanes` is scratch of length
    /// `≥ 5k`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on shape mismatch or undersized scratch.
    fn apply_block_dot_into(
        &self,
        x: &MultiVec,
        y: &mut MultiVec,
        lanes: &mut [f64],
        out: &mut [f64],
    ) {
        self.apply_block_into(x, y);
        dot_columns(
            x.as_slice(),
            y.as_slice(),
            x.n_rows(),
            x.n_cols(),
            lanes,
            out,
        );
    }
}

impl<T: LinOp + ?Sized> BlockLinOp for T {
    fn block_dim(&self) -> usize {
        LinOp::dim(self)
    }

    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec) {
        LinOp::apply_block_into(self, x, y);
    }
}

/// A [`BlockLinOp`] over `k` same-pattern CSR matrices: column `j` of the
/// panel is advanced by matrix `j` of the batch.
///
/// This is the ensemble fast path — `k` value-filled matrices over one
/// frozen assembly pattern share every row traversal. The per-matrix values
/// are held *packed*: stored entry `t` of the whole batch is the contiguous
/// row `vals[t·k .. (t+1)·k]` ([`Csr::pack_batch_values`]), so the apply
/// ([`Csr::spmm_packed_into`] / [`Csr::spmm_packed_threaded`]) advances at
/// unit stride instead of gathering from `k` separate value arrays. Each
/// column's floating-point operation order is exactly `mats[j].spmv`, so
/// results are bit-identical to `k` independent scalar solves.
///
/// [`CsrBatch::new`] packs into an owned buffer (one allocation);
/// [`CsrBatch::from_packed`] borrows a caller-cached buffer so repeated
/// solves stay heap-allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct CsrBatch<'a> {
    pattern: &'a Csr,
    vals: std::borrow::Cow<'a, [f64]>,
    k: usize,
    n_threads: usize,
}

impl<'a> CsrBatch<'a> {
    /// Packs `mats` (one per panel column) into an owned interleaved value
    /// buffer; `n_threads <= 1` runs the serial kernel.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty, any matrix is non-square, or the sparsity
    /// patterns differ (validated once here so the per-apply kernels only
    /// need debug assertions).
    pub fn new(mats: Vec<&'a Csr>, n_threads: usize) -> Self {
        let first = *mats.first().expect("CsrBatch: empty batch");
        assert_eq!(first.n_rows(), first.n_cols(), "CsrBatch: square matrices");
        assert!(
            mats.iter().all(|m| m.same_pattern(first)),
            "CsrBatch: sparsity patterns differ"
        );
        let mut buf = Vec::new();
        Csr::pack_batch_values(&mats, &mut buf);
        buf.truncate(first.nnz() * mats.len());
        CsrBatch {
            pattern: first,
            vals: std::borrow::Cow::Owned(buf),
            k: mats.len(),
            n_threads,
        }
    }

    /// Wraps a caller-packed value buffer (layout of
    /// [`Csr::pack_batch_values`]; `pattern`'s own values are ignored). The
    /// panel width is `vals.len() / pattern.nnz()`. This is the
    /// allocation-free constructor for hot loops that cache the packing
    /// buffer across solves.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is non-square or `vals.len()` is zero or not a
    /// multiple of `pattern.nnz()`.
    pub fn from_packed(pattern: &'a Csr, vals: &'a [f64], n_threads: usize) -> Self {
        assert_eq!(
            pattern.n_rows(),
            pattern.n_cols(),
            "CsrBatch: square matrices"
        );
        let nnz = pattern.nnz();
        assert!(
            !vals.is_empty() && nnz > 0 && vals.len().is_multiple_of(nnz),
            "CsrBatch: packed length {} is not a positive multiple of nnz {}",
            vals.len(),
            nnz
        );
        CsrBatch {
            pattern,
            vals: std::borrow::Cow::Borrowed(vals),
            k: vals.len() / nnz,
            n_threads,
        }
    }

    /// The panel width `k` (number of matrices).
    pub fn width(&self) -> usize {
        self.k
    }

    /// The configured thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }
}

impl BlockLinOp for CsrBatch<'_> {
    fn block_dim(&self) -> usize {
        self.pattern.n_rows()
    }

    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec) {
        if self.n_threads > 1 {
            self.pattern
                .spmm_packed_threaded(&self.vals, x, y, self.n_threads);
        } else {
            self.pattern.spmm_packed_into(&self.vals, x, y);
        }
    }

    fn apply_block_dot_into(
        &self,
        x: &MultiVec,
        y: &mut MultiVec,
        lanes: &mut [f64],
        out: &mut [f64],
    ) {
        if self.n_threads > 1 {
            // The banded threaded kernel writes rows out of order across
            // bands; keep the dot as a separate (order-fixed) pass.
            self.pattern
                .spmm_packed_threaded(&self.vals, x, y, self.n_threads);
            dot_columns(
                x.as_slice(),
                y.as_slice(),
                x.n_rows(),
                x.n_cols(),
                lanes,
                out,
            );
        } else {
            self.pattern
                .spmm_packed_dot_into(&self.vals, x, y, lanes, out);
        }
    }
}

/// A [`LinOp`] view of a [`Csr`] whose products run on `n_threads` OS
/// threads via [`Csr::spmv_threaded`].
///
/// The row partition is deterministic and each thread writes a disjoint
/// slice of the output, so the product is bit-identical to the serial one —
/// solvers behave identically regardless of the thread count.
#[derive(Debug, Clone, Copy)]
pub struct ParSpmv<'a> {
    a: &'a Csr,
    n_threads: usize,
}

impl<'a> ParSpmv<'a> {
    /// Wraps `a`; `n_threads <= 1` degenerates to the serial kernel.
    pub fn new(a: &'a Csr, n_threads: usize) -> Self {
        ParSpmv { a, n_threads }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &'a Csr {
        self.a
    }

    /// The configured thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }
}

impl LinOp for ParSpmv<'_> {
    fn dim(&self) -> usize {
        LinOp::dim(self.a)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_threaded(x, y, self.n_threads);
    }

    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec) {
        self.a.spmm_threaded(x, y, self.n_threads);
    }
}

/// A [`LinOp`] that adds a diagonal to a base operator: `(A + diag(d)) x`.
///
/// Used for implicit-Euler systems `(M/Δt + K)` without copying `K`.
#[derive(Debug, Clone)]
pub struct DiagShifted<'a, A: LinOp> {
    base: &'a A,
    diag: &'a [f64],
}

impl<'a, A: LinOp> DiagShifted<'a, A> {
    /// Wraps `base` with an additive diagonal `diag`.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != base.dim()`.
    pub fn new(base: &'a A, diag: &'a [f64]) -> Self {
        assert_eq!(diag.len(), base.dim(), "DiagShifted: diagonal length");
        DiagShifted { base, diag }
    }
}

impl<'a, A: LinOp> LinOp for DiagShifted<'a, A> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        for i in 0..x.len() {
            y[i] += self.diag[i] * x[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_spmv_matches_serial_apply() {
        let mut coo = Coo::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 2, -1.0);
        coo.push(2, 0, -1.0);
        let a = Csr::from_coo(&coo);
        let op = ParSpmv::new(&a, 2);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.n_threads(), 2);
        assert!(std::ptr::eq(op.matrix(), &a));
        let x = [1.0, 2.0, 3.0];
        let mut y_par = [0.0; 3];
        let mut y_ser = [0.0; 3];
        op.apply_into(&x, &mut y_par);
        a.apply(&x, &mut y_ser);
        assert_eq!(y_par, y_ser);
    }

    #[test]
    fn diag_shifted_applies_shift() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = Csr::from_coo(&coo);
        let d = [10.0, 20.0];
        let op = DiagShifted::new(&a, &d);
        assert_eq!(op.dim(), 2);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [11.0, 21.0]);
    }
}
