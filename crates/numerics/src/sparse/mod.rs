//! Sparse matrix storage: COO assembly format and CSR compute format.
//!
//! The FIT assembly path is: stamp entries into a [`Coo`] (duplicates allowed,
//! they are summed), compress once into a [`Csr`], then hand the CSR to the
//! Krylov solvers in [`crate::solvers`]. The [`LinOp`] trait abstracts over
//! "things that can be applied to a vector" so solvers also accept composite
//! operators (e.g. matrix plus rank-one wire updates) without materializing
//! them.

mod coo;
mod csr;

pub use coo::Coo;
pub use csr::Csr;

/// An abstract linear operator `y = A x` on ℝⁿ.
///
/// Implemented by [`Csr`] and by composite operators in higher layers. All
/// Krylov solvers in [`crate::solvers`] are written against this trait.
pub trait LinOp {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y ← A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` or `y.len()` differ from
    /// [`LinOp::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// A [`LinOp`] that adds a diagonal to a base operator: `(A + diag(d)) x`.
///
/// Used for implicit-Euler systems `(M/Δt + K)` without copying `K`.
#[derive(Debug, Clone)]
pub struct DiagShifted<'a, A: LinOp> {
    base: &'a A,
    diag: &'a [f64],
}

impl<'a, A: LinOp> DiagShifted<'a, A> {
    /// Wraps `base` with an additive diagonal `diag`.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != base.dim()`.
    pub fn new(base: &'a A, diag: &'a [f64]) -> Self {
        assert_eq!(diag.len(), base.dim(), "DiagShifted: diagonal length");
        DiagShifted { base, diag }
    }
}

impl<'a, A: LinOp> LinOp for DiagShifted<'a, A> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        for i in 0..x.len() {
            y[i] += self.diag[i] * x[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_shifted_applies_shift() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = Csr::from_coo(&coo);
        let d = [10.0, 20.0];
        let op = DiagShifted::new(&a, &d);
        assert_eq!(op.dim(), 2);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [11.0, 21.0]);
    }
}
