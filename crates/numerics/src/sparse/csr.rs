//! Compressed sparse row storage and kernels.

use super::{Coo, LinOp};
use crate::dense::DenseMatrix;
use crate::multivec::MultiVec;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Column indices within each row are sorted and unique. Built from a
/// [`Coo`] with [`Csr::from_coo`] (duplicates summed), this is the compute
/// format for all matrix-vector products and preconditioners.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Compresses a COO matrix, summing duplicate entries.
    ///
    /// Entries whose duplicates sum exactly to zero are kept (with value 0)
    /// so that stamping patterns remain stable across reassembly.
    ///
    /// Duplicates are summed in *insertion order* (the row bucketing and the
    /// per-row column sort are both stable), so the result is bit-identical
    /// to scattering the same triplet sequence into the compressed pattern
    /// with `values[slot] += v` — the contract the pattern-reusing
    /// `CachedStamper` relies on for refill ≡ first-assembly equivalence.
    pub fn from_coo(coo: &Coo) -> Self {
        let (rows, cols, vals) = coo.triplets();
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        // Counting sort by row.
        let mut counts = vec![0usize; n_rows + 1];
        for &r in rows {
            counts[r + 1] += 1;
        }
        for i in 0..n_rows {
            counts[i + 1] += counts[i];
        }
        let mut sorted: Vec<(usize, f64)> = vec![(0, 0.0); vals.len()];
        {
            let mut next = counts.clone();
            for k in 0..vals.len() {
                let slot = next[rows[k]];
                sorted[slot] = (cols[k], vals[k]);
                next[rows[k]] += 1;
            }
        }
        // Sort each row by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        let mut col_idx = Vec::with_capacity(vals.len());
        let mut values = Vec::with_capacity(vals.len());
        row_ptr.push(0);
        for r in 0..n_rows {
            let seg = &mut sorted[counts[r]..counts[r + 1]];
            // Stable: equal columns keep insertion order (see doc contract).
            seg.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let c = seg[i].0;
                let mut v = seg[i].1;
                let mut j = i + 1;
                while j < seg.len() && seg[j].0 == c {
                    v += seg[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a diagonal matrix from `diag` (zeros kept as explicit entries).
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        Csr {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)`, zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Mutable reference to a *stored* entry at `(i, j)`.
    ///
    /// Returns `None` if the entry is not part of the sparsity pattern.
    pub fn get_mut(&mut self, i: usize, j: usize) -> Option<&mut f64> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => Some(&mut self.values[lo + k]),
            Err(_) => None,
        }
    }

    /// Column indices and mutable values of row `i` — the split borrow lets
    /// callers scatter new values into a frozen pattern while iterating its
    /// columns (the AMG Galerkin products refresh whole rows this way).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> (&[usize], &mut [f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &mut self.values[lo..hi])
    }

    /// Sparse matrix-vector product `y ← A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length");
        assert_eq!(y.len(), self.n_rows, "spmv: y length");
        self.spmv_rows(0, x, y);
    }

    /// Computes rows `[first_row, first_row + y.len())` of `A x` into `y`.
    ///
    /// This is the kernel behind both [`Csr::spmv`] and the row-partitioned
    /// [`Csr::spmv_threaded`]; the slice-based inner loop lets the compiler
    /// hoist the bounds checks on the index/value arrays out of the hot loop.
    fn spmv_rows(&self, first_row: usize, x: &[f64], y: &mut [f64]) {
        let mut lo = self.row_ptr[first_row];
        for (i, yi) in y.iter_mut().enumerate() {
            let hi = self.row_ptr[first_row + i + 1];
            let mut s = 0.0;
            for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                s += v * x[c];
            }
            *yi = s;
            lo = hi;
        }
    }

    /// Row-partitioned threaded SpMV `y ← A x` on `n_threads` OS threads.
    ///
    /// The rows are split into contiguous, nnz-balanced chunks; each thread
    /// writes a disjoint slice of `y`, so the result is bit-identical to the
    /// serial [`Csr::spmv`] (no reductions, no atomics, no extra memory).
    /// `n_threads <= 1` falls back to the serial kernel. Built on
    /// [`std::thread::scope`] — no dependencies beyond the standard library.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmv_threaded(&self, x: &[f64], y: &mut [f64], n_threads: usize) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length");
        assert_eq!(y.len(), self.n_rows, "spmv: y length");
        let nt = n_threads.min(self.n_rows);
        if nt <= 1 {
            self.spmv_rows(0, x, y);
            return;
        }
        // nnz-balanced contiguous row ranges: chunk t ends at the first row
        // whose cumulative nnz reaches (t+1)/nt of the total.
        let nnz = self.nnz();
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut row = 0usize;
            for t in 0..nt {
                let target = nnz * (t + 1) / nt;
                let end = if t + 1 == nt {
                    self.n_rows
                } else {
                    self.row_ptr[row..].partition_point(|&p| p < target) + row
                };
                let end = end.clamp(row, self.n_rows);
                let (chunk, tail) = rest.split_at_mut(end - row);
                let first_row = row;
                if !chunk.is_empty() {
                    scope.spawn(move || self.spmv_rows(first_row, x, chunk));
                }
                rest = tail;
                row = end;
            }
        });
    }

    /// Fused multi-RHS product `Y ← A X` over row-interleaved panels.
    ///
    /// Each CSR row is read **once** for the whole panel: entry `(i, j)`
    /// loads the contiguous `k`-wide operand row `x.row(j)` and advances all
    /// `k` columns of `y.row(i)` — the memory-bandwidth fusion that makes
    /// batched Krylov pay off. The per-column floating-point operation order
    /// is exactly that of [`Csr::spmv`] (row by row, stored entries in
    /// order, one accumulator), so column `j` of the result is bit-identical
    /// to `spmv(x.col(j))` regardless of the panel width or packing order.
    ///
    /// Allocation-free for any `k`.
    ///
    /// # Panics
    ///
    /// Panics on row/width mismatch between `x`, `y` and the matrix.
    pub fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n_rows(), self.n_cols, "spmm: x rows");
        assert_eq!(y.n_rows(), self.n_rows, "spmm: y rows");
        assert_eq!(x.n_cols(), y.n_cols(), "spmm: panel widths");
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        self.spmm_rows(0, x.as_slice(), y.as_mut_slice(), k);
    }

    /// Computes rows `[first_row, first_row + band)` of `A·X`; `y_band` is
    /// the interleaved storage of those rows (`band·k` entries).
    fn spmm_rows(&self, first_row: usize, x: &[f64], y_band: &mut [f64], k: usize) {
        debug_assert_eq!(y_band.len() % k, 0);
        let band = y_band.len() / k;
        let mut lo = self.row_ptr[first_row];
        for (local, yrow) in y_band.chunks_exact_mut(k).enumerate() {
            let hi = self.row_ptr[first_row + local + 1];
            yrow.fill(0.0);
            for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                let xrow = &x[c * k..c * k + k];
                for (yv, xv) in yrow.iter_mut().zip(xrow) {
                    *yv += v * xv;
                }
            }
            lo = hi;
        }
        debug_assert_eq!(lo, self.row_ptr[first_row + band]);
    }

    /// Row-partitioned threaded multi-RHS product `Y ← A X`.
    ///
    /// The rows are split into the same contiguous, nnz-balanced bands as
    /// [`Csr::spmv_threaded`]; each thread owns a disjoint band of the
    /// interleaved panel, so the result is bit-identical to the serial
    /// [`Csr::spmm_into`] for any thread count. `n_threads <= 1` falls back
    /// to the serial kernel.
    ///
    /// # Panics
    ///
    /// Panics on row/width mismatch between `x`, `y` and the matrix.
    pub fn spmm_threaded(&self, x: &MultiVec, y: &mut MultiVec, n_threads: usize) {
        assert_eq!(x.n_rows(), self.n_cols, "spmm: x rows");
        assert_eq!(y.n_rows(), self.n_rows, "spmm: y rows");
        assert_eq!(x.n_cols(), y.n_cols(), "spmm: panel widths");
        let nt = n_threads.min(self.n_rows);
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        if nt <= 1 {
            self.spmm_into(x, y);
            return;
        }
        let bounds = self.row_bands(nt);
        let xs = x.as_slice();
        std::thread::scope(|scope| {
            let mut rest = y.as_mut_slice();
            for w in bounds.windows(2) {
                let (band, tail) = rest.split_at_mut((w[1] - w[0]) * k);
                rest = tail;
                if !band.is_empty() {
                    let first_row = w[0];
                    scope.spawn(move || self.spmm_rows(first_row, xs, band, k));
                }
            }
        });
    }

    /// The contiguous, nnz-balanced row bands used by the threaded kernels:
    /// band `t` is `rows[bounds[t]..bounds[t + 1]]`, chosen so each band
    /// carries roughly `nnz / nt` stored entries (identical partition math
    /// to [`Csr::spmv_threaded`]).
    fn row_bands(&self, nt: usize) -> Vec<usize> {
        let nnz = self.nnz();
        let mut bounds = Vec::with_capacity(nt + 1);
        bounds.push(0usize);
        let mut row = 0usize;
        for t in 0..nt {
            let target = nnz * (t + 1) / nt;
            let end = if t + 1 == nt {
                self.n_rows
            } else {
                self.row_ptr[row..].partition_point(|&p| p < target) + row
            };
            let end = end.clamp(row, self.n_rows);
            bounds.push(end);
            row = end;
        }
        bounds
    }

    /// Packs the values of `k` same-pattern matrices into one interleaved
    /// buffer: `buf[t·k + c] = mats[c].values()[t]`. This is the value
    /// layout of [`Csr::spmm_packed_into`] / [`CsrBatch`](super::CsrBatch):
    /// stored entry `t` of the whole batch is one contiguous `k`-wide row,
    /// so the distinct-matrices product runs at the fused shared-matrix
    /// kernel's stride instead of gathering from `k` separate value arrays.
    ///
    /// `buf` is grown on demand and never shrunk (only the first `nnz·k`
    /// entries are written): a caller-cached buffer makes repacking across
    /// same-shaped solves heap-allocation-free after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or (debug only) the patterns differ.
    pub fn pack_batch_values(mats: &[&Csr], buf: &mut Vec<f64>) {
        let first = *mats.first().expect("pack_batch_values: empty batch");
        debug_assert!(
            mats.iter().all(|m| m.same_pattern(first)),
            "pack_batch_values: sparsity patterns differ"
        );
        let k = mats.len();
        let need = first.nnz() * k;
        if buf.len() < need {
            buf.resize(need, 0.0);
        }
        // Entry-outer order: each write row is contiguous and every matrix's
        // value array is read as one sequential stream.
        for (t, row) in buf[..need].chunks_exact_mut(k).enumerate() {
            for (pv, m) in row.iter_mut().zip(mats) {
                *pv = m.values[t];
            }
        }
    }

    /// Batched same-pattern product over pre-packed values:
    /// `y.col(c) ← A_c · x.col(c)` where `A_c` shares this matrix's pattern
    /// and has values `packed[t·k + c]` (see [`Csr::pack_batch_values`]).
    ///
    /// This matrix provides only the pattern; its own values are ignored.
    /// Each stored entry loads one contiguous value row and one contiguous
    /// operand row, so the whole batch advances at unit stride. Column `c`
    /// sees exactly the floating-point operation order of `A_c.spmv`, so the
    /// result is bit-identical per column.
    ///
    /// # Panics
    ///
    /// Panics on dimension/width mismatch or if `packed.len() != nnz·k`.
    pub fn spmm_packed_into(&self, packed: &[f64], x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n_rows(), self.n_cols, "spmm_packed: x rows");
        assert_eq!(y.n_rows(), self.n_rows, "spmm_packed: y rows");
        assert_eq!(x.n_cols(), y.n_cols(), "spmm_packed: panel widths");
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        assert_eq!(packed.len(), self.nnz() * k, "spmm_packed: values length");
        self.spmm_packed_rows(0, packed, x.as_slice(), y.as_mut_slice(), k);
    }

    /// Band kernel of [`Csr::spmm_packed_into`]: rows
    /// `[first_row, first_row + band)` of the interleaved output.
    fn spmm_packed_rows(
        &self,
        first_row: usize,
        packed: &[f64],
        x: &[f64],
        y_band: &mut [f64],
        k: usize,
    ) {
        debug_assert_eq!(y_band.len() % k, 0);
        let mut lo = self.row_ptr[first_row];
        for (local, yrow) in y_band.chunks_exact_mut(k).enumerate() {
            let hi = self.row_ptr[first_row + local + 1];
            yrow.fill(0.0);
            for t in lo..hi {
                let c = self.col_idx[t];
                let vrow = &packed[t * k..t * k + k];
                let xrow = &x[c * k..c * k + k];
                for ((yv, vv), xv) in yrow.iter_mut().zip(vrow).zip(xrow) {
                    *yv += vv * xv;
                }
            }
            lo = hi;
        }
    }

    /// Fused variant of [`Csr::spmm_packed_into`] that also emits the
    /// per-column dots `out[c] = Σᵢ x[i,c]·y[i,c]` of the operand against
    /// the freshly computed product (the block CG's `pᵀAp`).
    ///
    /// The traversal produces output rows in order `i = 0..n`, so the dot
    /// accumulates with exactly the four-lane order of the standalone
    /// reduction (lane `i mod 4` for the first `4·⌊n/4⌋` rows, then the
    /// tail lane, left-associated lane sum): the fusion saves one full read
    /// of both panels per Krylov iteration without changing a single bit.
    /// `lanes` is scratch of length `≥ 5k`.
    ///
    /// # Panics
    ///
    /// As [`Csr::spmm_packed_into`]; additionally panics if `lanes` or
    /// `out` are undersized.
    pub fn spmm_packed_dot_into(
        &self,
        packed: &[f64],
        x: &MultiVec,
        y: &mut MultiVec,
        lanes: &mut [f64],
        out: &mut [f64],
    ) {
        assert_eq!(x.n_rows(), self.n_cols, "spmm_packed: x rows");
        assert_eq!(y.n_rows(), self.n_rows, "spmm_packed: y rows");
        assert_eq!(x.n_cols(), y.n_cols(), "spmm_packed: panel widths");
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        assert_eq!(packed.len(), self.nnz() * k, "spmm_packed: values length");
        assert!(out.len() >= k, "spmm_packed_dot: out length");
        let lanes = &mut lanes[..5 * k];
        lanes.fill(0.0);
        let n = self.n_rows;
        let full = 4 * (n / 4);
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        let mut lo = self.row_ptr[0];
        for (i, yrow) in ys.chunks_exact_mut(k).enumerate() {
            let hi = self.row_ptr[i + 1];
            yrow.fill(0.0);
            for t in lo..hi {
                let c = self.col_idx[t];
                let vrow = &packed[t * k..t * k + k];
                let xrow = &xs[c * k..c * k + k];
                for ((yv, vv), xv) in yrow.iter_mut().zip(vrow).zip(xrow) {
                    *yv += vv * xv;
                }
            }
            lo = hi;
            let l = if i < full { i % 4 } else { 4 };
            let lane = &mut lanes[l * k..(l + 1) * k];
            let xrow = &xs[i * k..(i + 1) * k];
            for ((lv, xv), yv) in lane.iter_mut().zip(xrow).zip(yrow.iter()) {
                *lv += xv * yv;
            }
        }
        for (c, o) in out[..k].iter_mut().enumerate() {
            *o = lanes[c] + lanes[k + c] + lanes[2 * k + c] + lanes[3 * k + c] + lanes[4 * k + c];
        }
    }

    /// Row-partitioned threaded variant of [`Csr::spmm_packed_into`],
    /// bit-identical to the serial kernel for any thread count (disjoint
    /// row bands, no reductions).
    ///
    /// # Panics
    ///
    /// See [`Csr::spmm_packed_into`].
    pub fn spmm_packed_threaded(
        &self,
        packed: &[f64],
        x: &MultiVec,
        y: &mut MultiVec,
        n_threads: usize,
    ) {
        assert_eq!(x.n_rows(), self.n_cols, "spmm_packed: x rows");
        assert_eq!(y.n_rows(), self.n_rows, "spmm_packed: y rows");
        assert_eq!(x.n_cols(), y.n_cols(), "spmm_packed: panel widths");
        let nt = n_threads.min(self.n_rows);
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        assert_eq!(packed.len(), self.nnz() * k, "spmm_packed: values length");
        if nt <= 1 {
            self.spmm_packed_rows(0, packed, x.as_slice(), y.as_mut_slice(), k);
            return;
        }
        let bounds = self.row_bands(nt);
        let xs = x.as_slice();
        std::thread::scope(|scope| {
            let mut rest = y.as_mut_slice();
            for w in bounds.windows(2) {
                let (band, tail) = rest.split_at_mut((w[1] - w[0]) * k);
                rest = tail;
                if !band.is_empty() {
                    let first_row = w[0];
                    scope.spawn(move || self.spmm_packed_rows(first_row, packed, xs, band, k));
                }
            }
        });
    }

    /// Batched same-pattern product: `y.col(j) ← mats[j] · x.col(j)`,
    /// reading each matrix's value array in place (no packing step).
    ///
    /// All matrices must share one frozen sparsity pattern (the ensemble
    /// case: one value-filled matrix per sample over the shared assembly
    /// skeleton). The row structure is traversed once for the whole batch;
    /// each column sees exactly the floating-point operation order of
    /// `mats[j].spmv(x.col(j))`, so the result is bit-identical per column.
    /// The repeated-solve hot path packs the values once per solve instead
    /// ([`Csr::pack_batch_values`] + [`Csr::spmm_packed_into`]) and runs
    /// measurably faster; this zero-setup variant serves one-shot products.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty, the panel widths differ from `mats.len()`,
    /// dimensions mismatch, or (debug only) the patterns differ.
    pub fn spmm_batch_into(mats: &[&Csr], x: &MultiVec, y: &mut MultiVec) {
        let first = *mats.first().expect("spmm_batch: empty batch");
        assert_eq!(mats.len(), x.n_cols(), "spmm_batch: x width");
        assert_eq!(mats.len(), y.n_cols(), "spmm_batch: y width");
        assert_eq!(x.n_rows(), first.n_cols, "spmm_batch: x rows");
        assert_eq!(y.n_rows(), first.n_rows, "spmm_batch: y rows");
        debug_assert!(
            mats.iter().all(|m| m.same_pattern(first)),
            "spmm_batch: sparsity patterns differ"
        );
        Self::spmm_batch_rows(mats, 0, x.as_slice(), y.as_mut_slice());
    }

    /// Band kernel of [`Csr::spmm_batch_into`]: rows
    /// `[first_row, first_row + band)` of the interleaved output, one matrix
    /// per panel column.
    fn spmm_batch_rows(mats: &[&Csr], first_row: usize, x: &[f64], y_band: &mut [f64]) {
        let pattern = mats[0];
        let k = mats.len();
        debug_assert_eq!(y_band.len() % k, 0);
        let mut lo = pattern.row_ptr[first_row];
        for (local, yrow) in y_band.chunks_exact_mut(k).enumerate() {
            let hi = pattern.row_ptr[first_row + local + 1];
            yrow.fill(0.0);
            for t in lo..hi {
                let c = pattern.col_idx[t];
                let xrow = &x[c * k..c * k + k];
                for ((yv, m), xv) in yrow.iter_mut().zip(mats).zip(xrow) {
                    *yv += m.values[t] * xv;
                }
            }
            lo = hi;
        }
    }

    /// Row-partitioned threaded variant of [`Csr::spmm_batch_into`],
    /// bit-identical to the serial kernel for any thread count (disjoint
    /// row bands, no reductions).
    ///
    /// # Panics
    ///
    /// See [`Csr::spmm_batch_into`].
    pub fn spmm_batch_threaded(mats: &[&Csr], x: &MultiVec, y: &mut MultiVec, n_threads: usize) {
        let first = *mats.first().expect("spmm_batch: empty batch");
        let nt = n_threads.min(first.n_rows);
        if nt <= 1 {
            Self::spmm_batch_into(mats, x, y);
            return;
        }
        assert_eq!(mats.len(), x.n_cols(), "spmm_batch: x width");
        assert_eq!(mats.len(), y.n_cols(), "spmm_batch: y width");
        assert_eq!(x.n_rows(), first.n_cols, "spmm_batch: x rows");
        assert_eq!(y.n_rows(), first.n_rows, "spmm_batch: y rows");
        debug_assert!(
            mats.iter().all(|m| m.same_pattern(first)),
            "spmm_batch: sparsity patterns differ"
        );
        let k = mats.len();
        let bounds = first.row_bands(nt);
        let xs = x.as_slice();
        std::thread::scope(|scope| {
            let mut rest = y.as_mut_slice();
            for w in bounds.windows(2) {
                let (band, tail) = rest.split_at_mut((w[1] - w[0]) * k);
                rest = tail;
                if !band.is_empty() {
                    let first_row = w[0];
                    scope.spawn(move || Self::spmm_batch_rows(mats, first_row, xs, band));
                }
            }
        });
    }

    /// Allocating variant of [`Csr::spmv`].
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y);
        y
    }

    /// In-place matrix-vector product `y ← A x` (alias of [`Csr::spmv`],
    /// named to mirror [`Csr::matvec`] at call sites on the hot path).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[inline]
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    /// Computes the residual `r ← b − A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn residual(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        self.spmv(x, r);
        for i in 0..r.len() {
            r[i] = b[i] - r[i];
        }
    }

    /// Extracts the diagonal (missing entries are zero).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Adds `d[i]` to each stored diagonal entry.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != n_rows`, or if a row lacks a stored diagonal
    /// entry while `d[i] != 0` (the FIT assembly always stamps diagonals).
    pub fn add_diag(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.n_rows, "add_diag: length mismatch");
        for (i, &di) in d.iter().enumerate() {
            if di == 0.0 {
                continue;
            }
            match self.get_mut(i, i) {
                Some(v) => *v += di,
                None => panic!("add_diag: row {i} has no stored diagonal"),
            }
        }
    }

    /// Sets every stored value to zero, keeping the pattern (for cached
    /// reassembly).
    pub fn zero_values(&mut self) {
        for v in &mut self.values {
            *v = 0.0;
        }
    }

    /// View of the stored values (pattern order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the stored values (pattern order).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Whether `other` has exactly the same sparsity pattern (dimensions,
    /// row pointers and column indices). Values are ignored.
    pub fn same_pattern(&self, other: &Csr) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Copies the values of `other` into this matrix (pattern frozen).
    ///
    /// # Panics
    ///
    /// Panics if the sparsity patterns differ.
    pub fn copy_values_from(&mut self, other: &Csr) {
        assert!(
            self.same_pattern(other),
            "copy_values_from: sparsity patterns differ"
        );
        self.values.copy_from_slice(&other.values);
    }

    /// Index into the value array of the stored entry `(i, j)`, if present.
    pub fn slot(&self, i: usize, j: usize) -> Option<usize> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].binary_search(&j).ok().map(|k| lo + k)
    }

    /// Multiplies all stored values by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        // next[c] tracks the insertion slot within transposed row c.
        let mut next = row_ptr.clone();
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let slot = next[*c];
                col_idx[slot] = i;
                values[slot] = *v;
                next[*c] += 1;
            }
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Patterns can differ while values still match symmetric.
            for i in 0..self.n_rows {
                let (cols, vals) = self.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    if (v - self.get(j, i)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Sum of each row (for Laplacian zero-row-sum checks).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Converts to a dense matrix (tests and tiny systems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n_rows)
            .map(|i| self.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c, v))
                .collect::<Vec<_>>()
        })
    }
}

impl LinOp for Csr {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.n_rows, self.n_cols, "LinOp requires square matrix");
        self.n_rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn apply_block_into(&self, x: &MultiVec, y: &mut MultiVec) {
        self.spmm_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut coo = Coo::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_sums_duplicates_in_any_order() {
        let mut coo = Coo::new(2, 2);
        coo.push(1, 0, 4.0);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(0, 0, 1.0);
        let a = Csr::from_coo(&coo);
        assert_eq!(a.get(0, 1), 3.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn cancelling_duplicates_keep_pattern() {
        let mut coo = Coo::new(1, 2);
        coo.push(0, 1, 5.0);
        coo.push(0, 1, -5.0);
        let a = Csr::from_coo(&coo);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
        let d = a.to_dense();
        let yd = d.matvec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    fn residual_computation() {
        let a = small();
        let x = [1.0, 1.0, 1.0];
        let b = [1.0, 0.0, 1.0];
        let mut r = [0.0; 3];
        a.residual(&b, &x, &mut r);
        assert_eq!(r, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn diag_and_add_diag() {
        let mut a = small();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        a.add_diag(&[1.0, 0.0, -1.0]);
        assert_eq!(a.diag(), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no stored diagonal")]
    fn add_diag_missing_entry_panics() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let mut a = Csr::from_coo(&coo);
        a.add_diag(&[1.0, 1.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 2, 1.0);
        coo.push(1, 0, -2.0);
        coo.push(1, 1, 7.0);
        let a = Csr::from_coo(&coo);
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), -2.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn symmetry_check() {
        assert!(small().is_symmetric(0.0));
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 2.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.5);
        assert!(!Csr::from_coo(&coo).is_symmetric(1e-12));
        assert!(Csr::from_coo(&coo).is_symmetric(0.6));
    }

    #[test]
    fn identity_and_from_diag() {
        let i3 = Csr::identity(3);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x), x.to_vec());
        let d = Csr::from_diag(&[2.0, 0.0, -1.0]);
        assert_eq!(d.matvec(&x), vec![2.0, 0.0, -3.0]);
    }

    #[test]
    fn row_sums_and_norm() {
        let a = small();
        assert_eq!(a.row_sums(), vec![1.0, 0.0, 1.0]);
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    fn get_mut_updates_values() {
        let mut a = small();
        *a.get_mut(1, 1).unwrap() = 10.0;
        assert_eq!(a.get(1, 1), 10.0);
        assert!(a.get_mut(0, 2).is_none());
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.matvec_into(&x, &mut y);
        assert_eq!(y.to_vec(), a.matvec(&x));
    }

    #[test]
    fn spmv_threaded_is_bit_identical_to_serial() {
        // Irregular pattern + irrational values: any reassociation or row
        // mis-assignment would show up as a bit difference.
        let n = 103;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0 + (i as f64).sqrt());
            for d in [1usize, 7, 31] {
                if i + d < n {
                    coo.push(i, i + d, -1.0 / (1.0 + d as f64 + i as f64).sqrt());
                    coo.push(i + d, i, -0.5 / (2.0 + d as f64 * i as f64).sqrt());
                }
            }
        }
        let a = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64).sin()).collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        for nt in [1, 2, 3, 4, 8, 64, 200] {
            let mut y = vec![f64::NAN; n];
            a.spmv_threaded(&x, &mut y, nt);
            assert_eq!(y, y_serial, "n_threads = {nt}");
        }
    }

    /// Irregular asymmetric-pattern matrix shared by the spmm tests.
    fn irregular(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0 + (i as f64).sqrt());
            for d in [1usize, 7, 31] {
                if i + d < n {
                    coo.push(i, i + d, -1.0 / (1.0 + d as f64 + i as f64).sqrt());
                    coo.push(i + d, i, -0.5 / (2.0 + d as f64 * i as f64).sqrt());
                }
            }
        }
        Csr::from_coo(&coo)
    }

    fn panel(n: usize, k: usize, seed: usize) -> MultiVec {
        let mut x = MultiVec::zeros(n, k);
        for j in 0..k {
            for i in 0..n {
                x.set(i, j, (((i * 13 + j * 29 + seed) % 37) as f64).sin());
            }
        }
        x
    }

    #[test]
    fn spmm_into_matches_spmv_per_column_bitwise() {
        let n = 103;
        let a = irregular(n);
        for k in [1usize, 2, 8, 31, 32, 33, 40] {
            let x = panel(n, k, 5);
            let mut y = MultiVec::zeros(n, k);
            a.spmm_into(&x, &mut y);
            for j in 0..k {
                let mut y_ref = vec![0.0; n];
                a.spmv(&x.col_vec(j), &mut y_ref);
                assert_eq!(y.col_vec(j), y_ref, "k = {k}, column {j}");
            }
        }
    }

    #[test]
    fn spmm_threaded_is_bit_identical_to_serial() {
        let n = 103;
        let a = irregular(n);
        for k in [1usize, 3, 32, 35] {
            let x = panel(n, k, 11);
            let mut y_serial = MultiVec::zeros(n, k);
            a.spmm_into(&x, &mut y_serial);
            for nt in [1usize, 2, 3, 4, 8, 64, 200] {
                let mut y = MultiVec::zeros(n, k);
                y.fill(f64::NAN);
                a.spmm_threaded(&x, &mut y, nt);
                assert_eq!(y, y_serial, "k = {k}, n_threads = {nt}");
            }
        }
    }

    #[test]
    fn spmm_batch_matches_per_matrix_spmv_bitwise() {
        let n = 103;
        let base = irregular(n);
        // Same pattern, per-sample values: scaled copies of the base matrix.
        let mats_owned: Vec<Csr> = (0..35)
            .map(|j| {
                let mut m = base.clone();
                m.scale(1.0 + 0.01 * j as f64);
                m
            })
            .collect();
        for k in [1usize, 8, 32, 35] {
            let mats: Vec<&Csr> = mats_owned[..k].iter().collect();
            let x = panel(n, k, 23);
            let mut y = MultiVec::zeros(n, k);
            Csr::spmm_batch_into(&mats, &x, &mut y);
            for j in 0..k {
                let mut y_ref = vec![0.0; n];
                mats[j].spmv(&x.col_vec(j), &mut y_ref);
                assert_eq!(y.col_vec(j), y_ref, "k = {k}, column {j}");
            }
            for nt in [2usize, 3, 8, 200] {
                let mut y_t = MultiVec::zeros(n, k);
                y_t.fill(f64::NAN);
                Csr::spmm_batch_threaded(&mats, &x, &mut y_t, nt);
                assert_eq!(y_t, y, "k = {k}, n_threads = {nt}");
            }
            let mut packed = Vec::new();
            Csr::pack_batch_values(&mats, &mut packed);
            let mut y_p = MultiVec::zeros(n, k);
            y_p.fill(f64::NAN);
            mats[0].spmm_packed_into(&packed, &x, &mut y_p);
            assert_eq!(y_p, y, "packed kernel, k = {k}");
            for nt in [2usize, 3, 8, 200] {
                let mut y_pt = MultiVec::zeros(n, k);
                y_pt.fill(f64::NAN);
                mats[0].spmm_packed_threaded(&packed, &x, &mut y_pt, nt);
                assert_eq!(y_pt, y, "packed threaded, k = {k}, n_threads = {nt}");
            }
        }
    }

    #[test]
    fn spmm_handles_rectangular_operators() {
        // 3×2 matrix applied to a 2×4 panel: the AMG restriction/prolongation
        // case (rectangular level transfer operators on panels).
        let mut coo = Coo::new(3, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        let a = Csr::from_coo(&coo);
        let mut x = MultiVec::zeros(2, 4);
        for j in 0..4 {
            x.set(0, j, 1.0 + j as f64);
            x.set(1, j, -1.0);
        }
        let mut y = MultiVec::zeros(3, 4);
        a.spmm_threaded(&x, &mut y, 2);
        for j in 0..4 {
            let xj = 1.0 + j as f64;
            assert_eq!(y.col_vec(j), &[xj, -2.0, 3.0 * xj - 4.0]);
        }
    }

    #[test]
    fn pattern_comparison_and_value_copy() {
        let a = small();
        let mut b = small();
        b.scale(2.0);
        assert!(a.same_pattern(&b));
        b.copy_values_from(&a);
        assert_eq!(a, b);
        assert!(!a.same_pattern(&Csr::identity(3)));
    }

    #[test]
    #[should_panic(expected = "patterns differ")]
    fn copy_values_rejects_pattern_mismatch() {
        let mut a = small();
        a.copy_values_from(&Csr::identity(3));
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = small();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), a.nnz());
        assert!(entries.contains(&(1, 0, -1.0)));
    }
}
