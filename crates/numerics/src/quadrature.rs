//! Gaussian and composite quadrature rules.
//!
//! These rules back the non-intrusive polynomial-chaos machinery in
//! `etherm-uq`: Gauss–Hermite nodes evaluate expectations against the normal
//! elongation distribution `δ ~ N(µ, σ)` identified by the paper (Fig. 5),
//! and Gauss–Legendre covers uniform parameters. Composite trapezoid /
//! Simpson rules are used for self-checks and for integrating tabulated
//! material curves.
//!
//! All rules are computed from scratch (Newton iteration on the classical
//! orthogonal-polynomial recurrences); there is no external special-function
//! dependency.

use crate::error::NumericsError;

/// A one-dimensional quadrature rule: nodes `x_k` and weights `w_k` such that
/// `∫ f dµ ≈ Σ_k w_k f(x_k)` for the rule's measure `µ`.
///
/// # Example
///
/// ```
/// use etherm_numerics::quadrature::QuadratureRule;
///
/// # fn main() -> Result<(), etherm_numerics::NumericsError> {
/// // E[X²] = 1 for X ~ N(0,1), integrated exactly by 2 Hermite points.
/// let rule = QuadratureRule::gauss_hermite(2)?;
/// let second_moment = rule.integrate(|x| x * x);
/// assert!((second_moment - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuadratureRule {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl QuadratureRule {
    /// Builds a rule from explicit nodes and weights.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if the lengths differ, the
    /// rule is empty, or any entry is non-finite.
    pub fn from_nodes_weights(nodes: Vec<f64>, weights: Vec<f64>) -> Result<Self, NumericsError> {
        if nodes.is_empty() || nodes.len() != weights.len() {
            return Err(NumericsError::InvalidArgument(format!(
                "quadrature rule needs equal, nonzero node/weight counts (got {}/{})",
                nodes.len(),
                weights.len()
            )));
        }
        if nodes.iter().chain(weights.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::InvalidArgument(
                "quadrature nodes/weights must be finite".into(),
            ));
        }
        Ok(QuadratureRule { nodes, weights })
    }

    /// `n`-point Gauss–Legendre rule on `[-1, 1]` (measure `dx`).
    ///
    /// Exact for polynomials of degree `≤ 2n − 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `n == 0` and
    /// [`NumericsError::NotConverged`] if a Newton root search stalls
    /// (does not happen for practical `n ≤ 512`).
    pub fn gauss_legendre(n: usize) -> Result<Self, NumericsError> {
        if n == 0 {
            return Err(NumericsError::InvalidArgument(
                "gauss_legendre: n must be positive".into(),
            ));
        }
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev-based initial guess for the i-th positive root.
            let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut pp = 0.0;
            let mut converged = false;
            for _ in 0..100 {
                // Legendre recurrence: (j+1) P_{j+1} = (2j+1) x P_j − j P_{j−1}.
                let mut p1 = 1.0;
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    let jf = j as f64;
                    p1 = ((2.0 * jf + 1.0) * z * p2 - jf * p3) / (jf + 1.0);
                }
                pp = n as f64 * (z * p1 - p2) / (z * z - 1.0);
                let dz = p1 / pp;
                z -= dz;
                if dz.abs() < 1e-15 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(NumericsError::NotConverged {
                    solver: "gauss_legendre newton",
                    iterations: 100,
                    residual: f64::NAN,
                });
            }
            nodes[i] = -z;
            nodes[n - 1 - i] = z;
            let w = 2.0 / ((1.0 - z * z) * pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        Ok(QuadratureRule { nodes, weights })
    }

    /// `n`-point Gauss–Hermite rule for the *probabilists'* weight
    /// `exp(−x²/2)/√(2π)`, i.e. the standard normal density.
    ///
    /// `Σ w_k f(x_k) ≈ E[f(X)]` for `X ~ N(0, 1)`; exact for polynomials of
    /// degree `≤ 2n − 1`. Shift/scale the nodes by `µ + σ x_k` to integrate
    /// against `N(µ, σ²)` — this is what the PCE layer does for the paper's
    /// elongation distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `n == 0` and
    /// [`NumericsError::NotConverged`] if the Newton search stalls.
    pub fn gauss_hermite(n: usize) -> Result<Self, NumericsError> {
        if n == 0 {
            return Err(NumericsError::InvalidArgument(
                "gauss_hermite: n must be positive".into(),
            ));
        }
        // Physicists' convention (weight exp(−x²)) via the Numerical-Recipes
        // style Newton iteration, then rescale to the probabilists' measure:
        // ξ = √2 x, w̃ = w / √π.
        let mut x_phys = vec![0.0; n];
        let mut w_phys = vec![0.0; n];
        let m = n.div_ceil(2);
        let nf = n as f64;
        let mut z = 0.0;
        let mut roots: Vec<f64> = Vec::with_capacity(m);
        for i in 0..m {
            // Initial guesses per Numerical Recipes `gauher`: each guess is a
            // linear extrapolation from the previously located roots.
            z = match i {
                0 => (2.0 * nf + 1.0).sqrt() - 1.85575 * (2.0 * nf + 1.0).powf(-1.0 / 6.0),
                1 => z - 1.14 * nf.powf(0.426) / z,
                2 => 1.86 * z - 0.86 * roots[0],
                3 => 1.91 * z - 0.91 * roots[1],
                _ => 2.0 * z - roots[i - 2],
            };
            let mut pp = 0.0;
            let mut converged = false;
            for _ in 0..200 {
                // Orthonormal Hermite recurrence (physicists'):
                // h_{j+1} = x √(2/(j+1)) h_j − √(j/(j+1)) h_{j−1}.
                let mut p1 = std::f64::consts::PI.powf(-0.25);
                let mut p2 = 0.0;
                for j in 1..=n {
                    let p3 = p2;
                    p2 = p1;
                    let jf = j as f64;
                    p1 = z * (2.0 / jf).sqrt() * p2 - ((jf - 1.0) / jf).sqrt() * p3;
                }
                pp = (2.0 * nf).sqrt() * p2;
                let dz = p1 / pp;
                z -= dz;
                if dz.abs() < 1e-14 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(NumericsError::NotConverged {
                    solver: "gauss_hermite newton",
                    iterations: 200,
                    residual: f64::NAN,
                });
            }
            x_phys[i] = z;
            x_phys[n - 1 - i] = -z;
            let w = 2.0 / (pp * pp);
            w_phys[i] = w;
            w_phys[n - 1 - i] = w;
            roots.push(z);
        }
        let sqrt2 = std::f64::consts::SQRT_2;
        let inv_sqrt_pi = 1.0 / std::f64::consts::PI.sqrt();
        // Emit in ascending order (x_phys is stored descending on the left half).
        let mut nodes: Vec<f64> = x_phys.iter().map(|&x| sqrt2 * x).collect();
        let mut weights: Vec<f64> = w_phys.iter().map(|&w| w * inv_sqrt_pi).collect();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| nodes[a].total_cmp(&nodes[b]));
        nodes = idx.iter().map(|&k| nodes[k]).collect();
        weights = idx.iter().map(|&k| weights[k]).collect();
        Ok(QuadratureRule { nodes, weights })
    }

    /// Quadrature nodes, ascending.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Quadrature weights, aligned with [`QuadratureRule::nodes`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the rule has no points (never true for constructed rules).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies the rule: `Σ_k w_k f(x_k)`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Returns the rule affinely mapped from `[-1, 1]` to `[a, b]`
    /// (for Gauss–Legendre rules; weights are scaled by `(b − a)/2`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `b ≤ a` or either bound
    /// is non-finite.
    pub fn mapped_to(&self, a: f64, b: f64) -> Result<Self, NumericsError> {
        if !(a.is_finite() && b.is_finite() && b > a) {
            return Err(NumericsError::InvalidArgument(format!(
                "mapped_to: invalid interval [{a}, {b}]"
            )));
        }
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        Ok(QuadratureRule {
            nodes: self.nodes.iter().map(|&x| mid + half * x).collect(),
            weights: self.weights.iter().map(|&w| w * half).collect(),
        })
    }
}

/// Composite trapezoid rule for `∫_a^b f dx` with `n ≥ 1` panels.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for an empty panel count or a
/// degenerate interval.
pub fn trapezoid<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    n: usize,
) -> Result<f64, NumericsError> {
    if n == 0 || !(a.is_finite() && b.is_finite() && b > a) {
        return Err(NumericsError::InvalidArgument(format!(
            "trapezoid: need n ≥ 1 panels on a finite interval (n={n}, [{a}, {b}])"
        )));
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    Ok(sum * h)
}

/// Composite Simpson rule for `∫_a^b f dx` with `n` panels (`n` even, `≥ 2`).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `n` is odd or zero, or the
/// interval is degenerate.
pub fn simpson<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    n: usize,
) -> Result<f64, NumericsError> {
    if n == 0 || !n.is_multiple_of(2) || !(a.is_finite() && b.is_finite() && b > a) {
        return Err(NumericsError::InvalidArgument(format!(
            "simpson: need an even panel count ≥ 2 on a finite interval (n={n}, [{a}, {b}])"
        )));
    }
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let c = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += c * f(a + i as f64 * h);
    }
    Ok(sum * h / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factorial2(n: u32) -> f64 {
        // Double factorial (2k-1)!! for normal moments.
        let mut p = 1.0;
        let mut k = n as i64;
        while k > 1 {
            p *= k as f64;
            k -= 2;
        }
        p
    }

    #[test]
    fn legendre_weights_sum_to_interval_length() {
        for n in 1..=32 {
            let rule = QuadratureRule::gauss_legendre(n).unwrap();
            let total: f64 = rule.weights().iter().sum();
            assert!((total - 2.0).abs() < 1e-12, "n={n}: Σw = {total}");
        }
    }

    #[test]
    fn legendre_exact_for_polynomials() {
        // ∫_{-1}^{1} x^k dx = 0 (odd) or 2/(k+1) (even); n points exact to 2n-1.
        for n in 1..=10usize {
            let rule = QuadratureRule::gauss_legendre(n).unwrap();
            for k in 0..(2 * n) {
                let got = rule.integrate(|x| x.powi(k as i32));
                let want = if k % 2 == 1 { 0.0 } else { 2.0 / (k as f64 + 1.0) };
                assert!(
                    (got - want).abs() < 1e-10,
                    "n={n} k={k}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn legendre_nodes_sorted_and_symmetric() {
        let rule = QuadratureRule::gauss_legendre(9).unwrap();
        let x = rule.nodes();
        assert!(x.windows(2).all(|w| w[0] < w[1]));
        for i in 0..x.len() {
            assert!((x[i] + x[x.len() - 1 - i]).abs() < 1e-13);
        }
        // Odd rule contains the midpoint.
        assert!(x[4].abs() < 1e-13);
    }

    #[test]
    fn hermite_weights_sum_to_one() {
        for n in 1..=40 {
            let rule = QuadratureRule::gauss_hermite(n).unwrap();
            let total: f64 = rule.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-11, "n={n}: Σw = {total}");
        }
    }

    #[test]
    fn hermite_matches_normal_moments() {
        // E[X^{2k}] = (2k−1)!! for X ~ N(0,1); a rule with n points is exact
        // through degree 2n−1.
        let rule = QuadratureRule::gauss_hermite(8).unwrap();
        for k in 0..8u32 {
            let got = rule.integrate(|x| x.powi(2 * k as i32));
            let want = if k == 0 { 1.0 } else { factorial2(2 * k - 1) };
            assert!(
                (got - want).abs() / want.max(1.0) < 1e-10,
                "k={k}: got {got}, want {want}"
            );
        }
        // Odd moments vanish by symmetry.
        for k in [1, 3, 5, 7] {
            assert!(rule.integrate(|x| x.powi(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn hermite_large_rule_is_stable() {
        let rule = QuadratureRule::gauss_hermite(64).unwrap();
        assert_eq!(rule.len(), 64);
        assert!(rule.nodes().windows(2).all(|w| w[0] < w[1]));
        let total: f64 = rule.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // E[exp(X)] = e^{1/2} is integrated to near machine precision.
        let got = rule.integrate(f64::exp);
        assert!((got - (0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn mapped_rule_integrates_on_shifted_interval() {
        let rule = QuadratureRule::gauss_legendre(6)
            .unwrap()
            .mapped_to(2.0, 5.0)
            .unwrap();
        // ∫_2^5 x² dx = (125 − 8)/3 = 39.
        let got = rule.integrate(|x| x * x);
        assert!((got - 39.0).abs() < 1e-10);
        assert!(QuadratureRule::gauss_legendre(4)
            .unwrap()
            .mapped_to(1.0, 1.0)
            .is_err());
    }

    #[test]
    fn composite_rules_converge_on_smooth_integrand() {
        // ∫_0^π sin = 2.
        let t = trapezoid(f64::sin, 0.0, std::f64::consts::PI, 2000).unwrap();
        assert!((t - 2.0).abs() < 1e-6);
        let s = simpson(f64::sin, 0.0, std::f64::consts::PI, 64).unwrap();
        assert!((s - 2.0).abs() < 1e-6, "simpson error {}", (s - 2.0).abs());
        // Fourth-order: quadrupling the panel count shrinks the error ~256×.
        let s2 = simpson(f64::sin, 0.0, std::f64::consts::PI, 256).unwrap();
        assert!((s2 - 2.0).abs() < (s - 2.0).abs() / 100.0);
    }

    #[test]
    fn simpson_exact_for_cubics() {
        let s = simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 2).unwrap();
        // ∫_{-1}^{3} (x³ − 2x + 1) dx = [x⁴/4 − x² + x] = (81/4 − 9 + 3) − (1/4 − 1 − 1) = 16.
        assert!((s - 16.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(QuadratureRule::gauss_legendre(0).is_err());
        assert!(QuadratureRule::gauss_hermite(0).is_err());
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 3).is_err());
        assert!(simpson(|x| x, 1.0, 0.0, 2).is_err());
        assert!(QuadratureRule::from_nodes_weights(vec![0.0], vec![]).is_err());
        assert!(QuadratureRule::from_nodes_weights(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn explicit_rule_roundtrip() {
        let rule = QuadratureRule::from_nodes_weights(vec![-1.0, 1.0], vec![0.5, 0.5]).unwrap();
        assert_eq!(rule.len(), 2);
        assert!(!rule.is_empty());
        assert_eq!(rule.integrate(|x| x * x), 1.0);
    }
}
