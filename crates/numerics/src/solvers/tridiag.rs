//! Thomas algorithm for tridiagonal systems.

use crate::error::NumericsError;

/// Solves the tridiagonal system with sub-diagonal `lower`, diagonal `diag`
/// and super-diagonal `upper` using the Thomas algorithm.
///
/// `lower.len()` and `upper.len()` must equal `diag.len() − 1`. The system is
/// overwritten nowhere; a fresh solution vector is returned. Used by the 1D
/// analytic bonding-wire (fin) baseline where the discretized wire is a chain
/// of lumped segments.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] for inconsistent lengths and
/// [`NumericsError::FactorizationFailed`] if a pivot vanishes (the Thomas
/// algorithm assumes diagonal dominance or positive definiteness).
///
/// # Example
///
/// ```
/// use etherm_numerics::solvers::solve_tridiagonal;
///
/// // [2 -1 0; -1 2 -1; 0 -1 2] x = [1, 0, 1] → x = [1, 1, 1]
/// let x = solve_tridiagonal(&[-1.0, -1.0], &[2.0, 2.0, 2.0], &[-1.0, -1.0], &[1.0, 0.0, 1.0])
///     .unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-14);
/// assert!((x[1] - 1.0).abs() < 1e-14);
/// ```
pub fn solve_tridiagonal(
    lower: &[f64],
    diag: &[f64],
    upper: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, NumericsError> {
    let n = diag.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if lower.len() != n - 1 {
        return Err(NumericsError::DimensionMismatch {
            context: "tridiagonal lower band",
            expected: n - 1,
            found: lower.len(),
        });
    }
    if upper.len() != n - 1 {
        return Err(NumericsError::DimensionMismatch {
            context: "tridiagonal upper band",
            expected: n - 1,
            found: upper.len(),
        });
    }
    if rhs.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "tridiagonal rhs",
            expected: n,
            found: rhs.len(),
        });
    }

    let mut c = vec![0.0; n.saturating_sub(1)]; // scratch super-diagonal
    let mut d = vec![0.0; n];

    let mut pivot = diag[0];
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(NumericsError::FactorizationFailed {
            kind: "thomas",
            index: 0,
        });
    }
    if n > 1 {
        c[0] = upper[0] / pivot;
    }
    d[0] = rhs[0] / pivot;
    for i in 1..n {
        pivot = diag[i] - lower[i - 1] * c[i - 1];
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(NumericsError::FactorizationFailed {
                kind: "thomas",
                index: i,
            });
        }
        if i < n - 1 {
            c[i] = upper[i] / pivot;
        }
        d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / pivot;
    }
    // Back substitution.
    let mut x = d;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn matches_dense_solve() {
        let lower = [-1.0, -2.0, 0.5];
        let diag = [4.0, 5.0, 6.0, 3.0];
        let upper = [1.0, -1.0, 2.0];
        let rhs = [1.0, 2.0, 3.0, 4.0];
        let x = solve_tridiagonal(&lower, &diag, &upper, &rhs).unwrap();

        let mut a = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            a[(i, i)] = diag[i];
        }
        for i in 0..3 {
            a[(i, i + 1)] = upper[i];
            a[(i + 1, i)] = lower[i];
        }
        let xd = a.solve(&rhs).unwrap();
        for i in 0..4 {
            assert!((x[i] - xd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn single_unknown() {
        let x = solve_tridiagonal(&[], &[5.0], &[], &[10.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn empty_system() {
        let x = solve_tridiagonal(&[], &[], &[], &[]).unwrap();
        assert!(x.is_empty());
    }

    #[test]
    fn zero_pivot_detected() {
        let e = solve_tridiagonal(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]);
        assert!(matches!(
            e,
            Err(NumericsError::FactorizationFailed { kind: "thomas", .. })
        ));
    }

    #[test]
    fn length_validation() {
        assert!(solve_tridiagonal(&[1.0], &[1.0, 1.0], &[], &[1.0, 1.0]).is_err());
        assert!(solve_tridiagonal(&[], &[1.0, 1.0], &[1.0], &[1.0]).is_err());
        assert!(solve_tridiagonal(&[1.0], &[1.0, 1.0], &[1.0], &[1.0]).is_err());
    }
}
