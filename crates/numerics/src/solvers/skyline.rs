//! Skyline (envelope) Cholesky — a sparse direct solver for SPD systems.
//!
//! Stores, per row, the contiguous span from the first nonzero column to
//! the diagonal ("the skyline"); Cholesky factors fill in only inside the
//! envelope, so no symbolic analysis is required. For the FIT grids the
//! envelope is `O(n·nx·ny)`, which makes this the method of choice for
//! *small* systems (reference solutions, wire chains, coarse models) and a
//! deterministic fallback when an iterative solve is not wanted.

use crate::error::NumericsError;
use crate::sparse::Csr;

/// Skyline Cholesky factorization `A = L Lᵀ` of an SPD matrix.
///
/// # Example
///
/// ```
/// use etherm_numerics::sparse::{Coo, Csr};
/// use etherm_numerics::solvers::SkylineCholesky;
///
/// let mut coo = Coo::new(3, 3);
/// for i in 0..3 {
///     coo.push(i, i, 2.0);
/// }
/// coo.push(0, 1, -1.0);
/// coo.push(1, 0, -1.0);
/// coo.push(1, 2, -1.0);
/// coo.push(2, 1, -1.0);
/// let a = Csr::from_coo(&coo);
/// let f = SkylineCholesky::factor(&a).unwrap();
/// let x = f.solve(&[1.0, 0.0, 1.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SkylineCholesky {
    n: usize,
    /// First (leftmost) column of each row's envelope.
    first: Vec<usize>,
    /// Offset of each row's packed storage in `vals`.
    row_start: Vec<usize>,
    /// Packed rows `first[i] ..= i`.
    vals: Vec<f64>,
}

impl SkylineCholesky {
    /// Factorizes the lower triangle of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for non-square input and
    /// [`NumericsError::FactorizationFailed`] when a pivot is non-positive
    /// (matrix not SPD).
    pub fn factor(a: &Csr) -> Result<Self, NumericsError> {
        if a.n_rows() != a.n_cols() {
            return Err(NumericsError::InvalidArgument(
                "skyline: matrix must be square".into(),
            ));
        }
        let n = a.n_rows();
        // Envelope: first nonzero column per row (capped at the diagonal).
        let mut first = vec![0usize; n];
        for i in 0..n {
            let (cols, _) = a.row(i);
            first[i] = cols.first().map_or(i, |&c| c.min(i));
        }
        // Packed layout.
        let mut row_start = vec![0usize; n + 1];
        for i in 0..n {
            row_start[i + 1] = row_start[i] + (i - first[i] + 1);
        }
        let mut vals = vec![0.0f64; row_start[n]];
        // Scatter A's lower triangle into the envelope.
        for i in 0..n {
            let (cols, a_vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(a_vals) {
                if j > i {
                    break;
                }
                vals[row_start[i] + (j - first[i])] = v;
            }
        }
        // Row-oriented factorization. `at(i, j)` indexes the packed rows.
        for i in 0..n {
            let fi = first[i];
            for j in fi..i {
                // L[i][j] = (A[i][j] − Σ L[i][k]·L[j][k]) / L[j][j]
                let fj = first[j];
                let k0 = fi.max(fj);
                let mut s = vals[row_start[i] + (j - fi)];
                for k in k0..j {
                    s -= vals[row_start[i] + (k - fi)] * vals[row_start[j] + (k - fj)];
                }
                let djj = vals[row_start[j] + (j - fj)];
                vals[row_start[i] + (j - fi)] = s / djj;
            }
            // Diagonal.
            let mut s = vals[row_start[i] + (i - fi)];
            for k in fi..i {
                let l = vals[row_start[i] + (k - fi)];
                s -= l * l;
            }
            if s <= 0.0 || !s.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "skyline-cholesky",
                    index: i,
                });
            }
            vals[row_start[i] + (i - fi)] = s.sqrt();
        }
        Ok(SkylineCholesky {
            n,
            first,
            row_start,
            vals,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (envelope) entries.
    pub fn envelope_size(&self) -> usize {
        self.vals.len()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "skyline solve: length mismatch");
        let mut x = b.to_vec();
        // Forward: L y = b.
        for i in 0..self.n {
            let fi = self.first[i];
            let mut s = x[i];
            for k in fi..i {
                s -= self.vals[self.row_start[i] + (k - fi)] * x[k];
            }
            x[i] = s / self.vals[self.row_start[i] + (i - fi)];
        }
        // Backward: Lᵀ x = y (column sweep over rows below).
        for i in (0..self.n).rev() {
            let fi = self.first[i];
            let xi = x[i] / self.vals[self.row_start[i] + (i - fi)];
            x[i] = xi;
            for k in fi..i {
                x[k] -= self.vals[self.row_start[i] + (k - fi)] * xi;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Coo;

    fn lap1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn solves_tridiagonal_exactly() {
        let n = 40;
        let a = lap1d(n);
        let f = SkylineCholesky::factor(&a).unwrap();
        assert_eq!(f.dim(), n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        let x = f.solve(&b);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10, "{i}: {} vs {}", x[i], x_true[i]);
        }
        // Envelope of a tridiagonal matrix: 2n − 1 entries.
        assert_eq!(f.envelope_size(), 2 * n - 1);
    }

    #[test]
    fn matches_dense_cholesky_with_fill_in() {
        // Arrow-ish SPD matrix: dense first column → full envelope rows.
        let n = 8;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 10.0 + i as f64);
            if i > 0 {
                coo.push(i, 0, 1.0);
                coo.push(0, i, 1.0);
            }
        }
        let a = Csr::from_coo(&coo);
        let f = SkylineCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let x = f.solve(&b);
        let x_ref = a.to_dense().cholesky().unwrap().solve(&b);
        for i in 0..n {
            assert!((x[i] - x_ref[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        let a = Csr::from_coo(&coo);
        assert!(matches!(
            SkylineCholesky::factor(&a),
            Err(NumericsError::FactorizationFailed { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let coo = Coo::new(2, 3);
        let a = Csr::from_coo(&coo);
        assert!(SkylineCholesky::factor(&a).is_err());
    }

    #[test]
    fn solves_3d_fit_like_system() {
        // 7-point stencil on a 4×4×3 grid with Dirichlet-like diagonal shift.
        let (nx, ny, nz) = (4usize, 4, 3);
        let n = nx * ny * nz;
        let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
        let mut coo = Coo::new(n, n);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = idx(i, j, k);
                    coo.push(c, c, 6.5);
                    let mut link = |other: usize| {
                        coo.push(c, other, -1.0);
                    };
                    if i > 0 {
                        link(idx(i - 1, j, k));
                    }
                    if i + 1 < nx {
                        link(idx(i + 1, j, k));
                    }
                    if j > 0 {
                        link(idx(i, j - 1, k));
                    }
                    if j + 1 < ny {
                        link(idx(i, j + 1, k));
                    }
                    if k > 0 {
                        link(idx(i, j, k - 1));
                    }
                    if k + 1 < nz {
                        link(idx(i, j, k + 1));
                    }
                }
            }
        }
        let a = Csr::from_coo(&coo);
        let f = SkylineCholesky::factor(&a).unwrap();
        let b = vec![1.0; n];
        let x = f.solve(&b);
        let mut r = vec![0.0; n];
        a.residual(&b, &x, &mut r);
        assert!(crate::vector::norm2(&r) < 1e-10);
    }
}
