//! Stabilized bi-conjugate gradient method for general square systems.

use super::cg::CgOptions;
use super::precond::Preconditioner;
use super::workspace::KrylovWorkspace;
use super::SolveReport;
use crate::error::NumericsError;
use crate::sparse::LinOp;
use crate::vector;

/// Solves the (possibly non-symmetric) system `A x = b` with right-
/// preconditioned BiCGStab.
///
/// `x` holds the initial guess on entry and the solution on exit.
/// The electrothermal systems of this project stay symmetric, so BiCGStab is
/// mainly a cross-check and a safety net for experimental non-symmetric
/// couplings (e.g. upwinded convective terms).
///
/// # Errors
///
/// Returns [`NumericsError::Breakdown`] when an inner product vanishes and
/// [`NumericsError::DimensionMismatch`] on inconsistent sizes. Hitting the
/// iteration cap yields `Ok` with `converged == false`.
pub fn bicgstab<A: LinOp + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    options: &CgOptions,
) -> Result<SolveReport, NumericsError> {
    bicgstab_with(a, b, x, precond, options, &mut KrylovWorkspace::new())
}

/// [`bicgstab`] with caller-owned scratch buffers.
///
/// Reusing the same [`KrylovWorkspace`] across solves makes the iteration
/// heap-allocation-free after the first call.
///
/// # Errors
///
/// See [`bicgstab`].
pub fn bicgstab_with<A: LinOp + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    options: &CgOptions,
    ws: &mut KrylovWorkspace,
) -> Result<SolveReport, NumericsError> {
    let n = a.dim();
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "bicgstab rhs",
            expected: n,
            found: b.len(),
        });
    }
    if x.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "bicgstab initial guess",
            expected: n,
            found: x.len(),
        });
    }
    if n == 0 {
        return Ok(SolveReport::trivial());
    }

    let norm_b = vector::norm2(b);
    if !norm_b.is_finite() {
        return Err(NumericsError::NonFinite {
            solver: "bicgstab",
            detail: "right-hand side",
        });
    }
    let target = (options.tol_rel * norm_b).max(options.tol_abs);
    let max_iter = if options.max_iter == 0 {
        10 * n + 100
    } else {
        options.max_iter
    };

    ws.ensure(n);
    let r = &mut ws.r[..n];
    a.apply_into(x, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut res_norm = vector::norm2(r);
    if !res_norm.is_finite() {
        return Err(NumericsError::NonFinite {
            solver: "bicgstab",
            detail: "initial residual",
        });
    }
    if res_norm <= target {
        return Ok(SolveReport {
            converged: true,
            iterations: 0,
            residual: res_norm,
        });
    }

    let r0 = &mut ws.r0[..n]; // shadow residual
    r0.copy_from_slice(r);
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let v = &mut ws.ap[..n];
    v.fill(0.0);
    let p = &mut ws.p[..n];
    p.fill(0.0);
    let ph = &mut ws.z[..n];
    let s = &mut ws.s[..n];
    let sh = &mut ws.sh[..n];
    let t = &mut ws.t[..n];

    for iter in 1..=max_iter {
        let rho_new = vector::dot(r0, r);
        if !rho_new.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "bicgstab",
                detail: "r0ᵀr",
            });
        }
        if rho_new.abs() < f64::MIN_POSITIVE * 1e10 {
            return Err(NumericsError::Breakdown {
                solver: "bicgstab",
                detail: "rho vanished",
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p − omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.apply(p, ph);
        a.apply_into(ph, v);
        let r0v = vector::dot(r0, v);
        if r0v.abs() < f64::MIN_POSITIVE * 1e10 {
            return Err(NumericsError::Breakdown {
                solver: "bicgstab",
                detail: "r0ᵀv vanished",
            });
        }
        alpha = rho / r0v;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if vector::norm2(s) <= target {
            vector::axpy(alpha, ph, x);
            // True residual; `t` is free to reuse as scratch here.
            a.apply_into(x, t);
            for i in 0..n {
                t[i] = b[i] - t[i];
            }
            return Ok(SolveReport {
                converged: true,
                iterations: iter,
                residual: vector::norm2(t),
            });
        }
        precond.apply(s, sh);
        a.apply_into(sh, t);
        let tt = vector::dot(t, t);
        if tt == 0.0 {
            return Err(NumericsError::Breakdown {
                solver: "bicgstab",
                detail: "tᵀt vanished",
            });
        }
        omega = vector::dot(t, s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            return Err(NumericsError::Breakdown {
                solver: "bicgstab",
                detail: "omega vanished",
            });
        }
        for i in 0..n {
            x[i] += alpha * ph[i] + omega * sh[i];
            r[i] = s[i] - omega * t[i];
        }
        res_norm = vector::norm2(r);
        if !res_norm.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "bicgstab",
                detail: "residual",
            });
        }
        if res_norm <= target {
            return Ok(SolveReport {
                converged: true,
                iterations: iter,
                residual: res_norm,
            });
        }
    }

    Ok(SolveReport {
        converged: false,
        iterations: max_iter,
        residual: res_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{IdentityPrecond, JacobiPrecond};
    use crate::sparse::{Coo, Csr};

    fn nonsym(n: usize) -> Csr {
        // Convection-diffusion-like: diag 3, sub −2, super −0.5.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0);
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
                coo.push(i + 1, i, -2.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let n = 60;
        let a = nonsym(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; n];
        let p = IdentityPrecond::new(n);
        let rep = bicgstab(&a, &b, &mut x, &p, &CgOptions::with_tol(1e-12)).unwrap();
        assert!(rep.converged, "{rep}");
        assert!(vector::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn preconditioned_is_not_worse() {
        let n = 120;
        let a = nonsym(n);
        let b = vec![1.0; n];
        let p0 = IdentityPrecond::new(n);
        let pj = JacobiPrecond::new(&a).unwrap();
        let mut x0 = vec![0.0; n];
        let mut xj = vec![0.0; n];
        let r0 = bicgstab(&a, &b, &mut x0, &p0, &CgOptions::default()).unwrap();
        let rj = bicgstab(&a, &b, &mut xj, &pj, &CgOptions::default()).unwrap();
        assert!(r0.converged && rj.converged);
        assert!(rj.iterations <= r0.iterations + 5);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = nonsym(4);
        let mut x = vec![0.0; 4];
        let p = IdentityPrecond::new(4);
        let rep = bicgstab(&a, &[0.0; 4], &mut x, &p, &CgOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn mismatch_errors() {
        let a = nonsym(4);
        let p = IdentityPrecond::new(4);
        let mut x = vec![0.0; 4];
        assert!(bicgstab(&a, &[1.0; 3], &mut x, &p, &CgOptions::default()).is_err());
    }
}
