//! Smoothed-aggregation algebraic multigrid (AMG) preconditioner.
//!
//! Incomplete-factorization preconditioners keep each CG *iteration* cheap,
//! but their iteration counts grow as the FIT mesh is refined. A multigrid
//! V-cycle attacks the smooth error components that CG resolves slowest, so
//! AMG-preconditioned CG converges in a near-mesh-independent number of
//! iterations — the decisive property once package models leave the paper
//! resolution behind.
//!
//! # Algorithm
//!
//! The hierarchy is built purely algebraically from the fine-level CSR:
//!
//! 1. **Strength of connection** — an off-diagonal entry is *strong* when
//!    `|a_ij| ≥ θ·√(a_ii·a_jj)` ([`AmgOptions::strength_theta`]). Weak
//!    entries are lumped onto the diagonal of the *filtered* matrix used for
//!    prolongation smoothing, so huge material contrasts (σ jumps of many
//!    orders between copper and mold compound) do not pollute the coarse
//!    basis functions.
//! 2. **Greedy aggregation** — nodes are grouped by the standard three-pass
//!    scheme: seed an aggregate around every node whose strong neighbours
//!    are all unaggregated, attach leftovers to their most strongly
//!    connected aggregate, and make fresh aggregates of whatever remains.
//!    Each aggregate becomes one coarse DoF (piecewise-constant tentative
//!    prolongation `T`).
//! 3. **Smoothed prolongation** — `P = (I − ω·D⁻¹·A_F)·T` with the damped
//!    Jacobi weight `ω = c/λ̂`, where `λ̂ ≥ λ_max(D⁻¹A_F)` is the cheap
//!    Gershgorin row-sum bound and `c` is
//!    [`AmgOptions::prolongation_damping`] (default `4/3`).
//! 4. **Galerkin coarse operator** — `A_c = Pᵀ·A·P`, computed sparsely into
//!    CSR (first `A·P`, then `Pᵀ·(A·P)` row by row through a dense
//!    accumulator). The Galerkin product of an SPD matrix is SPD again, so
//!    the construction recurses until the dimension drops below
//!    [`AmgOptions::coarse_max`].
//! 5. **Coarsest solve** — exact dense Cholesky. If coarsening *stalls*
//!    (few strong connections — exactly the mass-dominated, strongly
//!    diagonally dominant transient systems that need no hierarchy), the
//!    remaining level is handled by symmetric Gauss–Seidel sweeps instead,
//!    which keeps the preconditioner SPD and effective at any size.
//!
//! One application of the preconditioner `z = M⁻¹·r` is a single **V-cycle**:
//! pre-smoothing, restriction of the residual, recursion, coarse-grid
//! correction, post-smoothing. With a symmetric smoother pairing (weighted
//! Jacobi on both sides, or a forward SOR pre-sweep mirrored by a backward
//! SOR post-sweep — see [`AmgSmoother`]) and a symmetric coarsest solve, the
//! V-cycle operator is symmetric positive definite, as preconditioned CG
//! requires.
//!
//! # The frozen-skeleton refresh contract
//!
//! The transient simulator reassembles the same sparsity pattern every
//! Picard iterate with drifting values. [`AmgPrecond::refresh`] therefore
//! re-runs **only the numeric phase** — refilter, re-smooth `P`,
//! re-Galerkin, re-factor the coarse solve — over the aggregation and
//! sparsity skeleton frozen at construction, touching no heap memory at all
//! (proven by the counting-allocator test in `tests/alloc_free.rs`).
//! Construction runs the identical numeric routine after the symbolic
//! setup, so a refreshed hierarchy is bit-identical to a freshly built one
//! whenever the strength classification is unchanged. If the pattern *did*
//! change, `refresh` fails with [`NumericsError::InvalidArgument`] and the
//! caller rebuilds (the simulator's cache does exactly that).
//!
//! Residuals, restrictions, prolongations and Jacobi sweeps go through
//! [`Csr::spmv_threaded`] on levels with at least 1024 DoFs when
//! [`AmgOptions::n_threads`] `> 1`; the row partition is deterministic, so
//! results are bit-identical to serial.

use crate::error::NumericsError;
use crate::multivec::MultiVec;
use crate::solvers::Preconditioner;
use crate::sparse::{Coo, Csr};
use std::cell::RefCell;

/// Below this many DoFs a level always runs serial kernels (thread-spawn
/// latency would exceed the sweep itself).
const PAR_THRESHOLD: usize = 1024;

/// Smoother applied before and after each coarse-grid correction.
///
/// Both choices yield a *symmetric* V-cycle: Jacobi is symmetric by itself,
/// and the SOR variant pairs a forward pre-sweep with a backward post-sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AmgSmoother {
    /// Weighted (damped) Jacobi: `x ← x + ω·D⁻¹·(b − A·x)`.
    Jacobi {
        /// Damping factor, typically `2/3`.
        omega: f64,
        /// Sweeps per pre-/post-smoothing phase.
        sweeps: usize,
    },
    /// Successive over-relaxation: forward sweeps before, backward sweeps
    /// after the coarse-grid correction (an SSOR splitting of the V-cycle).
    Ssor {
        /// Relaxation factor in `(0, 2)`; `1.0` is Gauss–Seidel.
        omega: f64,
        /// Sweeps per pre-/post-smoothing phase.
        sweeps: usize,
    },
}

impl Default for AmgSmoother {
    fn default() -> Self {
        // A symmetric Gauss–Seidel pair is the classic workhorse: stronger
        // than Jacobi at the same cost per sweep.
        AmgSmoother::Ssor {
            omega: 1.0,
            sweeps: 1,
        }
    }
}

/// Setup and cycling options of [`AmgPrecond`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgOptions {
    /// Strength-of-connection threshold `θ`: `(i, j)` is strong when
    /// `|a_ij| ≥ θ·√(a_ii·a_jj)`. `0` keeps every connection.
    pub strength_theta: f64,
    /// Numerator `c` of the prolongation-smoothing weight `ω = c/λ̂`
    /// (`4/3` is the standard smoothed-aggregation choice).
    pub prolongation_damping: f64,
    /// Pre-/post-smoother of the V-cycle.
    pub smoother: AmgSmoother,
    /// Coarsening stops once a level has at most this many DoFs; that level
    /// is solved exactly by dense Cholesky.
    pub coarse_max: usize,
    /// Hard cap on the number of levels (safety net for pathological
    /// coarsening).
    pub max_levels: usize,
    /// OS threads for residuals, grid transfers and Jacobi sweeps on large
    /// levels (`1` = serial; results are bit-identical regardless).
    pub n_threads: usize,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            strength_theta: 0.08,
            prolongation_damping: 4.0 / 3.0,
            smoother: AmgSmoother::default(),
            coarse_max: 64,
            max_levels: 16,
            n_threads: 1,
        }
    }
}

/// One SOR sweep `x ← (1−ω)·x + ω·D⁻¹·(b − (L+U)·x)` in ascending
/// (`forward`) or descending row order, reading already-updated entries
/// (Gauss–Seidel style).
fn sor_sweep(a: &Csr, inv_diag: &[f64], b: &[f64], x: &mut [f64], omega: f64, forward: bool) {
    let n = x.len();
    let update = |x: &mut [f64], i: usize| {
        let (cols, vals) = a.row(i);
        let mut s = b[i];
        for (&j, &v) in cols.iter().zip(vals) {
            if j != i {
                s -= v * x[j];
            }
        }
        x[i] = (1.0 - omega) * x[i] + omega * s * inv_diag[i];
    };
    if forward {
        for i in 0..n {
            update(x, i);
        }
    } else {
        for i in (0..n).rev() {
            update(x, i);
        }
    }
}

/// Fused multi-column variant of [`sor_sweep`] over row-interleaved panels:
/// each row's indices are read once for the whole panel and every operand
/// row is one contiguous `k`-slice. `scratch` provides a `k`-wide
/// accumulator row (any panel of the same shape; its prior contents are
/// irrelevant and it is left dirty). The scalar per-column update
/// expression is preserved exactly — column `j` is bit-identical to
/// `sor_sweep(a, inv_diag, b.col(j), x.col(j), omega, forward)`.
fn sor_sweep_block(
    a: &Csr,
    inv_diag: &[f64],
    b: &MultiVec,
    x: &mut MultiVec,
    scratch: &mut MultiVec,
    omega: f64,
    forward: bool,
) {
    let n = x.n_rows();
    let k = x.n_cols();
    if k == 0 {
        return;
    }
    debug_assert_eq!(b.n_rows(), n);
    debug_assert_eq!(b.n_cols(), k);
    debug_assert!(scratch.n_rows() >= 1 && scratch.n_cols() == k);
    let srow = scratch.row_mut(0);
    let mut update = |x: &mut MultiVec, i: usize| {
        let (cols, vals) = a.row(i);
        srow.copy_from_slice(b.row(i));
        let xs = x.as_slice();
        for (&j, &v) in cols.iter().zip(vals) {
            if j != i {
                let xj = &xs[j * k..j * k + k];
                for (sv, xv) in srow.iter_mut().zip(xj) {
                    *sv -= v * xv;
                }
            }
        }
        let d = inv_diag[i];
        for (xv, &sv) in x.row_mut(i).iter_mut().zip(srow.iter()) {
            *xv = (1.0 - omega) * *xv + omega * sv * d;
        }
    };
    if forward {
        for i in 0..n {
            update(x, i);
        }
    } else {
        for i in (0..n).rev() {
            update(x, i);
        }
    }
}

/// Exact dense Cholesky solve of the coarsest level, re-factorable in place.
#[derive(Debug, Clone)]
struct DenseCholesky {
    n: usize,
    /// Row-major lower-triangular factor (upper triangle unused).
    l: Vec<f64>,
}

impl DenseCholesky {
    fn new(n: usize) -> Self {
        DenseCholesky { n, l: vec![0.0; n * n] }
    }

    /// Re-factors from `a` in place (no allocation).
    fn factor(&mut self, a: &Csr) -> Result<(), NumericsError> {
        let n = self.n;
        debug_assert_eq!(a.n_rows(), n);
        self.l.fill(0.0);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j <= i {
                    self.l[i * n + j] = v;
                }
            }
        }
        for j in 0..n {
            let mut d = self.l[j * n + j];
            for k in 0..j {
                d -= self.l[j * n + k] * self.l[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "amg-coarse-cholesky",
                    index: j,
                });
            }
            let d = d.sqrt();
            self.l[j * n + j] = d;
            for i in (j + 1)..n {
                let mut s = self.l[i * n + j];
                for k in 0..j {
                    s -= self.l[i * n + k] * self.l[j * n + k];
                }
                self.l[i * n + j] = s / d;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` in place (`x` holds `b` on entry).
    fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        for i in 0..n {
            let mut s = x[i];
            for k in 0..i {
                s -= self.l[i * n + k] * x[k];
            }
            x[i] = s / self.l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in (i + 1)..n {
                s -= self.l[k * n + i] * x[k];
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// Solver of the last (uncoarsenable) level.
#[derive(Debug, Clone)]
enum Coarsest {
    /// Exact dense Cholesky — the normal case (`n ≤ coarse_max`).
    Direct(DenseCholesky),
    /// Symmetric Gauss–Seidel sweeps — the stalled-coarsening fallback for
    /// strongly diagonally dominant levels that are too big for a dense
    /// factor yet need no hierarchy (SGS from a zero guess is an SPD
    /// operation, so the whole V-cycle stays CG-compatible).
    SymmetricGs {
        /// Reciprocal diagonal of the coarsest operator.
        inv_diag: Vec<f64>,
    },
}

/// One multigrid level: the operator, the frozen transfer skeletons and the
/// dense accumulator of the Galerkin product.
#[derive(Debug, Clone)]
struct Level {
    /// Operator at this level (owned; values refreshed in place).
    a: Csr,
    /// Reciprocal diagonal of `a`.
    inv_diag: Vec<f64>,
    /// Strength-filtered operator: strong entries + diagonal, weak entries
    /// lumped onto the diagonal. Pattern frozen at setup.
    filtered: Csr,
    /// Coarse dimension (number of aggregates).
    n_coarse: usize,
    /// Smoothed prolongation `P` (`n × n_coarse`), pattern frozen.
    p: Csr,
    /// Restriction `R = Pᵀ` (`n_coarse × n`), pattern frozen.
    r: Csr,
    /// Slot map `values(P)[k] → values(R)[p_to_r[k]]` for the
    /// allocation-free numeric transpose.
    p_to_r: Vec<usize>,
    /// Slot map from the `k`-th filtered entry `(i, j)` to the P value slot
    /// of `(i, agg[j])`, making the prolongation smoothing a linear pass.
    f_to_p: Vec<usize>,
    /// Product `A·P` (`n × n_coarse`), pattern frozen (Galerkin scratch).
    ap: Csr,
    /// Dense accumulator (length `n_coarse`) for the sparse RAP products.
    acc: Vec<f64>,
}

/// Per-level V-cycle vectors (interior-mutable: `apply` takes `&self`).
#[derive(Debug, Clone, Default)]
struct LevelScratch {
    /// Iterate at this level.
    x: Vec<f64>,
    /// Right-hand side at this level.
    b: Vec<f64>,
    /// Residual / Jacobi spmv scratch.
    res: Vec<f64>,
    /// Prolongated-correction scratch.
    tmp: Vec<f64>,
}

impl LevelScratch {
    fn with_dim(n: usize) -> Self {
        LevelScratch {
            x: vec![0.0; n],
            b: vec![0.0; n],
            res: vec![0.0; n],
            tmp: vec![0.0; n],
        }
    }
}

/// Per-level V-cycle panels for [`AmgPrecond::apply_block`] (lazily grown to
/// the panel width actually used; allocation-free once warmed up at a fixed
/// `k`).
#[derive(Debug, Clone, Default)]
struct BlockLevelScratch {
    /// Iterate panel at this level.
    x: MultiVec,
    /// Right-hand-side panel at this level.
    b: MultiVec,
    /// Residual / Jacobi spmm scratch panel.
    res: MultiVec,
    /// Prolongated-correction scratch panel.
    tmp: MultiVec,
    /// Contiguous single-column staging buffer (dense coarse solves).
    col: Vec<f64>,
}

impl BlockLevelScratch {
    fn ensure(&mut self, n: usize, k: usize) {
        for panel in [&mut self.x, &mut self.b, &mut self.res, &mut self.tmp] {
            panel.ensure(n, k);
        }
        if self.col.len() < n {
            self.col.resize(n, 0.0);
        }
    }
}

/// Smoothed-aggregation AMG V-cycle preconditioner.
///
/// Build once with [`AmgPrecond::new`], then follow the drifting values of
/// the (pattern-frozen) transient assembly with [`AmgPrecond::refresh`] —
/// the numeric-only re-setup performs zero heap allocations. Apply through
/// the [`Preconditioner`] trait (one V-cycle per application).
///
/// # Example
///
/// ```
/// use etherm_numerics::solvers::{pcg, AmgOptions, AmgPrecond, CgOptions};
/// use etherm_numerics::sparse::{Coo, Csr};
///
/// # fn main() -> Result<(), etherm_numerics::NumericsError> {
/// // 1-D Poisson chain.
/// let n = 200;
/// let mut coo = Coo::new(n, n);
/// for i in 0..n {
///     coo.push(i, i, 2.0);
///     if i + 1 < n {
///         coo.push(i, i + 1, -1.0);
///         coo.push(i + 1, i, -1.0);
///     }
/// }
/// let a = Csr::from_coo(&coo);
/// let m = AmgPrecond::new(&a, AmgOptions::default())?;
/// let b = vec![1.0; n];
/// let mut x = vec![0.0; n];
/// let report = pcg(&a, &b, &mut x, &m, &CgOptions::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
/// The hierarchy is `Clone`: a worker can fork a fully built (symbolic +
/// numeric) preconditioner from a template and `refresh` it against its own
/// matrix values, sharing the aggregation/sparsity skeleton construction
/// cost across sessions of a parameter campaign.
#[derive(Debug, Clone)]
pub struct AmgPrecond {
    options: AmgOptions,
    levels: Vec<Level>,
    /// Coarsest-level operator (owned; values refreshed in place).
    coarse_a: Csr,
    coarse: Coarsest,
    /// V-cycle vectors, one entry per level plus the coarsest.
    scratch: RefCell<Vec<LevelScratch>>,
    /// V-cycle panels for the batched apply, grown lazily on first
    /// [`AmgPrecond::apply_block`] call.
    block_scratch: RefCell<Vec<BlockLevelScratch>>,
}

impl AmgPrecond {
    /// Builds the full hierarchy (symbolic + numeric phase) from `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for a non-square matrix
    /// or invalid smoother parameters (SOR relaxation outside `(0, 2)`,
    /// non-positive Jacobi damping, zero sweeps), and
    /// [`NumericsError::FactorizationFailed`] for a non-positive diagonal
    /// or a coarse factorization breakdown (matrix not SPD).
    pub fn new(a: &Csr, options: AmgOptions) -> Result<Self, NumericsError> {
        if a.n_rows() != a.n_cols() {
            return Err(NumericsError::InvalidArgument(
                "amg: matrix must be square".into(),
            ));
        }
        if a.n_rows() > u32::MAX as usize {
            return Err(NumericsError::InvalidArgument(
                "amg: dimension exceeds u32 aggregate index range".into(),
            ));
        }
        match options.smoother {
            AmgSmoother::Jacobi { omega, sweeps } => {
                if !(omega > 0.0 && omega.is_finite()) || sweeps == 0 {
                    return Err(NumericsError::InvalidArgument(format!(
                        "amg: jacobi smoother needs omega > 0 and sweeps > 0, \
                         got omega {omega}, sweeps {sweeps}"
                    )));
                }
            }
            AmgSmoother::Ssor { omega, sweeps } => {
                if !(0.0..2.0).contains(&omega) || omega == 0.0 || sweeps == 0 {
                    return Err(NumericsError::InvalidArgument(format!(
                        "amg: sor smoother needs omega in (0, 2) and sweeps > 0, \
                         got omega {omega}, sweeps {sweeps}"
                    )));
                }
            }
        }
        let mut levels: Vec<Level> = Vec::new();
        let mut current = a.clone();
        while current.n_rows() > options.coarse_max && levels.len() + 2 <= options.max_levels {
            match Level::symbolic(&current, &options, levels.len())? {
                Some((mut level, mut coarse_a)) => {
                    // Numeric phase right away: the next level's strength
                    // classification needs real coarse values.
                    level.numeric(&options, &mut coarse_a)?;
                    levels.push(level);
                    current = coarse_a;
                }
                None => break, // coarsening stalled
            }
        }
        let mut scratch: Vec<LevelScratch> = levels
            .iter()
            .map(|l| LevelScratch::with_dim(l.a.n_rows()))
            .collect();
        scratch.push(LevelScratch::with_dim(current.n_rows()));
        // A stalled level that is still small enough is factored densely
        // anyway (exact and cheap up to a few hundred DoFs); only genuinely
        // large uncoarsenable levels fall back to SGS sweeps.
        let mut coarse = if current.n_rows() <= options.coarse_max.saturating_mul(8) {
            Coarsest::Direct(DenseCholesky::new(current.n_rows()))
        } else {
            Coarsest::SymmetricGs {
                inv_diag: vec![0.0; current.n_rows()],
            }
        };
        Self::refresh_coarsest(&mut coarse, &current)?;
        Ok(AmgPrecond {
            options,
            levels,
            coarse_a: current,
            coarse,
            scratch: RefCell::new(scratch),
            block_scratch: RefCell::new(Vec::new()),
        })
    }

    /// Re-runs the numeric phase over the frozen aggregation/sparsity
    /// skeleton: refilter, re-smooth `P`, re-Galerkin every level and
    /// re-factor the coarsest solve — all in place, no heap allocation.
    ///
    /// On a numeric error the stored hierarchy is left invalid; callers
    /// should rebuild from scratch (the simulator's cache does).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `a`'s sparsity pattern
    /// differs from the one the hierarchy was built on, and
    /// [`NumericsError::FactorizationFailed`] on a non-positive diagonal or
    /// coarse pivot.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        let fine = self
            .levels
            .first_mut()
            .map(|l| &mut l.a)
            .unwrap_or(&mut self.coarse_a);
        if !fine.same_pattern(a) {
            return Err(NumericsError::InvalidArgument(
                "amg refresh: sparsity pattern of the matrix changed".into(),
            ));
        }
        fine.copy_values_from(a);
        let options = self.options;
        for l in 0..self.levels.len() {
            let (head, tail) = self.levels.split_at_mut(l + 1);
            let level = &mut head[l];
            let next_a = tail
                .first_mut()
                .map(|nl| &mut nl.a)
                .unwrap_or(&mut self.coarse_a);
            level.numeric(&options, next_a)?;
        }
        Self::refresh_coarsest(&mut self.coarse, &self.coarse_a)
    }

    fn refresh_coarsest(coarse: &mut Coarsest, a: &Csr) -> Result<(), NumericsError> {
        match coarse {
            Coarsest::Direct(f) => f.factor(a),
            Coarsest::SymmetricGs { inv_diag } => {
                for i in 0..a.n_rows() {
                    let d = a.get(i, i);
                    if d <= 0.0 || !d.is_finite() {
                        return Err(NumericsError::FactorizationFailed {
                            kind: "amg",
                            index: i,
                        });
                    }
                    inv_diag[i] = 1.0 / d;
                }
                Ok(())
            }
        }
    }

    /// Number of levels including the coarsest (a direct solve alone is one
    /// level).
    pub fn n_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Dimension of level `l` (level 0 is the fine grid).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.n_levels()`.
    pub fn level_dim(&self, l: usize) -> usize {
        self.level_matrix(l).n_rows()
    }

    /// The (Galerkin) operator of level `l` (level 0 is the fine matrix).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.n_levels()`.
    pub fn level_matrix(&self, l: usize) -> &Csr {
        if l < self.levels.len() {
            &self.levels[l].a
        } else {
            assert_eq!(l, self.levels.len(), "level out of range");
            &self.coarse_a
        }
    }

    /// Dimension of the coarsest (directly solved) level.
    pub fn coarse_dim(&self) -> usize {
        self.coarse_a.n_rows()
    }

    /// Operator complexity `Σ_l nnz(A_l) / nnz(A_0)` — the classic
    /// memory/work overhead measure of an AMG hierarchy (1.0 = no overhead).
    pub fn operator_complexity(&self) -> f64 {
        let fine_nnz = self.level_matrix(0).nnz().max(1);
        let total: usize = (0..self.n_levels())
            .map(|l| self.level_matrix(l).nnz())
            .sum();
        total as f64 / fine_nnz as f64
    }

    /// Thread count for kernels on an `n`-dimensional level.
    fn threads_for(&self, n: usize) -> usize {
        if n >= PAR_THRESHOLD {
            self.options.n_threads
        } else {
            1
        }
    }

    /// One V-cycle on level `l`: `s[l].b` is the RHS, result in `s[l].x`.
    fn cycle(&self, l: usize, s: &mut [LevelScratch]) {
        if l == self.levels.len() {
            let sl = &mut s[l];
            match &self.coarse {
                Coarsest::Direct(f) => {
                    sl.x.copy_from_slice(&sl.b);
                    f.solve_in_place(&mut sl.x);
                }
                Coarsest::SymmetricGs { inv_diag } => {
                    sl.x.fill(0.0);
                    sor_sweep(&self.coarse_a, inv_diag, &sl.b, &mut sl.x, 1.0, true);
                    sor_sweep(&self.coarse_a, inv_diag, &sl.b, &mut sl.x, 1.0, false);
                }
            }
            return;
        }
        let level = &self.levels[l];
        let nt = self.threads_for(level.a.n_rows());
        {
            let sl = &mut s[l];
            sl.x.fill(0.0);
            level.smooth(&self.options, nt, &sl.b, &mut sl.x, &mut sl.res, true);
            // res ← b − A·x
            level.a.spmv_threaded(&sl.x, &mut sl.res, nt);
            for (ri, bi) in sl.res.iter_mut().zip(&sl.b) {
                *ri = bi - *ri;
            }
        }
        {
            // b_{l+1} ← R·res (scratch holds one slot per level plus the
            // coarsest, so the split leaves l+1 on the right).
            let (this, deeper) = s.split_at_mut(l + 1);
            level.r.spmv_threaded(&this[l].res, &mut deeper[0].b, nt);
        }
        self.cycle(l + 1, s);
        {
            let (this, deeper) = s.split_at_mut(l + 1);
            let sl = &mut this[l];
            // x ← x + P·x_{l+1}
            level.p.spmv_threaded(&deeper[0].x, &mut sl.tmp, nt);
            for (xi, ti) in sl.x.iter_mut().zip(&sl.tmp) {
                *xi += ti;
            }
            level.smooth(&self.options, nt, &sl.b, &mut sl.x, &mut sl.res, false);
        }
    }

    /// Batched V-cycle on level `l`: the exact mirror of
    /// [`AmgPrecond::cycle`] over `n × k` panels. Every smoother sweep, grid
    /// transfer and residual uses the fused multi-RHS kernels, whose columns
    /// are bit-identical to the scalar ones — so column `j` of the batched
    /// cycle reproduces the scalar cycle on `r.col(j)` bit for bit.
    fn cycle_block(&self, l: usize, s: &mut [BlockLevelScratch]) {
        if l == self.levels.len() {
            let sl = &mut s[l];
            match &self.coarse {
                Coarsest::Direct(f) => {
                    // Stage each interleaved column through the contiguous
                    // buffer: gather, solve in place, scatter back.
                    for j in 0..sl.b.n_cols() {
                        sl.b.copy_col_into(j, &mut sl.col);
                        f.solve_in_place(&mut sl.col);
                        sl.x.copy_col_from(j, &sl.col);
                    }
                }
                Coarsest::SymmetricGs { inv_diag } => {
                    sl.x.fill(0.0);
                    let (b, x, sc) = (&sl.b, &mut sl.x, &mut sl.res);
                    sor_sweep_block(&self.coarse_a, inv_diag, b, x, sc, 1.0, true);
                    sor_sweep_block(&self.coarse_a, inv_diag, b, x, sc, 1.0, false);
                }
            }
            return;
        }
        let level = &self.levels[l];
        let nt = self.threads_for(level.a.n_rows());
        {
            let sl = &mut s[l];
            sl.x.fill(0.0);
            level.smooth_block(&self.options, nt, &sl.b, &mut sl.x, &mut sl.res, true);
            // res ← b − A·x
            level.a.spmm_threaded(&sl.x, &mut sl.res, nt);
            for (ri, bi) in sl.res.as_mut_slice().iter_mut().zip(sl.b.as_slice()) {
                *ri = bi - *ri;
            }
        }
        {
            let (this, deeper) = s.split_at_mut(l + 1);
            level.r.spmm_threaded(&this[l].res, &mut deeper[0].b, nt);
        }
        self.cycle_block(l + 1, s);
        {
            let (this, deeper) = s.split_at_mut(l + 1);
            let sl = &mut this[l];
            // x ← x + P·x_{l+1}
            level.p.spmm_threaded(&deeper[0].x, &mut sl.tmp, nt);
            for (xi, ti) in sl.x.as_mut_slice().iter_mut().zip(sl.tmp.as_slice()) {
                *xi += ti;
            }
            level.smooth_block(&self.options, nt, &sl.b, &mut sl.x, &mut sl.res, false);
        }
    }
}

impl Preconditioner for AmgPrecond {
    fn dim(&self) -> usize {
        self.level_matrix(0).n_rows()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let s = &mut *self.scratch.borrow_mut();
        s[0].b.copy_from_slice(r);
        self.cycle(0, s);
        z.copy_from_slice(&s[0].x);
    }

    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        let k = r.n_cols();
        let s = &mut *self.block_scratch.borrow_mut();
        if s.len() < self.levels.len() + 1 {
            s.resize_with(self.levels.len() + 1, BlockLevelScratch::default);
        }
        for (l, sl) in s.iter_mut().enumerate() {
            let n_l = if l == self.levels.len() {
                self.coarse_a.n_rows()
            } else {
                self.levels[l].a.n_rows()
            };
            sl.ensure(n_l, k);
        }
        s[0].b.copy_panel_from(r);
        self.cycle_block(0, s);
        z.copy_panel_from(&s[0].x);
    }
}

impl Level {
    /// Symbolic setup: strength graph, aggregation and the frozen patterns
    /// of `P`, `R = Pᵀ`, `A·P` and `A_c`. Returns `None` when coarsening
    /// stalls (the caller then solves this level directly); all values are
    /// left zeroed — the shared numeric phase fills them.
    fn symbolic(
        a: &Csr,
        options: &AmgOptions,
        level_index: usize,
    ) -> Result<Option<(Level, Csr)>, NumericsError> {
        let n = a.n_rows();
        // Galerkin operators have wider stencils with individually weaker
        // entries; halving θ per level (Vaněk's rule) keeps them coarsening.
        let theta = options.strength_theta * 0.5f64.powi(level_index as i32);
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "amg",
                    index: i,
                });
            }
        }
        // Strength-filtered pattern: diagonal + strong off-diagonals.
        let mut filtered_coo = Coo::new(n, n);
        let mut strong: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            filtered_coo.push_structural(i, i, 0.0);
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j != i && v.abs() >= theta * (diag[i] * diag[j]).sqrt() {
                    filtered_coo.push_structural(i, j, 0.0);
                    strong[i].push(j as u32);
                }
            }
        }
        let filtered = Csr::from_coo(&filtered_coo);

        // Greedy aggregation over the strong graph.
        const UNAGGREGATED: u32 = u32::MAX;
        let mut agg = vec![UNAGGREGATED; n];
        let mut n_coarse: u32 = 0;
        // Pass 1: seed aggregates where the whole strong neighbourhood is
        // still free.
        for i in 0..n {
            if agg[i] != UNAGGREGATED || strong[i].is_empty() {
                continue;
            }
            if strong[i].iter().all(|&j| agg[j as usize] == UNAGGREGATED) {
                agg[i] = n_coarse;
                for &j in &strong[i] {
                    agg[j as usize] = n_coarse;
                }
                n_coarse += 1;
            }
        }
        // Pass 2: attach leftovers to their most strongly connected
        // aggregate.
        for i in 0..n {
            if agg[i] != UNAGGREGATED {
                continue;
            }
            let mut best: Option<(u32, f64)> = None;
            for &j in &strong[i] {
                let aj = agg[j as usize];
                if aj == UNAGGREGATED {
                    continue;
                }
                let w = a.get(i, j as usize).abs();
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((aj, w));
                }
            }
            if let Some((aj, _)) = best {
                agg[i] = aj;
            }
        }
        // Pass 3: whatever is left (isolated nodes, leftover strong
        // clusters) seeds new aggregates with its still-free neighbours.
        for i in 0..n {
            if agg[i] != UNAGGREGATED {
                continue;
            }
            agg[i] = n_coarse;
            for &j in &strong[i] {
                if agg[j as usize] == UNAGGREGATED {
                    agg[j as usize] = n_coarse;
                }
            }
            n_coarse += 1;
        }
        let n_coarse = n_coarse as usize;
        if n_coarse == 0 || n_coarse as f64 > 0.8 * n as f64 {
            // Coarsening stalled — no useful hierarchy below this level.
            return Ok(None);
        }

        // P pattern: row i couples to the aggregates of its filtered row.
        let mut p_coo = Coo::new(n, n_coarse);
        for i in 0..n {
            let (cols, _) = filtered.row(i);
            for &j in cols {
                p_coo.push_structural(i, agg[j] as usize, 0.0);
            }
        }
        let p = Csr::from_coo(&p_coo);

        // R = Pᵀ pattern plus the value-slot map for the numeric transpose.
        let r = p.transpose();
        let mut next = vec![0usize; n_coarse];
        let mut off = 0usize;
        for (c, slot) in next.iter_mut().enumerate() {
            *slot = off;
            off += r.row(c).0.len();
        }
        let mut p_to_r = vec![0usize; p.nnz()];
        let mut k = 0usize;
        for i in 0..n {
            let (cols, _) = p.row(i);
            for &c in cols {
                p_to_r[k] = next[c];
                next[c] += 1;
                k += 1;
            }
        }

        // Filtered-entry → P-slot map for the linear-pass smoothing scatter.
        let mut f_to_p = vec![0usize; filtered.nnz()];
        let mut k = 0usize;
        for i in 0..n {
            let (fcols, _) = filtered.row(i);
            for &j in fcols {
                // The frozen P pattern covers every filtered row by
                // construction; a miss means the aggregation above is
                // inconsistent, which the caller degrades on like any
                // other setup failure.
                f_to_p[k] = p.slot(i, agg[j] as usize).ok_or(
                    NumericsError::FactorizationFailed {
                        kind: "amg",
                        index: i,
                    },
                )?;
                k += 1;
            }
        }

        // A·P pattern: union of P rows over each A row.
        let mut ap_coo = Coo::new(n, n_coarse);
        let mut marker = vec![usize::MAX; n_coarse];
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &kk in cols {
                let (pcols, _) = p.row(kk);
                for &c in pcols {
                    if marker[c] != i {
                        marker[c] = i;
                        ap_coo.push_structural(i, c, 0.0);
                    }
                }
            }
        }
        let ap = Csr::from_coo(&ap_coo);

        // A_c pattern: union of A·P rows over each R row.
        let mut ac_coo = Coo::new(n_coarse, n_coarse);
        marker.fill(usize::MAX);
        for bi in 0..n_coarse {
            let (rcols, _) = r.row(bi);
            for &i in rcols {
                let (apcols, _) = ap.row(i);
                for &c in apcols {
                    if marker[c] != bi {
                        marker[c] = bi;
                        ac_coo.push_structural(bi, c, 0.0);
                    }
                }
            }
        }
        let coarse_a = Csr::from_coo(&ac_coo);

        let level = Level {
            a: a.clone(),
            inv_diag: vec![0.0; n],
            filtered,
            n_coarse,
            p,
            r,
            p_to_r,
            f_to_p,
            ap,
            acc: vec![0.0; n_coarse],
        };
        Ok(Some((level, coarse_a)))
    }

    /// Numeric phase over the frozen skeleton: reciprocal diagonal, filtered
    /// values (weak entries lumped), smoothed `P`, `R = Pᵀ`, `A·P` and the
    /// Galerkin product written into `next_a`. Allocation-free.
    fn numeric(&mut self, options: &AmgOptions, next_a: &mut Csr) -> Result<(), NumericsError> {
        let n = self.a.n_rows();
        for i in 0..n {
            let d = self.a.get(i, i);
            if d <= 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "amg",
                    index: i,
                });
            }
            self.inv_diag[i] = 1.0 / d;
        }
        // Filtered values: copy entries present in the frozen strong
        // pattern, lump the rest onto the diagonal (preserves row sums, so
        // the smoothed basis still reproduces constants). The filtered
        // pattern is a subset of A's (both column-sorted), so one merge walk
        // per row does it — no per-entry lookups.
        for i in 0..n {
            let (acols, avals) = self.a.row(i);
            let (fcols, fvals) = self.filtered.row_mut(i);
            let mut lumped = 0.0;
            let mut diag_slot = usize::MAX;
            let mut fp = 0usize;
            for (&j, &v) in acols.iter().zip(avals) {
                if fp < fcols.len() && fcols[fp] == j {
                    fvals[fp] = v;
                    if j == i {
                        diag_slot = fp;
                    }
                    fp += 1;
                } else if j != i {
                    lumped += v;
                }
            }
            debug_assert_eq!(fp, fcols.len(), "filtered pattern not a subset of A");
            fvals[diag_slot] += lumped;
        }
        // Prolongation damping ω = c/λ̂ from the Gershgorin bound on D⁻¹A_F.
        let mut lambda_hat = 0.0f64;
        for i in 0..n {
            let (_, fvals) = self.filtered.row(i);
            let row_sum: f64 = fvals.iter().map(|v| v.abs()).sum();
            lambda_hat = lambda_hat.max(self.inv_diag[i] * row_sum);
        }
        let omega = if lambda_hat > 0.0 {
            options.prolongation_damping / lambda_hat
        } else {
            0.0
        };
        // P = (I − ω·D⁻¹·A_F)·T, scattered into the frozen pattern through
        // the precomputed filtered-entry → P-value slot map.
        self.p.zero_values();
        {
            let pvals = self.p.values_mut();
            let mut k = 0usize;
            for i in 0..n {
                let wi = omega * self.inv_diag[i];
                let (fcols, fvals) = self.filtered.row(i);
                for (&j, &fv) in fcols.iter().zip(fvals) {
                    let val = if j == i { 1.0 - wi * fv } else { -wi * fv };
                    pvals[self.f_to_p[k]] += val;
                    k += 1;
                }
            }
        }
        // Numeric transpose R = Pᵀ through the precomputed slot map.
        {
            let rvals = self.r.values_mut();
            let pvals = self.p.values();
            for (k, &slot) in self.p_to_r.iter().enumerate() {
                rvals[slot] = pvals[k];
            }
        }
        // A·P, one fine row at a time through the dense accumulator.
        for i in 0..n {
            let (acols, avals) = self.a.row(i);
            for (&kk, &av) in acols.iter().zip(avals) {
                let (pcols, pvals) = self.p.row(kk);
                for (&c, &pv) in pcols.iter().zip(pvals) {
                    self.acc[c] += av * pv;
                }
            }
            let (apcols, apvals) = self.ap.row_mut(i);
            for (&c, apv) in apcols.iter().zip(apvals.iter_mut()) {
                *apv = self.acc[c];
                self.acc[c] = 0.0;
            }
        }
        // A_c = R·(A·P), one coarse row at a time.
        for bi in 0..self.n_coarse {
            let (rcols, rvals) = self.r.row(bi);
            for (&i, &rv) in rcols.iter().zip(rvals) {
                let (apcols, apvals) = self.ap.row(i);
                for (&c, &apv) in apcols.iter().zip(apvals) {
                    self.acc[c] += rv * apv;
                }
            }
            let (accols, acvals) = next_a.row_mut(bi);
            for (&c, acv) in accols.iter().zip(acvals.iter_mut()) {
                *acv = self.acc[c];
                self.acc[c] = 0.0;
            }
        }
        Ok(())
    }

    /// One pre- (`forward = true`) or post-smoothing phase on this level.
    /// `spmv` is Jacobi scratch of the same length as `x`.
    fn smooth(
        &self,
        options: &AmgOptions,
        n_threads: usize,
        b: &[f64],
        x: &mut [f64],
        spmv: &mut [f64],
        forward: bool,
    ) {
        match options.smoother {
            AmgSmoother::Jacobi { omega, sweeps } => {
                for _ in 0..sweeps {
                    self.a.spmv_threaded(x, spmv, n_threads);
                    for i in 0..x.len() {
                        x[i] += omega * self.inv_diag[i] * (b[i] - spmv[i]);
                    }
                }
            }
            AmgSmoother::Ssor { omega, sweeps } => {
                for _ in 0..sweeps {
                    sor_sweep(&self.a, &self.inv_diag, b, x, omega, forward);
                }
            }
        }
    }

    /// Batched mirror of [`Level::smooth`] over `n × k` panels; each column
    /// runs the scalar sweep's floating-point sequence exactly.
    fn smooth_block(
        &self,
        options: &AmgOptions,
        n_threads: usize,
        b: &MultiVec,
        x: &mut MultiVec,
        spmm: &mut MultiVec,
        forward: bool,
    ) {
        let k = x.n_cols();
        if k == 0 {
            return;
        }
        match options.smoother {
            AmgSmoother::Jacobi { omega, sweeps } => {
                for _ in 0..sweeps {
                    self.a.spmm_threaded(x, spmm, n_threads);
                    for ((xrow, (brow, srow)), &d) in x
                        .as_mut_slice()
                        .chunks_exact_mut(k)
                        .zip(b.as_slice().chunks_exact(k).zip(spmm.as_slice().chunks_exact(k)))
                        .zip(&self.inv_diag)
                    {
                        for (xv, (bv, sv)) in xrow.iter_mut().zip(brow.iter().zip(srow)) {
                            *xv += omega * d * (bv - sv);
                        }
                    }
                }
            }
            AmgSmoother::Ssor { omega, sweeps } => {
                for _ in 0..sweeps {
                    sor_sweep_block(&self.a, &self.inv_diag, b, x, spmm, omega, forward);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{pcg, CgOptions};
    use crate::vector;

    fn lap3d(nx: usize, diag_boost: f64) -> Csr {
        let n = nx * nx * nx;
        let idx = |i: usize, j: usize, k: usize| (i * nx + j) * nx + k;
        let mut coo = Coo::new(n, n);
        for i in 0..nx {
            for j in 0..nx {
                for k in 0..nx {
                    let c = idx(i, j, k);
                    coo.push(c, c, 6.0 + diag_boost);
                    let mut link = |o: usize| {
                        coo.push(c, o, -1.0);
                    };
                    if i > 0 {
                        link(idx(i - 1, j, k));
                    }
                    if i + 1 < nx {
                        link(idx(i + 1, j, k));
                    }
                    if j > 0 {
                        link(idx(i, j - 1, k));
                    }
                    if j + 1 < nx {
                        link(idx(i, j + 1, k));
                    }
                    if k > 0 {
                        link(idx(i, j, k - 1));
                    }
                    if k + 1 < nx {
                        link(idx(i, j, k + 1));
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn hierarchy_coarsens_and_covers_all_nodes() {
        let a = lap3d(8, 0.5);
        let m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        assert!(m.n_levels() >= 2, "expected a real hierarchy");
        assert_eq!(m.level_dim(0), a.n_rows());
        for l in 1..m.n_levels() {
            assert!(
                m.level_dim(l) < m.level_dim(l - 1),
                "level {l} did not coarsen"
            );
        }
        assert!(m.coarse_dim() <= AmgOptions::default().coarse_max);
        assert!(m.operator_complexity() >= 1.0);
        assert!(m.operator_complexity() < 3.0, "{}", m.operator_complexity());
    }

    #[test]
    fn small_matrix_is_solved_exactly() {
        // n <= coarse_max: the preconditioner degenerates to a direct solve.
        let a = lap3d(3, 0.5);
        let m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        assert_eq!(m.n_levels(), 1);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 4.0).collect();
        let mut z = vec![0.0; n];
        m.apply(&b, &mut z);
        let x = a.to_dense().solve(&b).unwrap();
        for i in 0..n {
            assert!((z[i] - x[i]).abs() < 1e-9, "{} vs {}", z[i], x[i]);
        }
    }

    #[test]
    fn galerkin_levels_stay_spd_shaped() {
        let a = lap3d(7, 0.2);
        let m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        for l in 1..m.n_levels() {
            let ac = m.level_matrix(l);
            assert!(
                ac.is_symmetric(1e-10 * ac.norm_inf()),
                "level {l} not symmetric"
            );
            for i in 0..ac.n_rows() {
                assert!(ac.get(i, i) > 0.0, "level {l} diagonal {i} not positive");
            }
        }
    }

    #[test]
    fn vcycle_is_symmetric_and_positive() {
        // r1ᵀ·M⁻¹·r2 == r2ᵀ·M⁻¹·r1 and rᵀ·M⁻¹·r > 0 — required for PCG.
        let a = lap3d(6, 0.3);
        let n = a.n_rows();
        for smoother in [
            AmgSmoother::Jacobi {
                omega: 2.0 / 3.0,
                sweeps: 1,
            },
            AmgSmoother::Ssor {
                omega: 1.0,
                sweeps: 1,
            },
            AmgSmoother::Ssor {
                omega: 1.3,
                sweeps: 2,
            },
        ] {
            let opts = AmgOptions {
                smoother,
                coarse_max: 16,
                ..AmgOptions::default()
            };
            let m = AmgPrecond::new(&a, opts).unwrap();
            let r1: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
            let r2: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
            let mut z1 = vec![0.0; n];
            let mut z2 = vec![0.0; n];
            m.apply(&r1, &mut z1);
            m.apply(&r2, &mut z2);
            let d12 = vector::dot(&r1, &z2);
            let d21 = vector::dot(&r2, &z1);
            let scale = d12.abs().max(d21.abs()).max(1.0);
            assert!(
                (d12 - d21).abs() < 1e-10 * scale,
                "{smoother:?}: {d12} vs {d21}"
            );
            assert!(vector::dot(&r1, &z1) > 0.0, "{smoother:?}: not positive");
        }
    }

    #[test]
    fn pcg_with_amg_beats_plain_cg() {
        let a = lap3d(10, 0.0);
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let opts = CgOptions::with_tol(1e-10);
        let m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        let mut x_amg = vec![0.0; n];
        let rep_amg = pcg(&a, &b, &mut x_amg, &m, &opts).unwrap();
        assert!(rep_amg.converged);
        let mut x_cg = vec![0.0; n];
        let rep_cg = crate::solvers::cg(&a, &b, &mut x_cg, &opts).unwrap();
        assert!(rep_cg.converged);
        assert!(
            rep_amg.iterations * 2 < rep_cg.iterations,
            "amg {} vs cg {}",
            rep_amg.iterations,
            rep_cg.iterations
        );
        for i in 0..n {
            assert!((x_amg[i] - x_cg[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn stalled_coarsening_falls_back_to_sgs() {
        // A heavily mass-dominated matrix: every off-diagonal is weak, so
        // aggregation stalls and the preconditioner must degrade to
        // symmetric Gauss–Seidel instead of a huge dense factorization.
        let mut a = lap3d(6, 0.0);
        let n = a.n_rows();
        let boost: Vec<f64> = vec![1000.0; n];
        a.add_diag(&boost);
        let m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        assert_eq!(m.n_levels(), 1, "no hierarchy expected");
        assert_eq!(m.coarse_dim(), n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; n];
        let rep = pcg(&a, &b, &mut x, &m, &CgOptions::with_tol(1e-10)).unwrap();
        assert!(rep.converged);
        assert!(rep.iterations <= 10, "sgs fallback too weak: {}", rep.iterations);
    }

    #[test]
    fn threaded_apply_is_bit_identical_to_serial() {
        let a = lap3d(11, 0.1); // 1331 DoFs: above the threading threshold
        let n = a.n_rows();
        let serial = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        let threaded = AmgPrecond::new(
            &a,
            AmgOptions {
                n_threads: 4,
                ..AmgOptions::default()
            },
        )
        .unwrap();
        let r: Vec<f64> = (0..n).map(|i| ((i * 17 % 23) as f64) - 11.0).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        serial.apply(&r, &mut z1);
        threaded.apply(&r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn apply_block_is_bit_identical_to_scalar_apply() {
        // Both smoothers, both coarsest solvers (Direct via the default
        // hierarchy, threaded kernels via n_threads = 4), narrow and wide
        // interleaved panels including an odd width.
        let a = lap3d(11, 0.1);
        let n = a.n_rows();
        for opts in [
            AmgOptions::default(),
            AmgOptions {
                n_threads: 4,
                smoother: AmgSmoother::Jacobi {
                    omega: 0.7,
                    sweeps: 1,
                },
                ..AmgOptions::default()
            },
        ] {
            let m = AmgPrecond::new(&a, opts).unwrap();
            for k in [1usize, 3, 33] {
                let mut r = MultiVec::zeros(n, k);
                for j in 0..k {
                    for i in 0..n {
                        r.set(i, j, (((i * 17 + j * 5) % 23) as f64) - 11.0);
                    }
                }
                let mut z = MultiVec::zeros(n, k);
                z.fill(f64::NAN);
                m.apply_block(&r, &mut z);
                for j in 0..k {
                    let mut z_ref = vec![0.0; n];
                    m.apply(&r.col_vec(j), &mut z_ref);
                    assert_eq!(z.col_vec(j), z_ref, "k = {k}, column {j}");
                }
            }
        }
    }

    #[test]
    fn refresh_equals_rebuild_exactly_under_scaling() {
        // A power-of-two scaling leaves every float comparison of the
        // symbolic phase (strength tests, aggregation tie-breaks) exactly
        // invariant, so a fresh build chooses the identical skeleton and
        // refresh must match it bit for bit (shared numeric phase).
        let a = lap3d(7, 0.4);
        let mut m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        let mut a2 = a.clone();
        a2.scale(2.0);
        m.refresh(&a2).unwrap();
        let fresh = AmgPrecond::new(&a2, AmgOptions::default()).unwrap();
        let n = a.n_rows();
        let r: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        m.apply(&r, &mut z1);
        fresh.apply(&r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn refresh_tracks_general_value_drift() {
        // Non-uniform drift may legitimately flip aggregation tie-breaks in
        // a from-scratch rebuild, so equality is up to the preconditioner
        // quality: the refreshed hierarchy must stay symmetric and agree
        // with the rebuilt one to a few percent, and PCG must converge
        // equally well with either.
        let a = lap3d(7, 0.4);
        let mut m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        let mut a2 = a.clone();
        for (k, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 1e-3 * (k % 7) as f64;
        }
        m.refresh(&a2).unwrap();
        let fresh = AmgPrecond::new(&a2, AmgOptions::default()).unwrap();
        let n = a.n_rows();
        let r: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        m.apply(&r, &mut z1);
        fresh.apply(&r, &mut z2);
        let scale = vector::norm_inf(&z2).max(1e-30);
        assert!(
            vector::max_abs_diff(&z1, &z2) < 0.05 * scale,
            "refreshed and rebuilt preconditioners diverged"
        );
        let b: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let opts = CgOptions::with_tol(1e-10);
        let mut x1 = vec![0.0; n];
        let rep1 = pcg(&a2, &b, &mut x1, &m, &opts).unwrap();
        let mut x2 = vec![0.0; n];
        let rep2 = pcg(&a2, &b, &mut x2, &fresh, &opts).unwrap();
        assert!(rep1.converged && rep2.converged);
        assert!(
            rep1.iterations <= rep2.iterations + 3,
            "refreshed hierarchy lost quality: {} vs {}",
            rep1.iterations,
            rep2.iterations
        );
        assert!(vector::max_abs_diff(&x1, &x2) < 1e-7);
    }

    #[test]
    fn refresh_rejects_pattern_change() {
        let a = lap3d(5, 0.2);
        let mut m = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        assert!(matches!(
            m.refresh(&lap3d(6, 0.2)),
            Err(NumericsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn rejects_invalid_smoother_parameters() {
        let a = lap3d(4, 0.3);
        for smoother in [
            AmgSmoother::Ssor { omega: 0.0, sweeps: 1 },
            AmgSmoother::Ssor { omega: 2.0, sweeps: 1 },
            AmgSmoother::Ssor { omega: 1.0, sweeps: 0 },
            AmgSmoother::Jacobi { omega: 0.0, sweeps: 1 },
            AmgSmoother::Jacobi { omega: f64::NAN, sweeps: 1 },
            AmgSmoother::Jacobi { omega: 0.7, sweeps: 0 },
        ] {
            let opts = AmgOptions { smoother, ..AmgOptions::default() };
            assert!(
                matches!(AmgPrecond::new(&a, opts), Err(NumericsError::InvalidArgument(_))),
                "{smoother:?} accepted"
            );
        }
    }

    #[test]
    fn rejects_bad_input() {
        let coo = Coo::new(2, 3);
        assert!(AmgPrecond::new(&Csr::from_coo(&coo), AmgOptions::default()).is_err());
        // Non-positive diagonal.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        assert!(AmgPrecond::new(
            &Csr::from_coo(&coo),
            AmgOptions {
                coarse_max: 1,
                ..AmgOptions::default()
            }
        )
        .is_err());
    }
}
