//! Restarted GMRES for general (non-symmetric) systems.
//!
//! The coupled FIT systems are SPD after Dirichlet elimination, so CG is the
//! workhorse — but the electroquasistatic extension (paper §II-A: "a
//! generalization to electroquasistatics is straightforward") and
//! Newton-linearized radiation produce mildly non-symmetric operators, for
//! which `gmres` is the robust choice alongside BiCGStab.

use crate::error::NumericsError;
use crate::solvers::workspace::GmresWorkspace;
use crate::solvers::{Preconditioner, SolveReport};
use crate::sparse::LinOp;
use crate::vector;

/// Options for [`gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub rel_tol: f64,
    /// Absolute residual tolerance (used when `b = 0`).
    pub abs_tol: f64,
    /// Krylov subspace dimension before a restart.
    pub restart: usize,
    /// Maximum number of outer (restart) cycles.
    pub max_restarts: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            rel_tol: 1e-10,
            abs_tol: 1e-14,
            restart: 50,
            max_restarts: 200,
        }
    }
}

/// Solves `A x = b` by restarted GMRES(m) with right preconditioning.
///
/// `x` holds the initial guess on entry and the solution on return. The
/// residual reported is the true residual `‖b − A x‖₂` recomputed at exit.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] if `b`/`x` do not match `a.dim()`.
/// * [`NumericsError::InvalidArgument`] if `restart == 0`.
/// * [`NumericsError::NotConverged`] if the tolerance is not met within
///   `max_restarts` cycles (the best iterate found is left in `x`).
///
/// # Example
///
/// ```
/// use etherm_numerics::sparse::{Coo, Csr};
/// use etherm_numerics::solvers::{gmres, GmresOptions, IdentityPrecond};
///
/// # fn main() -> Result<(), etherm_numerics::NumericsError> {
/// // Non-symmetric convection-diffusion-like tridiagonal system.
/// let n = 32;
/// let mut coo = Coo::new(n, n);
/// for i in 0..n {
///     coo.push(i, i, 2.5);
///     if i + 1 < n {
///         coo.push(i, i + 1, -1.5);
///         coo.push(i + 1, i, -0.5);
///     }
/// }
/// let a = Csr::from_coo(&coo);
/// let b = vec![1.0; n];
/// let mut x = vec![0.0; n];
/// let report = gmres(&a, &b, &mut x, &IdentityPrecond::new(n), &GmresOptions::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn gmres<A: LinOp, P: Preconditioner>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    opts: &GmresOptions,
) -> Result<SolveReport, NumericsError> {
    gmres_with(a, b, x, precond, opts, &mut GmresWorkspace::new())
}

/// [`gmres`] with caller-owned scratch buffers.
///
/// Reusing the same [`GmresWorkspace`] across solves makes the iteration
/// heap-allocation-free after the first call (the Krylov basis, Hessenberg
/// and rotation buffers are grown once and then recycled) — the same
/// workspace treatment as [`pcg_with`](crate::solvers::pcg_with) and
/// [`bicgstab_with`](crate::solvers::bicgstab_with).
///
/// # Errors
///
/// See [`gmres`].
pub fn gmres_with<A: LinOp, P: Preconditioner>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    opts: &GmresOptions,
    ws: &mut GmresWorkspace,
) -> Result<SolveReport, NumericsError> {
    let n = a.dim();
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "gmres rhs",
            expected: n,
            found: b.len(),
        });
    }
    if x.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "gmres solution",
            expected: n,
            found: x.len(),
        });
    }
    if opts.restart == 0 {
        return Err(NumericsError::InvalidArgument(
            "gmres: restart dimension must be positive".into(),
        ));
    }
    let m = opts.restart.min(n.max(1));
    let b_norm = vector::norm2(b);
    if !b_norm.is_finite() {
        return Err(NumericsError::NonFinite {
            solver: "gmres",
            detail: "right-hand side",
        });
    }
    let target = (opts.rel_tol * b_norm).max(opts.abs_tol);

    let mut total_iters = 0usize;
    ws.ensure(n, m);
    // Split the workspace into disjoint field borrows; every vector is
    // sliced to the current dimension (buffers never shrink).
    let GmresWorkspace {
        r,
        w,
        z,
        update,
        basis,
        hess,
        cs,
        sn,
        g,
        y,
    } = ws;
    let r = &mut r[..n];
    let w = &mut w[..n];
    let z = &mut z[..n];
    let update = &mut update[..n];

    for _cycle in 0..opts.max_restarts {
        // r = b − A x
        a.apply_into(x, r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let beta = vector::norm2(r);
        if !beta.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "gmres",
                detail: "residual",
            });
        }
        if beta <= target {
            return Ok(SolveReport {
                converged: true,
                iterations: total_iters,
                residual: beta,
            });
        }
        let v0 = &mut basis[0][..n];
        v0.copy_from_slice(r);
        vector::scale(1.0 / beta, v0);
        g[..m + 1].fill(0.0);
        g[0] = beta;
        hess[..(m + 1) * m].fill(0.0);

        let mut k_used = 0usize;
        let mut inner_converged = false;
        for k in 0..m {
            // w = A M⁻¹ v_k  (right preconditioning).
            precond.apply(&basis[k][..n], z);
            a.apply_into(z, w);
            total_iters += 1;
            // Modified Gram–Schmidt.
            for j in 0..=k {
                let h = vector::dot(w, &basis[j][..n]);
                hess[j * m + k] = h;
                vector::axpy(-h, &basis[j][..n], w);
            }
            let h_next = vector::norm2(w);
            if !h_next.is_finite() {
                return Err(NumericsError::NonFinite {
                    solver: "gmres",
                    detail: "Krylov basis vector",
                });
            }
            hess[(k + 1) * m + k] = h_next;
            // Apply accumulated Givens rotations to the new column.
            for j in 0..k {
                let temp = cs[j] * hess[j * m + k] + sn[j] * hess[(j + 1) * m + k];
                hess[(j + 1) * m + k] = -sn[j] * hess[j * m + k] + cs[j] * hess[(j + 1) * m + k];
                hess[j * m + k] = temp;
            }
            // New rotation annihilating h_{k+1,k}.
            let (c, s) = givens(hess[k * m + k], hess[(k + 1) * m + k]);
            cs[k] = c;
            sn[k] = s;
            hess[k * m + k] = c * hess[k * m + k] + s * hess[(k + 1) * m + k];
            hess[(k + 1) * m + k] = 0.0;
            g[k + 1] = -s * g[k];
            g[k] *= c;
            k_used = k + 1;
            let res_est = g[k + 1].abs();
            if res_est <= target || h_next == 0.0 {
                inner_converged = true;
                break;
            }
            let v_next = &mut basis[k + 1][..n];
            v_next.copy_from_slice(w);
            vector::scale(1.0 / h_next, v_next);
        }

        // Back-substitute y from the triangularized Hessenberg, then
        // x += M⁻¹ (V_k y).
        for i in (0..k_used).rev() {
            let mut sum = g[i];
            for j in (i + 1)..k_used {
                sum -= hess[i * m + j] * y[j];
            }
            let diag = hess[i * m + i];
            if diag == 0.0 {
                return Err(NumericsError::Breakdown {
                    solver: "gmres",
                    detail: "singular Hessenberg diagonal",
                });
            }
            y[i] = sum / diag;
        }
        update.fill(0.0);
        for (j, yj) in y[..k_used].iter().enumerate() {
            vector::axpy(*yj, &basis[j][..n], update);
        }
        precond.apply(update, z);
        for i in 0..n {
            x[i] += z[i];
        }

        if inner_converged {
            a.apply_into(x, r);
            for i in 0..n {
                r[i] = b[i] - r[i];
            }
            let res = vector::norm2(r);
            if res <= target * 10.0 {
                return Ok(SolveReport {
                    converged: true,
                    iterations: total_iters,
                    residual: res,
                });
            }
        }
    }

    a.apply_into(x, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    Err(NumericsError::NotConverged {
        solver: "gmres",
        iterations: total_iters,
        residual: vector::norm2(r),
    })
}

/// Stable Givens rotation coefficients `(c, s)` zeroing `b` in `[a; b]`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{IdentityPrecond, JacobiPrecond};
    use crate::sparse::{Coo, Csr};

    fn convection_diffusion(n: usize, peclet: f64) -> Csr {
        // -u'' + p u' on a 1D grid: non-symmetric tridiagonal.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0 + 0.5 * peclet);
                coo.push(i + 1, i, -1.0 - 0.5 * peclet);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn solves_identity_trivially() {
        let mut coo = Coo::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 1.0);
        }
        let a = Csr::from_coo(&coo);
        let b = [3.0, -1.0, 2.0];
        let mut x = [0.0; 3];
        let r = gmres(&a, &b, &mut x, &IdentityPrecond::new(3), &GmresOptions::default()).unwrap();
        assert!(r.converged);
        for i in 0..3 {
            assert!((x[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let n = 64;
        let a = convection_diffusion(n, 0.8);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        a.apply(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let r = gmres(&a, &b, &mut x, &IdentityPrecond::new(n), &GmresOptions::default()).unwrap();
        assert!(r.converged, "{r}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn restart_smaller_than_dimension_still_converges() {
        let n = 80;
        let a = convection_diffusion(n, 0.4);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = GmresOptions {
            restart: 10,
            max_restarts: 500,
            ..GmresOptions::default()
        };
        let r = gmres(&a, &b, &mut x, &IdentityPrecond::new(n), &opts).unwrap();
        assert!(r.converged);
        // Check the true residual independently.
        let mut ax = vec![0.0; n];
        a.apply(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(ai, bi)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-8, "true residual {res}");
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        let n = 128;
        // Badly scaled diagonal.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            let s = 1.0 + (i % 7) as f64 * 100.0;
            coo.push(i, i, 2.0 * s);
            if i + 1 < n {
                coo.push(i, i + 1, -0.9 * s);
                coo.push(i + 1, i, -1.1 * s);
            }
        }
        let a = Csr::from_coo(&coo);
        let b = vec![1.0; n];
        let opts = GmresOptions {
            restart: 20,
            ..GmresOptions::default()
        };
        let mut x0 = vec![0.0; n];
        let plain = gmres(&a, &b, &mut x0, &IdentityPrecond::new(n), &opts).unwrap();
        let jac = JacobiPrecond::new(&a).unwrap();
        let mut x1 = vec![0.0; n];
        let pre = gmres(&a, &b, &mut x1, &jac, &opts).unwrap();
        assert!(pre.converged && plain.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "jacobi {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn agrees_with_spd_reference() {
        // On an SPD matrix GMRES must match the CG answer.
        let n = 40;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let a = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut xg = vec![0.0; n];
        gmres(&a, &b, &mut xg, &IdentityPrecond::new(n), &GmresOptions::default()).unwrap();
        let mut xc = vec![0.0; n];
        crate::solvers::cg(&a, &b, &mut xc, &crate::solvers::CgOptions::default()).unwrap();
        for i in 0..n {
            assert!((xg[i] - xc[i]).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = Csr::from_coo(&coo);
        let mut x = [0.0; 2];
        assert!(matches!(
            gmres(&a, &[1.0], &mut x, &IdentityPrecond::new(2), &GmresOptions::default()),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        let mut x1 = [0.0; 1];
        assert!(gmres(
            &a,
            &[1.0, 1.0],
            &mut x1,
            &IdentityPrecond::new(2),
            &GmresOptions::default()
        )
        .is_err());
        let opts = GmresOptions {
            restart: 0,
            ..GmresOptions::default()
        };
        let mut x2 = [0.0; 2];
        assert!(gmres(&a, &[1.0, 1.0], &mut x2, &IdentityPrecond::new(2), &opts).is_err());
    }

    #[test]
    fn reused_workspace_reproduces_fresh_solve() {
        let n = 64;
        let a = convection_diffusion(n, 0.6);
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
        let opts = GmresOptions {
            restart: 15,
            ..GmresOptions::default()
        };
        let mut x_fresh = vec![0.0; n];
        let rep_fresh =
            gmres(&a, &b, &mut x_fresh, &IdentityPrecond::new(n), &opts).unwrap();
        // Solve a different system first to dirty the workspace, then the
        // same system again: the result must match the fresh solve exactly.
        let mut ws = GmresWorkspace::new();
        let b2 = vec![1.0; n];
        let mut x_other = vec![0.0; n];
        gmres_with(&a, &b2, &mut x_other, &IdentityPrecond::new(n), &opts, &mut ws).unwrap();
        let mut x_reused = vec![0.0; n];
        let rep_reused =
            gmres_with(&a, &b, &mut x_reused, &IdentityPrecond::new(n), &opts, &mut ws).unwrap();
        assert!(rep_fresh.converged && rep_reused.converged);
        assert_eq!(rep_fresh.iterations, rep_reused.iterations);
        assert_eq!(x_fresh, x_reused);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let n = 16;
        let a = convection_diffusion(n, 0.3);
        let b = vec![2.0; n];
        let mut x = vec![0.0; n];
        gmres(&a, &b, &mut x, &IdentityPrecond::new(n), &GmresOptions::default()).unwrap();
        let mut x2 = x.clone();
        let r = gmres(&a, &b, &mut x2, &IdentityPrecond::new(n), &GmresOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0, "warm start should need no iterations");
    }
}
