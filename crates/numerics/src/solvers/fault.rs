//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] names exact `(solve, apply)` trigger points at which a
//! [`FaultyLinOp`] wrapper corrupts the output of the wrapped operator —
//! NaN/Inf contamination, a sign flip that breaks positive definiteness, or
//! a persistent noise floor that stalls the residual above any reasonable
//! tolerance. The plan is driven by a [`FaultInjector`] holding interior-
//! mutable counters, so injection composes with the `&self` [`LinOp`]
//! contract and is *bit-deterministic*: the same plan on the same solve
//! sequence fires the same faults, regardless of threading above the solver
//! (the injector itself lives on exactly one solver thread).
//!
//! Point faults are **one-shot**: each [`Fault`] fires at most once per run,
//! so a retry of the corrupted solve from a clean state sees the pristine
//! operator — exactly the transient-fault model recovery ladders are built
//! for. [`FaultPlan::saturating`] instead corrupts *every* apply, modelling
//! an unrecoverable sample for quarantine tests. When no plan is installed
//! the wrapper is never constructed, so the clean path pays nothing.

use crate::sparse::LinOp;
use std::cell::Cell;

/// What a triggered fault does to the operator output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Poke a NaN into one output entry (exercises non-finite guards).
    Nan,
    /// Poke an infinity into one output entry.
    Inf,
    /// Negate the output once: `pᵀAp` turns negative, CG reports a
    /// breakdown.
    Breakdown,
    /// From the trigger until the end of the current attempt, add a small
    /// rotating perturbation (`≈1e-7·‖y‖∞`) to the output: the recurrence
    /// residual floors above tight tolerances and the solver runs into its
    /// iteration cap without breaking positive definiteness.
    Stall,
    /// Make the next preconditioner refresh at this solve index report
    /// failure (the apply index is ignored), forcing the rebuild path.
    RefreshFail,
}

/// One deterministic trigger point: the `apply`-th operator application
/// (0-based) of the `solve`-th linear solve (0-based, counted per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Solve index within the run (each `solve_reduced`-level linear solve
    /// increments it; retries of a failed solve do *not*).
    pub solve: usize,
    /// Operator application index within one solve attempt.
    pub apply: usize,
    /// The corruption applied at the trigger.
    pub kind: FaultKind,
}

/// A deterministic set of injection points, installed per run (or per
/// ensemble sample).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// One-shot point faults.
    pub faults: Vec<Fault>,
    /// When set, *every* operator application is corrupted with this kind
    /// and nothing is ever consumed — an unrecoverable fault.
    pub saturate: Option<FaultKind>,
}

impl FaultPlan {
    /// A plan from explicit one-shot faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan {
            faults,
            saturate: None,
        }
    }

    /// A plan corrupting every apply with `kind` — never recoverable by
    /// retry, the canonical "poisoned sample" of quarantine tests.
    pub fn saturating(kind: FaultKind) -> Self {
        FaultPlan {
            faults: Vec::new(),
            saturate: Some(kind),
        }
    }

    /// A seeded pseudo-random plan: `n_faults` one-shot faults with solve
    /// indices below `max_solve` and apply indices below `max_apply`,
    /// drawn from a SplitMix64 stream. Identical seeds give identical
    /// plans on every platform.
    pub fn seeded(seed: u64, n_faults: usize, max_solve: usize, max_apply: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the standard 64-bit finalizer-based generator.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let kinds = [
            FaultKind::Nan,
            FaultKind::Inf,
            FaultKind::Breakdown,
            FaultKind::Stall,
            FaultKind::RefreshFail,
        ];
        let faults = (0..n_faults)
            .map(|_| Fault {
                solve: (next() % max_solve.max(1) as u64) as usize,
                apply: (next() % max_apply.max(1) as u64) as usize,
                kind: kinds[(next() % kinds.len() as u64) as usize],
            })
            .collect();
        FaultPlan::new(faults)
    }

    /// Whether the plan can never fire anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.saturate.is_none()
    }
}

/// Executes a [`FaultPlan`] over a sequence of solves: tracks the current
/// solve index, the apply index within the current attempt, and which
/// one-shot faults have already fired. All state is interior-mutable so the
/// injector can be shared with a `&self`-based [`LinOp`] wrapper.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    consumed: Vec<Cell<bool>>,
    /// Solve index assigned to the *current* solve by `begin_solve`.
    cur_solve: Cell<usize>,
    /// Solve index the next `begin_solve` will assign.
    next_solve: Cell<usize>,
    /// Applies within the current attempt.
    applies: Cell<usize>,
    /// Stall noise active for the remainder of the current attempt.
    stall: Cell<bool>,
    /// Largest `‖y‖∞` seen in the current attempt: the *absolute* scale of
    /// the stall noise. Krylov directions shrink as the solve converges, so
    /// noise relative to the current vector would shrink with them and let
    /// the solve through; an absolute floor pinned to the attempt's largest
    /// output keeps the residual from ever reaching tight tolerances.
    stall_scale: Cell<f64>,
    /// Total faults fired since the last `begin_run` (diagnostics).
    fired: Cell<usize>,
}

impl FaultInjector {
    /// An injector at the start of a run.
    pub fn new(plan: FaultPlan) -> Self {
        let consumed = plan.faults.iter().map(|_| Cell::new(false)).collect();
        FaultInjector {
            plan,
            consumed,
            cur_solve: Cell::new(0),
            next_solve: Cell::new(0),
            applies: Cell::new(0),
            stall: Cell::new(false),
            stall_scale: Cell::new(0.0),
            fired: Cell::new(0),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rewinds to the start of a run: solve counter to zero, all one-shot
    /// faults re-armed. Called by the session at every run entry so fault
    /// positions are counted per run, not per session lifetime.
    pub fn begin_run(&self) {
        self.next_solve.set(0);
        self.cur_solve.set(0);
        self.applies.set(0);
        self.stall.set(false);
        self.fired.set(0);
        for c in &self.consumed {
            c.set(false);
        }
    }

    /// Advances to the next solve and returns whether any fault can still
    /// fire during it (callers skip the wrapper entirely otherwise).
    pub fn begin_solve(&self) -> bool {
        let s = self.next_solve.get();
        self.cur_solve.set(s);
        self.next_solve.set(s + 1);
        self.begin_attempt();
        self.plan.saturate.is_some()
            || self
                .plan
                .faults
                .iter()
                .zip(&self.consumed)
                .any(|(f, c)| f.solve == s && f.kind != FaultKind::RefreshFail && !c.get())
    }

    /// Rewinds the within-attempt state for a retry of the current solve
    /// (the solve index is unchanged; consumed faults stay consumed).
    pub fn begin_attempt(&self) {
        self.applies.set(0);
        self.stall.set(false);
        self.stall_scale.set(0.0);
    }

    /// Consumes a pending [`FaultKind::RefreshFail`] for the current solve,
    /// returning whether the refresh should be failed.
    pub fn refresh_fault(&self) -> bool {
        let s = self.cur_solve.get();
        for (f, c) in self.plan.faults.iter().zip(&self.consumed) {
            if f.kind == FaultKind::RefreshFail && f.solve == s && !c.get() {
                c.set(true);
                self.fired.set(self.fired.get() + 1);
                return true;
            }
        }
        false
    }

    /// Total faults fired since the last [`FaultInjector::begin_run`].
    pub fn fired(&self) -> usize {
        self.fired.get()
    }

    /// Corrupts `y` according to the plan; called after every wrapped
    /// operator application.
    fn after_apply(&self, y: &mut [f64]) {
        let k = self.applies.get();
        self.applies.set(k + 1);
        if let Some(kind) = self.plan.saturate {
            corrupt(kind, y, k, &self.stall);
        }
        let s = self.cur_solve.get();
        for (f, c) in self.plan.faults.iter().zip(&self.consumed) {
            if f.kind != FaultKind::RefreshFail && f.solve == s && f.apply == k && !c.get() {
                c.set(true);
                self.fired.set(self.fired.get() + 1);
                corrupt(f.kind, y, k, &self.stall);
                break;
            }
        }
        if self.stall.get() && !y.is_empty() {
            let cur = y.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
            let scale = self.stall_scale.get().max(cur);
            self.stall_scale.set(scale);
            y[k % y.len()] += 1e-7 * scale.max(1e-300);
        }
    }
}

fn corrupt(kind: FaultKind, y: &mut [f64], apply: usize, stall: &Cell<bool>) {
    if y.is_empty() {
        return;
    }
    match kind {
        FaultKind::Nan => y[apply % y.len()] = f64::NAN,
        FaultKind::Inf => y[apply % y.len()] = f64::INFINITY,
        FaultKind::Breakdown => {
            for v in y.iter_mut() {
                *v = -*v;
            }
        }
        FaultKind::Stall => stall.set(true),
        // Refresh faults never corrupt operator output.
        FaultKind::RefreshFail => {}
    }
}

/// A [`LinOp`] that forwards to `inner` and lets `injector` corrupt the
/// output per its plan. Constructed only for solves the plan targets, so
/// fault-free solves never see the wrapper.
#[derive(Debug)]
pub struct FaultyLinOp<'a, A: ?Sized> {
    inner: &'a A,
    injector: &'a FaultInjector,
}

impl<'a, A: LinOp + ?Sized> FaultyLinOp<'a, A> {
    /// Wraps `inner` under `injector`'s plan.
    pub fn new(inner: &'a A, injector: &'a FaultInjector) -> Self {
        FaultyLinOp { inner, injector }
    }
}

impl<A: LinOp + ?Sized> LinOp for FaultyLinOp<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        self.injector.after_apply(y);
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_into(x, y);
        self.injector.after_apply(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NumericsError;
    use crate::solvers::{cg, CgOptions};
    use crate::sparse::{Coo, Csr};

    fn lap1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    fn solve_faulty(
        a: &Csr,
        inj: &FaultInjector,
        opts: &CgOptions,
    ) -> Result<crate::solvers::SolveReport, NumericsError> {
        let n = a.n_rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        if inj.begin_solve() {
            cg(&FaultyLinOp::new(a, inj), &b, &mut x, opts)
        } else {
            cg(a, &b, &mut x, opts)
        }
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let p1 = FaultPlan::seeded(42, 8, 100, 10);
        let p2 = FaultPlan::seeded(42, 8, 100, 10);
        let p3 = FaultPlan::seeded(43, 8, 100, 10);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.faults.len(), 8);
        assert!(p1.faults.iter().all(|f| f.solve < 100 && f.apply < 10));
    }

    #[test]
    fn nan_fault_trips_non_finite_guard() {
        let a = lap1d(40);
        let inj = FaultInjector::new(FaultPlan::new(vec![Fault {
            solve: 0,
            apply: 2,
            kind: FaultKind::Nan,
        }]));
        let e = solve_faulty(&a, &inj, &CgOptions::default());
        assert!(
            matches!(e, Err(NumericsError::NonFinite { .. })),
            "{e:?}"
        );
        assert_eq!(inj.fired(), 1);
        // The fault is consumed: a retry of the same solve is clean.
        inj.begin_attempt();
        let n = a.n_rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let rep = cg(&FaultyLinOp::new(&a, &inj), &b, &mut x, &CgOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(inj.fired(), 1);
    }

    #[test]
    fn breakdown_fault_trips_spd_guard() {
        let a = lap1d(40);
        let inj = FaultInjector::new(FaultPlan::new(vec![Fault {
            solve: 0,
            apply: 1,
            kind: FaultKind::Breakdown,
        }]));
        let e = solve_faulty(&a, &inj, &CgOptions::default());
        assert!(matches!(e, Err(NumericsError::Breakdown { .. })), "{e:?}");
    }

    #[test]
    fn stall_fault_exhausts_iteration_cap() {
        let a = lap1d(60);
        let inj = FaultInjector::new(FaultPlan::new(vec![Fault {
            solve: 0,
            apply: 0,
            kind: FaultKind::Stall,
        }]));
        let opts = CgOptions {
            tol_rel: 1e-12,
            tol_abs: 0.0,
            max_iter: 120,
        };
        let rep = solve_faulty(&a, &inj, &opts).unwrap();
        assert!(!rep.converged, "stall fault must prevent convergence");
        assert_eq!(rep.iterations, 120);
    }

    #[test]
    fn untargeted_solves_skip_the_wrapper() {
        let a = lap1d(20);
        let inj = FaultInjector::new(FaultPlan::new(vec![Fault {
            solve: 3,
            apply: 0,
            kind: FaultKind::Nan,
        }]));
        for s in 0..6 {
            let want_wrapper = s == 3;
            let got = inj.begin_solve();
            assert_eq!(got, want_wrapper, "solve {s}");
            if got {
                let b = vec![1.0; 20];
                let mut x = vec![0.0; 20];
                let _ = cg(&FaultyLinOp::new(&a, &inj), &b, &mut x, &CgOptions::default());
            }
        }
        // Consumed: rerunning the sequence without begin_run stays clean...
        assert_eq!(inj.fired(), 1);
        // ...and begin_run re-arms everything.
        inj.begin_run();
        assert!(!inj.begin_solve());
        let mut armed = false;
        for _ in 0..3 {
            armed = inj.begin_solve();
        }
        assert!(armed, "fault at solve 3 re-armed after begin_run");
    }

    #[test]
    fn refresh_fault_fires_once_per_run() {
        let inj = FaultInjector::new(FaultPlan::new(vec![Fault {
            solve: 0,
            apply: 0,
            kind: FaultKind::RefreshFail,
        }]));
        assert!(!inj.begin_solve(), "refresh faults never need the wrapper");
        assert!(inj.refresh_fault());
        assert!(!inj.refresh_fault(), "one-shot");
        inj.begin_run();
        inj.begin_solve();
        assert!(inj.refresh_fault(), "re-armed");
    }

    #[test]
    fn saturating_plan_is_unrecoverable() {
        let a = lap1d(30);
        let inj = FaultInjector::new(FaultPlan::saturating(FaultKind::Nan));
        for _ in 0..3 {
            let e = solve_faulty(&a, &inj, &CgOptions::default());
            assert!(matches!(e, Err(NumericsError::NonFinite { .. })));
            inj.begin_attempt();
        }
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let a = lap1d(50);
        let plan = FaultPlan::seeded(7, 5, 4, 6);
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            let mut outcomes = Vec::new();
            for _ in 0..4 {
                let n = a.n_rows();
                let b = vec![1.0; n];
                let mut x = vec![0.0; n];
                let r = if inj.begin_solve() {
                    cg(&FaultyLinOp::new(&a, &inj), &b, &mut x, &CgOptions::default())
                } else {
                    cg(&a, &b, &mut x, &CgOptions::default())
                };
                outcomes.push((format!("{r:?}"), x));
            }
            (outcomes, inj.fired())
        };
        assert_eq!(run(), run());
    }
}
