//! (Preconditioned) conjugate gradient method.

use super::precond::{IdentityPrecond, Preconditioner};
use super::workspace::KrylovWorkspace;
use super::SolveReport;
use crate::error::NumericsError;
use crate::sparse::LinOp;
use crate::vector;

/// Options controlling the conjugate gradient iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Relative tolerance on `‖r‖₂ / ‖b‖₂`.
    pub tol_rel: f64,
    /// Absolute tolerance on `‖r‖₂` (guards the `b = 0` case).
    pub tol_abs: f64,
    /// Iteration cap; `0` means `10·n + 100`.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol_rel: 1e-10,
            tol_abs: 1e-30,
            max_iter: 0,
        }
    }
}

impl CgOptions {
    /// Options with a custom relative tolerance.
    pub fn with_tol(tol_rel: f64) -> Self {
        CgOptions {
            tol_rel,
            ..CgOptions::default()
        }
    }

    pub(super) fn cap(&self, n: usize) -> usize {
        if self.max_iter == 0 {
            10 * n + 100
        } else {
            self.max_iter
        }
    }
}

/// Solves the SPD system `A x = b` with plain conjugate gradients.
///
/// `x` holds the initial guess on entry (warm starting) and the solution on
/// exit.
///
/// # Errors
///
/// Returns [`NumericsError::Breakdown`] if the operator is detected to be
/// non-SPD (`pᵀAp ≤ 0`) or produces non-finite values, and
/// [`NumericsError::DimensionMismatch`] on inconsistent sizes. Hitting the
/// iteration cap is *not* an error: the report has `converged == false`.
pub fn cg<A: LinOp + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    options: &CgOptions,
) -> Result<SolveReport, NumericsError> {
    let id = IdentityPrecond::new(a.dim());
    pcg(a, b, x, &id, options)
}

/// Solves the SPD system `A x = b` with preconditioned conjugate gradients.
///
/// `x` holds the initial guess on entry (warm starting) and the solution on
/// exit. Convergence is declared when
/// `‖r‖₂ ≤ max(tol_rel · ‖b‖₂, tol_abs)`.
///
/// # Errors
///
/// See [`cg`].
pub fn pcg<A: LinOp + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    options: &CgOptions,
) -> Result<SolveReport, NumericsError> {
    pcg_with(a, b, x, precond, options, &mut KrylovWorkspace::new())
}

/// [`pcg`] with caller-owned scratch buffers.
///
/// Reusing the same [`KrylovWorkspace`] across solves makes the iteration
/// heap-allocation-free after the first call — the workhorse mode of the
/// transient simulator, which performs thousands of same-sized solves.
///
/// # Errors
///
/// See [`cg`].
pub fn pcg_with<A: LinOp + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &P,
    options: &CgOptions,
    ws: &mut KrylovWorkspace,
) -> Result<SolveReport, NumericsError> {
    let n = a.dim();
    if b.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "pcg rhs",
            expected: n,
            found: b.len(),
        });
    }
    if x.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "pcg initial guess",
            expected: n,
            found: x.len(),
        });
    }
    if precond.dim() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "pcg preconditioner",
            expected: n,
            found: precond.dim(),
        });
    }
    if n == 0 {
        return Ok(SolveReport::trivial());
    }

    let norm_b = vector::norm2(b);
    if !norm_b.is_finite() {
        return Err(NumericsError::NonFinite {
            solver: "pcg",
            detail: "right-hand side",
        });
    }
    let target = (options.tol_rel * norm_b).max(options.tol_abs);

    ws.ensure(n);
    let r = &mut ws.r[..n];
    a.apply_into(x, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut res_norm = vector::norm2(r);
    if !res_norm.is_finite() {
        return Err(NumericsError::NonFinite {
            solver: "pcg",
            detail: "initial residual",
        });
    }
    if res_norm <= target {
        return Ok(SolveReport {
            converged: true,
            iterations: 0,
            residual: res_norm,
        });
    }

    let z = &mut ws.z[..n];
    precond.apply(r, z);
    let p = &mut ws.p[..n];
    p.copy_from_slice(z);
    let mut rz = vector::dot(r, z);
    let ap = &mut ws.ap[..n];

    let max_iter = options.cap(n);
    for iter in 1..=max_iter {
        a.apply_into(p, ap);
        let pap = vector::dot(p, ap);
        if !pap.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "pcg",
                detail: "pᵀAp",
            });
        }
        if pap <= 0.0 {
            return Err(NumericsError::Breakdown {
                solver: "pcg",
                detail: "pᵀAp not positive: operator is not SPD",
            });
        }
        let alpha = rz / pap;
        vector::axpy(alpha, p, x);
        res_norm = vector::axpy_norm2(-alpha, ap, r);
        if !res_norm.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "pcg",
                detail: "residual",
            });
        }
        if res_norm <= target {
            return Ok(SolveReport {
                converged: true,
                iterations: iter,
                residual: res_norm,
            });
        }
        precond.apply(r, z);
        let rz_new = vector::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        vector::xpby(z, beta, p);
    }

    Ok(SolveReport {
        converged: false,
        iterations: max_iter,
        residual: res_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{IncompleteCholesky, JacobiPrecond, Ssor};
    use crate::sparse::{Coo, Csr};

    fn lap1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    fn check_solution(a: &Csr, b: &[f64], x: &[f64], tol: f64) {
        let mut r = vec![0.0; b.len()];
        a.residual(b, x, &mut r);
        assert!(
            vector::norm2(&r) <= tol * vector::norm2(b).max(1.0),
            "residual too large: {}",
            vector::norm2(&r)
        );
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = lap1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let rep = cg(&a, &b, &mut x, &CgOptions::default()).unwrap();
        assert!(rep.converged, "{rep}");
        check_solution(&a, &b, &x, 1e-8);
    }

    #[test]
    fn pcg_with_all_preconditioners() {
        let n = 80;
        let a = lap1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let opts = CgOptions::default();

        let mut x = vec![0.0; n];
        let jac = JacobiPrecond::new(&a).unwrap();
        let r1 = pcg(&a, &b, &mut x, &jac, &opts).unwrap();
        assert!(r1.converged);
        check_solution(&a, &b, &x, 1e-8);

        let mut x = vec![0.0; n];
        let ic = IncompleteCholesky::new(&a).unwrap();
        let r2 = pcg(&a, &b, &mut x, &ic, &opts).unwrap();
        assert!(r2.converged);
        check_solution(&a, &b, &x, 1e-8);
        // IC(0) is exact Cholesky for a tridiagonal matrix: 1-2 iterations.
        assert!(r2.iterations <= 2, "ic0 iterations: {}", r2.iterations);

        let mut x = vec![0.0; n];
        let ssor = Ssor::new(&a, 1.2).unwrap();
        let r3 = pcg(&a, &b, &mut x, &ssor, &opts).unwrap();
        assert!(r3.converged);
        check_solution(&a, &b, &x, 1e-8);
        // Preconditioning should beat plain CG in iteration count.
        let mut x = vec![0.0; n];
        let r0 = cg(&a, &b, &mut x, &opts).unwrap();
        assert!(r2.iterations < r0.iterations);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let n = 20;
        let a = lap1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        cg(&a, &b, &mut x, &CgOptions::default()).unwrap();
        let x_exact = x.clone();
        let rep = cg(&a, &b, &mut x, &CgOptions::with_tol(1e-8)).unwrap();
        assert!(rep.converged);
        assert!(rep.iterations <= 1);
        assert!(vector::max_abs_diff(&x, &x_exact) < 1e-8);
    }

    #[test]
    fn zero_rhs_returns_immediately_with_zero_guess() {
        let a = lap1d(5);
        let b = vec![0.0; 5];
        let mut x = vec![0.0; 5];
        let rep = cg(&a, &b, &mut x, &CgOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn non_spd_is_detected() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, -1.0);
        coo.push(1, 1, -1.0);
        let a = Csr::from_coo(&coo);
        let mut x = vec![0.0; 2];
        let e = cg(&a, &[1.0, 1.0], &mut x, &CgOptions::default());
        assert!(matches!(e, Err(NumericsError::Breakdown { .. })));
    }

    #[test]
    fn non_finite_input_is_detected() {
        let a = lap1d(4);
        let mut x = vec![0.0; 4];
        let e = cg(&a, &[1.0, f64::NAN, 1.0, 1.0], &mut x, &CgOptions::default());
        assert!(matches!(e, Err(NumericsError::NonFinite { .. })), "{e:?}");
        let mut x = vec![0.0, f64::INFINITY, 0.0, 0.0];
        let e = cg(&a, &[1.0; 4], &mut x, &CgOptions::default());
        assert!(matches!(e, Err(NumericsError::NonFinite { .. })), "{e:?}");
    }

    #[test]
    fn iteration_cap_reports_not_converged() {
        let n = 200;
        let a = lap1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = CgOptions {
            max_iter: 3,
            ..CgOptions::default()
        };
        let rep = cg(&a, &b, &mut x, &opts).unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 3);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = lap1d(4);
        let mut x = vec![0.0; 4];
        assert!(cg(&a, &[1.0; 3], &mut x, &CgOptions::default()).is_err());
        let mut x_bad = vec![0.0; 3];
        assert!(cg(&a, &[1.0; 4], &mut x_bad, &CgOptions::default()).is_err());
    }

    #[test]
    fn empty_system_is_trivial() {
        let a = Csr::identity(0);
        let mut x: Vec<f64> = vec![];
        let rep = cg(&a, &[], &mut x, &CgOptions::default()).unwrap();
        assert!(rep.converged);
    }
}
