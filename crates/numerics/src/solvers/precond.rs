//! Preconditioners for the Krylov solvers.
//!
//! All three matrix-based preconditioners ([`JacobiPrecond`],
//! [`IncompleteCholesky`], [`Ssor`]) own their data and expose a
//! `refresh(&Csr)` method that re-factors **in place** over the frozen
//! sparsity pattern: the transient simulator assembles the same pattern every
//! Picard iterate (values-only restamping), so a cached preconditioner can
//! follow the drifting values without a single heap allocation.

use crate::error::NumericsError;
use crate::multivec::MultiVec;
use crate::sparse::Csr;

/// Application of an (approximate) inverse: `z ← M⁻¹ r`.
pub trait Preconditioner {
    /// Dimension of the preconditioner.
    fn dim(&self) -> usize;

    /// Applies the preconditioner: `z ← M⁻¹ r`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if slice lengths differ from [`Preconditioner::dim`].
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Applies the preconditioner to every column: `z.col(j) ← M⁻¹ r.col(j)`.
    ///
    /// The default loops [`Preconditioner::apply`] over the columns, staging
    /// each one through freshly allocated contiguous buffers (the panel is
    /// row-interleaved). Preconditioners whose application is a sparse row
    /// traversal ([`IncompleteCholesky`], [`Ssor`], the AMG V-cycle)
    /// override it with a fused interleaved kernel that reads each row's
    /// indices once for the whole panel — and stays allocation-free.
    /// Overrides must keep each column bit-identical to the scalar
    /// [`Preconditioner::apply`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if the panel shapes differ from each other
    /// or from [`Preconditioner::dim`].
    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        let mut rc = vec![0.0; r.n_rows()];
        let mut zc = vec![0.0; z.n_rows()];
        for j in 0..r.n_cols() {
            r.copy_col_into(j, &mut rc);
            self.apply(&rc, &mut zc);
            z.copy_col_from(j, &zc);
        }
    }
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityPrecond { n }
    }
}

impl Preconditioner for IdentityPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        z.copy_panel_from(r);
    }
}

/// Jacobi (diagonal) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the Jacobi preconditioner from the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if any diagonal entry
    /// is zero or not finite.
    pub fn new(a: &Csr) -> Result<Self, NumericsError> {
        let mut p = JacobiPrecond {
            inv_diag: vec![0.0; a.n_rows().min(a.n_cols())],
        };
        p.refresh(a)?;
        Ok(p)
    }

    /// Recomputes the inverse diagonal from `a` in place (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `a` has a different
    /// dimension and [`NumericsError::FactorizationFailed`] on a zero or
    /// non-finite diagonal entry.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        let n = self.inv_diag.len();
        if a.n_rows().min(a.n_cols()) != n {
            return Err(NumericsError::DimensionMismatch {
                context: "jacobi refresh",
                expected: n,
                found: a.n_rows().min(a.n_cols()),
            });
        }
        for i in 0..n {
            let d = a.get(i, i);
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "jacobi",
                    index: i,
                });
            }
            self.inv_diag[i] = 1.0 / d;
        }
        Ok(())
    }
}

impl Preconditioner for JacobiPrecond {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        // One diagonal load scales a contiguous k-wide row; each column runs
        // the scalar multiply sequence exactly (bit-identical per column).
        let k = r.n_cols();
        if k == 0 {
            return;
        }
        for ((zrow, rrow), &d) in z
            .as_mut_slice()
            .chunks_exact_mut(k)
            .zip(r.as_slice().chunks_exact(k))
            .zip(&self.inv_diag)
        {
            for (zv, rv) in zrow.iter_mut().zip(rrow) {
                *zv = rv * d;
            }
        }
    }
}

/// Incomplete Cholesky factorization with structural fill level `k`.
///
/// Computes a lower-triangular `L` such that `L Lᵀ ≈ A` and applies
/// `M⁻¹ = L⁻ᵀ L⁻¹`. The sparsity pattern of `L` is the lower triangle of the
/// *structural* power `A^{k+1}` — for `k = 0` this is the classic zero-fill
/// IC(0); higher levels trade a denser (but still sparse) factor for
/// substantially fewer CG iterations, which pays off handsomely once the
/// factorization is cached and only lazily refreshed. If the factorization
/// breaks down (matrix only weakly diagonally dominant), it is retried with a
/// diagonal shift `A + α·diag(A)` with geometrically increasing `α` — the
/// standard Manteuffel remedy.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// CSR arrays of L, lower triangle including the diagonal (sorted cols,
    /// diagonal last in every row). Frozen after construction. Column
    /// indices are `u32` — half the index bandwidth of the triangular
    /// sweeps, which dominate every preconditioned CG iteration.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Position of the diagonal entry of each row in `values`.
    diag_pos: Vec<usize>,
    /// Reciprocal of the diagonal of L, so the two triangular sweeps
    /// multiply instead of divide (an FP division per row per sweep is
    /// 20–40 cycles of latency on the hot path).
    inv_diag: Vec<f64>,
    /// Shift that was actually used (0.0 when none was needed).
    shift: f64,
    /// Structural fill level the pattern was built with.
    fill: usize,
}

impl IncompleteCholesky {
    const SHIFTS: [f64; 6] = [0.0, 1e-3, 1e-2, 1e-1, 0.5, 2.0];

    /// Factorizes the lower triangle of `a` with zero fill (IC(0)).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if the factorization
    /// breaks down even with the largest diagonal shift attempted, or if `a`
    /// is not square / lacks a positive diagonal.
    pub fn new(a: &Csr) -> Result<Self, NumericsError> {
        Self::with_fill(a, 0)
    }

    /// Factorizes `a` over the lower-triangular pattern of the structural
    /// power `A^{level+1}` (IC(`level`)).
    ///
    /// # Errors
    ///
    /// See [`IncompleteCholesky::new`].
    pub fn with_fill(a: &Csr, level: usize) -> Result<Self, NumericsError> {
        let mut f = Self::symbolic(a, level)?;
        f.refresh(a)?;
        Ok(f)
    }

    /// Like [`IncompleteCholesky::with_fill`], but prunes weak fill from the
    /// factor: after a first factorization, every fill entry with
    /// `|L[i,j]| < droptol·√(L[i,i]·L[j,j])` is dropped from the pattern
    /// (entries structurally present in `a` are always kept) and the factor
    /// is recomputed on the pruned pattern. The pruned pattern is the one
    /// that [`IncompleteCholesky::refresh`] keeps frozen afterwards — the
    /// threshold-IC quality at a fraction of the sweep cost.
    ///
    /// # Errors
    ///
    /// See [`IncompleteCholesky::new`].
    pub fn with_fill_drop(a: &Csr, level: usize, droptol: f64) -> Result<Self, NumericsError> {
        let mut f = Self::symbolic(a, level)?;
        f.refresh(a)?;
        if level > 0 && droptol > 0.0 {
            f.prune(a, droptol)?;
        }
        Ok(f)
    }

    /// Drops weak off-diagonal fill entries from the frozen pattern and
    /// re-factors on the pruned pattern.
    fn prune(&mut self, a: &Csr, droptol: f64) -> Result<(), NumericsError> {
        let n = self.n;
        let mut diag = vec![0.0f64; n];
        for i in 0..n {
            diag[i] = self.values[self.diag_pos[i]].abs();
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut diag_pos = vec![usize::MAX; n];
        row_ptr.push(0);
        for i in 0..n {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[p] as usize;
                let keep = j == i
                    || a.slot(i, j).is_some()
                    || self.values[p].abs() >= droptol * (diag[i] * diag[j]).sqrt();
                if keep {
                    if j == i {
                        diag_pos[i] = col_idx.len();
                    }
                    col_idx.push(j as u32);
                }
            }
            row_ptr.push(col_idx.len());
        }
        self.values = vec![0.0; col_idx.len()];
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.diag_pos = diag_pos;
        self.refresh(a)
    }

    /// Factorizes `A + shift·diag(A)` with the IC(0) pattern and exactly
    /// this shift (no retry ladder).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] on a non-positive pivot.
    pub fn with_shift(a: &Csr, shift: f64) -> Result<Self, NumericsError> {
        let mut f = Self::symbolic(a, 0)?;
        f.refill(a, shift)?;
        f.factorize()?;
        f.shift = shift;
        Ok(f)
    }

    /// Re-factors in place from the values of `a` over the frozen sparsity
    /// pattern — no heap allocation. Retries the Manteuffel shift ladder as
    /// the constructor does.
    ///
    /// On a numeric error the stored factor is left invalid; callers should
    /// rebuild from scratch (the simulator's cache does).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] if `a`'s pattern is not
    /// contained in the frozen pattern (the assembly pattern changed) and
    /// [`NumericsError::FactorizationFailed`] if every shift breaks down.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        let mut last = Err(NumericsError::FactorizationFailed {
            kind: "ic",
            index: 0,
        });
        for &s in &Self::SHIFTS {
            self.refill(a, s)?;
            match self.factorize() {
                Ok(()) => {
                    self.shift = s;
                    return Ok(());
                }
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Builds the frozen lower-triangular pattern (values zeroed).
    fn symbolic(a: &Csr, level: usize) -> Result<Self, NumericsError> {
        if a.n_rows() != a.n_cols() {
            return Err(NumericsError::InvalidArgument(
                "ic: matrix must be square".into(),
            ));
        }
        if a.n_rows() > u32::MAX as usize {
            return Err(NumericsError::InvalidArgument(
                "ic: dimension exceeds u32 index range".into(),
            ));
        }
        let n = a.n_rows();
        // Structural rows of A^{level+1}: multiply the pattern by A's
        // pattern `level` times (A is symmetric in this project, so the
        // power stays symmetric). For level 0 the CSR rows of `a` are used
        // directly — no pattern copy at all.
        let mut rows: Vec<Vec<usize>> = Vec::new();
        if level > 0 {
            let mut marker = vec![usize::MAX; n];
            rows = (0..n).map(|i| a.row(i).0.to_vec()).collect();
            for _ in 0..level {
                let prev = rows;
                rows = Vec::with_capacity(n);
                for i in 0..n {
                    let mut cols = Vec::with_capacity(4 * prev[i].len());
                    for &m in &prev[i] {
                        for &j in a.row(m).0 {
                            if marker[j] != i {
                                marker[j] = i;
                                cols.push(j);
                            }
                        }
                    }
                    cols.sort_unstable();
                    rows.push(cols);
                }
                marker.fill(usize::MAX);
            }
        }
        // Restrict to the lower triangle (diagonal last per row).
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut diag_pos = vec![usize::MAX; n];
        row_ptr.push(0);
        for i in 0..n {
            let cols: &[usize] = if level > 0 { &rows[i] } else { a.row(i).0 };
            for &j in cols {
                if j > i {
                    break;
                }
                if j == i {
                    diag_pos[i] = col_idx.len();
                }
                col_idx.push(j as u32);
            }
            if diag_pos[i] == usize::MAX {
                return Err(NumericsError::FactorizationFailed {
                    kind: "ic",
                    index: i,
                });
            }
            row_ptr.push(col_idx.len());
        }
        let nnz = col_idx.len();
        Ok(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values: vec![0.0; nnz],
            diag_pos,
            inv_diag: vec![0.0; n],
            shift: 0.0,
            fill: level,
        })
    }

    /// Scatters the lower triangle of `a` (diagonal scaled by `1 + shift`)
    /// into the frozen pattern; fill positions get zero.
    fn refill(&mut self, a: &Csr, shift: f64) -> Result<(), NumericsError> {
        if a.n_rows() != self.n || a.n_cols() != self.n {
            return Err(NumericsError::DimensionMismatch {
                context: "ic refresh",
                expected: self.n,
                found: a.n_rows(),
            });
        }
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            self.values[lo..hi].fill(0.0);
            let (acols, avals) = a.row(i);
            let mut p = lo;
            for (&j, &v) in acols.iter().zip(avals) {
                if j > i {
                    break;
                }
                while p < hi && (self.col_idx[p] as usize) < j {
                    p += 1;
                }
                if p >= hi || self.col_idx[p] as usize != j {
                    return Err(NumericsError::InvalidArgument(
                        "ic refresh: sparsity pattern of the matrix changed".into(),
                    ));
                }
                self.values[p] = if j == i { v * (1.0 + shift) } else { v };
                p += 1;
            }
        }
        Ok(())
    }

    /// In-place IK-variant incomplete Cholesky over the frozen pattern:
    /// for each row i, for each k < i in pattern:
    ///   `L[i,k] = (A[i,k] − Σ_{j<k} L[i,j]·L[k,j]) / L[k,k]`
    /// `L[i,i] = sqrt(A[i,i] − Σ_{j<i} L[i,j]²)`
    fn factorize(&mut self) -> Result<(), NumericsError> {
        let n = self.n;
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for kk in lo..hi {
                let k = self.col_idx[kk] as usize;
                if k == i {
                    // Diagonal entry.
                    let mut s = self.values[kk];
                    for jj in lo..kk {
                        s -= self.values[jj] * self.values[jj];
                    }
                    if s <= 0.0 || !s.is_finite() {
                        return Err(NumericsError::FactorizationFailed {
                            kind: "ic",
                            index: i,
                        });
                    }
                    self.values[kk] = s.sqrt();
                } else {
                    // Off-diagonal: sparse dot of row i and row k (both < k part).
                    let mut s = self.values[kk];
                    let (klo, khi) = (self.row_ptr[k], self.row_ptr[k + 1]);
                    let mut p = lo;
                    let mut q = klo;
                    while p < kk && q < khi {
                        let cp = self.col_idx[p];
                        let cq = self.col_idx[q];
                        if cq as usize >= k {
                            break;
                        }
                        match cp.cmp(&cq) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                s -= self.values[p] * self.values[q];
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                    let dkk = self.values[self.diag_pos[k]];
                    self.values[kk] = s / dkk;
                }
            }
        }
        for i in 0..n {
            self.inv_diag[i] = 1.0 / self.values[self.diag_pos[i]];
        }
        Ok(())
    }

    /// Diagonal shift that was applied (0.0 if the plain factorization
    /// succeeded).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Structural fill level of the frozen pattern (0 = IC(0)).
    pub fn fill_level(&self) -> usize {
        self.fill
    }

    /// Stored entries of the triangular factor.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl Preconditioner for IncompleteCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(r.len(), n);
        debug_assert_eq!(z.len(), n);
        // Forward solve L w = r (w stored in z); the diagonal is the last
        // entry of every row, so the strictly-lower part is `lo..hi-1`.
        let mut lo = self.row_ptr[0];
        for i in 0..n {
            let hi = self.row_ptr[i + 1];
            let mut s = r[i];
            for (&c, &v) in self.col_idx[lo..hi - 1]
                .iter()
                .zip(&self.values[lo..hi - 1])
            {
                s -= v * z[c as usize];
            }
            z[i] = s * self.inv_diag[i];
            lo = hi;
        }
        // Backward solve Lᵀ z = w, scattering updates column-wise.
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let zi = z[i] * self.inv_diag[i];
            z[i] = zi;
            for (&c, &v) in self.col_idx[lo..hi - 1]
                .iter()
                .zip(&self.values[lo..hi - 1])
            {
                z[c as usize] -= v * zi;
            }
        }
    }

    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        // Fused triangular sweeps over the interleaved panel: the factor's
        // indices are loaded once for the whole panel and every touched row
        // is a contiguous k-slice. Each column runs exactly the scalar
        // operation sequence, so results are bit-identical per column.
        let n = self.n;
        debug_assert_eq!(r.n_rows(), n);
        debug_assert_eq!(z.n_rows(), n);
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        let k = r.n_cols();
        if k == 0 {
            return;
        }
        let rs = r.as_slice();
        let zs = z.as_mut_slice();
        // Forward solve L w = r per column (w stored in z); the diagonal is
        // the last entry of every row, so the strictly-lower part is
        // `lo..hi-1`.
        let mut lo = self.row_ptr[0];
        for i in 0..n {
            let hi = self.row_ptr[i + 1];
            let (done, rest) = zs.split_at_mut(i * k);
            let zrow = &mut rest[..k];
            zrow.copy_from_slice(&rs[i * k..(i + 1) * k]);
            for (&c, &v) in self.col_idx[lo..hi - 1]
                .iter()
                .zip(&self.values[lo..hi - 1])
            {
                let c = c as usize;
                let zc = &done[c * k..c * k + k];
                for (zv, pv) in zrow.iter_mut().zip(zc) {
                    *zv -= v * pv;
                }
            }
            let d = self.inv_diag[i];
            for zv in zrow.iter_mut() {
                *zv *= d;
            }
            lo = hi;
        }
        // Backward solve Lᵀ z = w per column, scattering updates row-wise.
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let d = self.inv_diag[i];
            let (below, rest) = zs.split_at_mut(i * k);
            let zrow = &mut rest[..k];
            for zv in zrow.iter_mut() {
                *zv *= d;
            }
            for (&c, &v) in self.col_idx[lo..hi - 1]
                .iter()
                .zip(&self.values[lo..hi - 1])
            {
                let c = c as usize;
                let zc = &mut below[c * k..c * k + k];
                for (pv, zv) in zc.iter_mut().zip(zrow.iter()) {
                    *pv -= v * zv;
                }
            }
        }
    }
}

/// Symmetric successive over-relaxation preconditioner.
///
/// `M = ω/(2−ω) · (D/ω + L) D⁻¹ (D/ω + U)` applied via one forward and one
/// backward triangular sweep. The preconditioner owns a copy of the matrix,
/// so it can live in long-lived caches; [`Ssor::refresh`] updates the copy
/// in place over the frozen sparsity pattern.
#[derive(Debug, Clone)]
pub struct Ssor {
    a: Csr,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Builds an SSOR preconditioner with relaxation factor `omega ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for `omega` outside `(0,2)`
    /// and [`NumericsError::FactorizationFailed`] for zero diagonal entries.
    pub fn new(a: &Csr, omega: f64) -> Result<Self, NumericsError> {
        if !(0.0..2.0).contains(&omega) || omega == 0.0 {
            return Err(NumericsError::InvalidArgument(format!(
                "ssor: omega must be in (0, 2), got {omega}"
            )));
        }
        let mut p = Ssor {
            a: a.clone(),
            inv_diag: vec![0.0; a.n_rows()],
            omega,
        };
        p.refresh_diag()?;
        Ok(p)
    }

    /// The relaxation factor in use.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Updates the owned matrix copy and inverse diagonal from `a` in place
    /// (no allocation). The sparsity pattern must match the one the
    /// preconditioner was built with.
    ///
    /// On error the stored state may be partially updated; callers should
    /// rebuild from scratch (the simulator's cache does).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] on a pattern mismatch and
    /// [`NumericsError::FactorizationFailed`] on zero diagonal entries.
    pub fn refresh(&mut self, a: &Csr) -> Result<(), NumericsError> {
        if !self.a.same_pattern(a) {
            return Err(NumericsError::InvalidArgument(
                "ssor refresh: sparsity pattern of the matrix changed".into(),
            ));
        }
        self.a.values_mut().copy_from_slice(a.values());
        self.refresh_diag()
    }

    fn refresh_diag(&mut self) -> Result<(), NumericsError> {
        for i in 0..self.a.n_rows() {
            let d = self.a.get(i, i);
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "ssor",
                    index: i,
                });
            }
            self.inv_diag[i] = 1.0 / d;
        }
        Ok(())
    }
}

impl Preconditioner for Ssor {
    fn dim(&self) -> usize {
        self.a.n_rows()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // M⁻¹ = (2−ω)/ω · (D/ω + U)⁻¹ · D · (D/ω + L)⁻¹
        let n = self.a.n_rows();
        let w = self.omega;
        // Forward sweep: t = (D/ω + L)⁻¹ r, stored in z.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = r[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    break;
                }
                s -= v * z[j];
            }
            z[i] = s * self.inv_diag[i] * w;
        }
        // Scale: u = D t.
        for i in 0..n {
            z[i] /= self.inv_diag[i];
        }
        // Backward sweep: z = (D/ω + U)⁻¹ u.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = z[i];
            for (&j, &v) in cols.iter().zip(vals).rev() {
                if j <= i {
                    break;
                }
                s -= v * z[j];
            }
            z[i] = s * self.inv_diag[i] * w;
        }
        let scale = (2.0 - w) / w;
        for zi in z.iter_mut() {
            *zi *= scale;
        }
    }

    fn apply_block(&self, r: &MultiVec, z: &mut MultiVec) {
        // Fused sweeps over the owned matrix and the interleaved panel: each
        // row's indices are loaded once for the whole panel, with the scalar
        // per-column operation order preserved exactly (bit-identical
        // results).
        let n = self.a.n_rows();
        debug_assert_eq!(r.n_rows(), n);
        debug_assert_eq!(z.n_rows(), n);
        assert_eq!(r.n_cols(), z.n_cols(), "apply_block: panel widths");
        let w = self.omega;
        let k = r.n_cols();
        if k == 0 {
            return;
        }
        let rs = r.as_slice();
        let zs = z.as_mut_slice();
        // Forward sweep: t = (D/ω + L)⁻¹ r, stored in z.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let (done, rest) = zs.split_at_mut(i * k);
            let zrow = &mut rest[..k];
            zrow.copy_from_slice(&rs[i * k..(i + 1) * k]);
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    break;
                }
                let zj = &done[j * k..j * k + k];
                for (zv, pv) in zrow.iter_mut().zip(zj) {
                    *zv -= v * pv;
                }
            }
            let d = self.inv_diag[i];
            for zv in zrow.iter_mut() {
                *zv = *zv * d * w;
            }
        }
        // Scale: u = D t.
        for (zrow, &d) in zs.chunks_exact_mut(k).zip(&self.inv_diag) {
            for zv in zrow.iter_mut() {
                *zv /= d;
            }
        }
        // Backward sweep: z = (D/ω + U)⁻¹ u.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let (head, above) = zs.split_at_mut((i + 1) * k);
            let zrow = &mut head[i * k..];
            for (&j, &v) in cols.iter().zip(vals).rev() {
                if j <= i {
                    break;
                }
                let off = (j - i - 1) * k;
                let zj = &above[off..off + k];
                for (zv, pv) in zrow.iter_mut().zip(zj) {
                    *zv -= v * pv;
                }
            }
            let d = self.inv_diag[i];
            for zv in zrow.iter_mut() {
                *zv = *zv * d * w;
            }
        }
        let scale = (2.0 - w) / w;
        for zv in zs.iter_mut() {
            *zv *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Coo;

    fn lap1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    fn lap2d(nx: usize) -> Csr {
        // 2D 5-point Laplacian on an nx × nx grid: IC(0) is *not* exact
        // here, so fill levels and refreshes are actually exercised.
        let n = nx * nx;
        let mut coo = Coo::new(n, n);
        for i in 0..nx {
            for j in 0..nx {
                let p = i * nx + j;
                coo.push(p, p, 4.0);
                if i + 1 < nx {
                    coo.push(p, p + nx, -1.0);
                    coo.push(p + nx, p, -1.0);
                }
                if j + 1 < nx {
                    coo.push(p, p + 1, -1.0);
                    coo.push(p + 1, p, -1.0);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let a = lap1d(4);
        let p = JacobiPrecond::new(&a).unwrap();
        let mut z = [0.0; 4];
        p.apply(&[2.0, 4.0, 6.0, 8.0], &mut z);
        assert_eq!(z, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.dim(), 4);
    }

    #[test]
    fn jacobi_rejects_zero_diag() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = Csr::from_coo(&coo);
        assert!(JacobiPrecond::new(&a).is_err());
    }

    #[test]
    fn jacobi_refresh_tracks_new_values() {
        let a = lap1d(4);
        let mut p = JacobiPrecond::new(&a).unwrap();
        let mut a2 = a.clone();
        a2.scale(2.0);
        p.refresh(&a2).unwrap();
        let fresh = JacobiPrecond::new(&a2).unwrap();
        let r = [1.0, 2.0, 3.0, 4.0];
        let mut z1 = [0.0; 4];
        let mut z2 = [0.0; 4];
        p.apply(&r, &mut z1);
        fresh.apply(&r, &mut z2);
        assert_eq!(z1, z2);
        // Dimension mismatch is rejected.
        assert!(p.refresh(&lap1d(5)).is_err());
    }

    #[test]
    fn ic0_is_exact_for_tridiagonal() {
        // For tridiagonal SPD matrices IC(0) = complete Cholesky, so
        // M⁻¹ r must equal A⁻¹ r exactly.
        let a = lap1d(6);
        let f = IncompleteCholesky::new(&a).unwrap();
        assert_eq!(f.shift(), 0.0);
        assert_eq!(f.fill_level(), 0);
        let b = [1.0, -1.0, 2.0, 0.0, 1.0, 3.0];
        let mut z = [0.0; 6];
        f.apply(&b, &mut z);
        let x = a.to_dense().solve(&b).unwrap();
        for i in 0..6 {
            assert!((z[i] - x[i]).abs() < 1e-12, "{z:?} vs {x:?}");
        }
    }

    #[test]
    fn ic0_requires_diagonal() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = Csr::from_coo(&coo);
        assert!(IncompleteCholesky::with_shift(&a, 0.0).is_err());
    }

    #[test]
    fn ic_refresh_equals_fresh_factorization() {
        let a = lap2d(8);
        for level in [0usize, 1, 2] {
            let mut f = IncompleteCholesky::with_fill(&a, level).unwrap();
            // Perturb the values (same pattern), refresh, compare to a
            // from-scratch factorization of the perturbed matrix.
            let mut a2 = a.clone();
            for (k, v) in a2.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 1e-3 * (k % 7) as f64;
            }
            f.refresh(&a2).unwrap();
            let fresh = IncompleteCholesky::with_fill(&a2, level).unwrap();
            assert_eq!(f.shift(), fresh.shift());
            assert_eq!(f.nnz(), fresh.nnz());
            let r: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
            let mut z1 = vec![0.0; a.n_rows()];
            let mut z2 = vec![0.0; a.n_rows()];
            f.apply(&r, &mut z1);
            fresh.apply(&r, &mut z2);
            assert_eq!(z1, z2, "level {level}");
        }
    }

    #[test]
    fn ic_fill_grows_pattern_and_improves_quality() {
        let a = lap2d(10);
        let f0 = IncompleteCholesky::with_fill(&a, 0).unwrap();
        let f1 = IncompleteCholesky::with_fill(&a, 1).unwrap();
        let f2 = IncompleteCholesky::with_fill(&a, 2).unwrap();
        assert!(f1.nnz() > f0.nnz());
        assert!(f2.nnz() > f1.nnz());
        assert_eq!(f1.fill_level(), 1);
        // Quality proxy: ‖A·M⁻¹·r − r‖ should shrink with the fill level.
        let n = a.n_rows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let err = |f: &IncompleteCholesky| {
            let mut z = vec![0.0; n];
            f.apply(&r, &mut z);
            let az = a.matvec(&z);
            az.iter()
                .zip(&r)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(err(&f1) < err(&f0), "{} vs {}", err(&f1), err(&f0));
    }

    #[test]
    fn ic_refresh_rejects_pattern_change() {
        let a = lap1d(5);
        let mut f = IncompleteCholesky::new(&a).unwrap();
        assert!(f.refresh(&lap1d(6)).is_err());
        // Different pattern, same size: extra off-diagonal entry.
        let mut coo = Coo::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.0);
        }
        coo.push(4, 0, -0.5);
        coo.push(0, 4, -0.5);
        let b = Csr::from_coo(&coo);
        assert!(matches!(
            f.refresh(&b),
            Err(NumericsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn identity_copies() {
        let p = IdentityPrecond::new(3);
        let mut z = [0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, [1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    fn ssor_validates_omega() {
        let a = lap1d(3);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        let p = Ssor::new(&a, 1.0).unwrap();
        assert_eq!(p.omega(), 1.0);
    }

    #[test]
    fn ssor_apply_is_spd_like() {
        // M⁻¹ should be symmetric positive definite; check zᵀr > 0 for
        // a few directions (necessary condition) and symmetry via dot
        // products: r1ᵀ M⁻¹ r2 == r2ᵀ M⁻¹ r1.
        let a = lap1d(5);
        let p = Ssor::new(&a, 1.3).unwrap();
        let r1 = [1.0, 0.0, -2.0, 0.5, 1.0];
        let r2 = [0.0, 1.0, 1.0, -1.0, 2.0];
        let mut z1 = [0.0; 5];
        let mut z2 = [0.0; 5];
        p.apply(&r1, &mut z1);
        p.apply(&r2, &mut z2);
        let d11 = crate::vector::dot(&r1, &z1);
        assert!(d11 > 0.0);
        let d12 = crate::vector::dot(&r1, &z2);
        let d21 = crate::vector::dot(&r2, &z1);
        assert!((d12 - d21).abs() < 1e-10 * d12.abs().max(1.0), "{d12} {d21}");
    }

    #[test]
    fn apply_block_is_bit_identical_to_scalar_apply() {
        let a = lap2d(8);
        let n = a.n_rows();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let ic = IncompleteCholesky::with_fill(&a, 1).unwrap();
        let ssor = Ssor::new(&a, 1.3).unwrap();
        let ident = IdentityPrecond::new(n);
        let ps: [&dyn Preconditioner; 4] = [&jacobi, &ic, &ssor, &ident];
        for k in [1usize, 2, 32, 33] {
            let mut r = MultiVec::zeros(n, k);
            for j in 0..k {
                for i in 0..n {
                    r.set(i, j, (((i * 7 + j * 13) % 23) as f64).cos());
                }
            }
            for (pi, p) in ps.iter().enumerate() {
                let mut z = MultiVec::zeros(n, k);
                z.fill(f64::NAN);
                p.apply_block(&r, &mut z);
                for j in 0..k {
                    let mut z_ref = vec![0.0; n];
                    p.apply(&r.col_vec(j), &mut z_ref);
                    assert_eq!(z.col_vec(j), z_ref, "precond {pi}, k = {k}, col {j}");
                }
            }
        }
    }

    #[test]
    fn ssor_owns_data_and_refreshes() {
        // The preconditioner must stay valid after the source matrix is
        // dropped, and refresh must track new values over the same pattern.
        let p = {
            let a = lap2d(4);
            Ssor::new(&a, 1.2).unwrap()
        };
        let n = p.dim();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut z = vec![0.0; n];
        p.apply(&r, &mut z); // does not read the dropped source

        let a = lap2d(4);
        let mut p = Ssor::new(&a, 1.2).unwrap();
        let mut a2 = a.clone();
        a2.scale(3.0);
        p.refresh(&a2).unwrap();
        let fresh = Ssor::new(&a2, 1.2).unwrap();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        p.apply(&r, &mut z1);
        fresh.apply(&r, &mut z2);
        assert_eq!(z1, z2);
        assert!(p.refresh(&lap1d(n)).is_err(), "pattern change rejected");
    }
}
