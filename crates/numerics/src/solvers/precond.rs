//! Preconditioners for the Krylov solvers.

use crate::error::NumericsError;
use crate::sparse::Csr;

/// Application of an (approximate) inverse: `z ← M⁻¹ r`.
pub trait Preconditioner {
    /// Dimension of the preconditioner.
    fn dim(&self) -> usize;

    /// Applies the preconditioner: `z ← M⁻¹ r`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if slice lengths differ from [`Preconditioner::dim`].
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy)]
pub struct IdentityPrecond {
    n: usize,
}

impl IdentityPrecond {
    /// Identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        IdentityPrecond { n }
    }
}

impl Preconditioner for IdentityPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the Jacobi preconditioner from the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if any diagonal entry
    /// is zero or not finite.
    pub fn new(a: &Csr) -> Result<Self, NumericsError> {
        let diag = a.diag();
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "jacobi",
                    index: i,
                });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPrecond { inv_diag })
    }
}

impl Preconditioner for JacobiPrecond {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
}

/// Zero-fill incomplete Cholesky factorization IC(0).
///
/// Computes a lower-triangular `L` with the sparsity pattern of the lower
/// triangle of `A` such that `L Lᵀ ≈ A`, and applies `M⁻¹ = L⁻ᵀ L⁻¹`.
/// If the factorization breaks down (matrix only weakly diagonally
/// dominant), it is retried with a diagonal shift `A + α·diag(A)` with
/// geometrically increasing `α` — the standard Manteuffel remedy.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// CSR arrays of L, lower triangle including the diagonal (sorted cols).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Shift that was actually used (0.0 when none was needed).
    shift: f64,
}

impl IncompleteCholesky {
    /// Factorizes the lower triangle of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] if the factorization
    /// breaks down even with the largest diagonal shift attempted, or if `a`
    /// is not square / lacks a positive diagonal.
    pub fn new(a: &Csr) -> Result<Self, NumericsError> {
        const SHIFTS: [f64; 6] = [0.0, 1e-3, 1e-2, 1e-1, 0.5, 2.0];
        let mut last = Err(NumericsError::FactorizationFailed {
            kind: "ic0",
            index: 0,
        });
        for &s in &SHIFTS {
            match Self::with_shift(a, s) {
                Ok(f) => return Ok(f),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Factorizes `A + shift·diag(A)` with the IC(0) pattern.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::FactorizationFailed`] on a non-positive pivot.
    pub fn with_shift(a: &Csr, shift: f64) -> Result<Self, NumericsError> {
        if a.n_rows() != a.n_cols() {
            return Err(NumericsError::InvalidArgument(
                "ic0: matrix must be square".into(),
            ));
        }
        let n = a.n_rows();
        // Extract lower triangle (cols ≤ row), pattern sorted by construction.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag_pos = vec![usize::MAX; n];
        row_ptr.push(0);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut has_diag = false;
            for (&j, &v) in cols.iter().zip(vals) {
                if j > i {
                    break;
                }
                if j == i {
                    diag_pos[i] = col_idx.len();
                    values.push(v * (1.0 + shift));
                    has_diag = true;
                } else {
                    values.push(v);
                }
                col_idx.push(j);
            }
            if !has_diag {
                return Err(NumericsError::FactorizationFailed {
                    kind: "ic0",
                    index: i,
                });
            }
            row_ptr.push(col_idx.len());
        }
        // In-place IK-variant IC(0):
        // for each row i, for each k < i in pattern:
        //   L[i,k] = (A[i,k] − Σ_{j<k} L[i,j]·L[k,j]) / L[k,k]
        // L[i,i] = sqrt(A[i,i] − Σ_{j<i} L[i,j]²)
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for kk in lo..hi {
                let k = col_idx[kk];
                if k == i {
                    // Diagonal entry.
                    let mut s = values[kk];
                    for jj in lo..kk {
                        s -= values[jj] * values[jj];
                    }
                    if s <= 0.0 || !s.is_finite() {
                        return Err(NumericsError::FactorizationFailed {
                            kind: "ic0",
                            index: i,
                        });
                    }
                    values[kk] = s.sqrt();
                } else {
                    // Off-diagonal: sparse dot of row i and row k (both < k part).
                    let mut s = values[kk];
                    let (klo, khi) = (row_ptr[k], row_ptr[k + 1]);
                    let mut p = lo;
                    let mut q = klo;
                    while p < kk && q < khi {
                        let cp = col_idx[p];
                        let cq = col_idx[q];
                        if cq >= k {
                            break;
                        }
                        match cp.cmp(&cq) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                s -= values[p] * values[q];
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                    let dkk = values[diag_pos[k]];
                    values[kk] = s / dkk;
                }
            }
        }
        Ok(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
            shift,
        })
    }

    /// Diagonal shift that was applied (0.0 if the plain factorization
    /// succeeded).
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl Preconditioner for IncompleteCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(r.len(), n);
        debug_assert_eq!(z.len(), n);
        // Forward solve L w = r (w stored in z).
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut s = r[i];
            for k in lo..hi - 1 {
                s -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = s / self.values[hi - 1]; // diagonal is last in the row
        }
        // Backward solve Lᵀ z = w, scattering updates column-wise.
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let zi = z[i] / self.values[hi - 1];
            z[i] = zi;
            for k in lo..hi - 1 {
                z[self.col_idx[k]] -= self.values[k] * zi;
            }
        }
    }
}

/// Symmetric successive over-relaxation preconditioner.
///
/// `M = ω/(2−ω) · (D/ω + L) D⁻¹ (D/ω + U)` applied via one forward and one
/// backward triangular sweep over the CSR rows of `A` (which is borrowed, so
/// SSOR costs no extra memory beyond the inverse diagonal).
#[derive(Debug, Clone)]
pub struct Ssor<'a> {
    a: &'a Csr,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl<'a> Ssor<'a> {
    /// Builds an SSOR preconditioner with relaxation factor `omega ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] for `omega` outside `(0,2)`
    /// and [`NumericsError::FactorizationFailed`] for zero diagonal entries.
    pub fn new(a: &'a Csr, omega: f64) -> Result<Self, NumericsError> {
        if !(0.0..2.0).contains(&omega) || omega == 0.0 {
            return Err(NumericsError::InvalidArgument(format!(
                "ssor: omega must be in (0, 2), got {omega}"
            )));
        }
        let diag = a.diag();
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d == 0.0 || !d.is_finite() {
                return Err(NumericsError::FactorizationFailed {
                    kind: "ssor",
                    index: i,
                });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(Ssor {
            a,
            inv_diag,
            omega,
        })
    }
}

impl<'a> Preconditioner for Ssor<'a> {
    fn dim(&self) -> usize {
        self.a.n_rows()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // M⁻¹ = (2−ω)/ω · (D/ω + U)⁻¹ · D · (D/ω + L)⁻¹
        let n = self.a.n_rows();
        let w = self.omega;
        // Forward sweep: t = (D/ω + L)⁻¹ r, stored in z.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = r[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j < i {
                    s -= v * z[j];
                }
            }
            z[i] = s * self.inv_diag[i] * w;
        }
        // Scale: u = D t.
        for i in 0..n {
            z[i] /= self.inv_diag[i];
        }
        // Backward sweep: z = (D/ω + U)⁻¹ u.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = z[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j > i {
                    s -= v * z[j];
                }
            }
            z[i] = s * self.inv_diag[i] * w;
        }
        let scale = (2.0 - w) / w;
        for zi in z.iter_mut() {
            *zi *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Coo;

    fn lap1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let a = lap1d(4);
        let p = JacobiPrecond::new(&a).unwrap();
        let mut z = [0.0; 4];
        p.apply(&[2.0, 4.0, 6.0, 8.0], &mut z);
        assert_eq!(z, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.dim(), 4);
    }

    #[test]
    fn jacobi_rejects_zero_diag() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = Csr::from_coo(&coo);
        assert!(JacobiPrecond::new(&a).is_err());
    }

    #[test]
    fn ic0_is_exact_for_tridiagonal() {
        // For tridiagonal SPD matrices IC(0) = complete Cholesky, so
        // M⁻¹ r must equal A⁻¹ r exactly.
        let a = lap1d(6);
        let f = IncompleteCholesky::new(&a).unwrap();
        assert_eq!(f.shift(), 0.0);
        let b = [1.0, -1.0, 2.0, 0.0, 1.0, 3.0];
        let mut z = [0.0; 6];
        f.apply(&b, &mut z);
        let x = a.to_dense().solve(&b).unwrap();
        for i in 0..6 {
            assert!((z[i] - x[i]).abs() < 1e-12, "{z:?} vs {x:?}");
        }
    }

    #[test]
    fn ic0_requires_diagonal() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = Csr::from_coo(&coo);
        assert!(IncompleteCholesky::with_shift(&a, 0.0).is_err());
    }

    #[test]
    fn identity_copies() {
        let p = IdentityPrecond::new(3);
        let mut z = [0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, [1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    fn ssor_validates_omega() {
        let a = lap1d(3);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        assert!(Ssor::new(&a, 1.0).is_ok());
    }

    #[test]
    fn ssor_apply_is_spd_like() {
        // M⁻¹ should be symmetric positive definite; check zᵀr > 0 for
        // a few directions (necessary condition) and symmetry via dot
        // products: r1ᵀ M⁻¹ r2 == r2ᵀ M⁻¹ r1.
        let a = lap1d(5);
        let p = Ssor::new(&a, 1.3).unwrap();
        let r1 = [1.0, 0.0, -2.0, 0.5, 1.0];
        let r2 = [0.0, 1.0, 1.0, -1.0, 2.0];
        let mut z1 = [0.0; 5];
        let mut z2 = [0.0; 5];
        p.apply(&r1, &mut z1);
        p.apply(&r2, &mut z2);
        let d11 = crate::vector::dot(&r1, &z1);
        assert!(d11 > 0.0);
        let d12 = crate::vector::dot(&r1, &z2);
        let d21 = crate::vector::dot(&r2, &z1);
        assert!((d12 - d21).abs() < 1e-10 * d12.abs().max(1.0), "{d12} {d21}");
    }
}
