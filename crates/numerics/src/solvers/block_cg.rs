//! Interleaved multi-vector (block multi-RHS) preconditioned conjugate
//! gradients.
//!
//! [`block_pcg_with`] runs `k` *independent* PCG iterations in lock-step over
//! a row-interleaved `n × k` panel: every iteration performs one fused
//! operator application with the `pᵀAp` dot folded into the traversal
//! ([`BlockLinOp::apply_block_dot_into`]), one fused
//! preconditioner application ([`Preconditioner::apply_block`]) and one
//! fused pass per vector recurrence (`α`, `β`, axpys, norms) — each touching
//! every panel row once at unit stride. The recurrences replicate the scalar
//! [`vector`](crate::vector) kernels per column (including the four-lane dot
//! accumulation), and the columns never couple, so column `j` reproduces the
//! scalar [`pcg_with`](super::pcg_with) iteration **bit for bit** — batching
//! is a pure memory-bandwidth optimization, not an algorithmic change.
//!
//! Columns that reach their tolerance are *deflated*: their convergence is
//! recorded, and they stop paying dot products and vector updates while the
//! panel keeps sharing matrix traversals (narrowing the panel would change
//! the memory layout mid-solve for little gain — the traversal is shared
//! anyway).

use super::cg::CgOptions;
use super::precond::Preconditioner;
use super::workspace::BlockKrylovWorkspace;
use super::SolveReport;
use crate::error::NumericsError;
use crate::multivec::{dot_columns, MultiVec};
use crate::sparse::BlockLinOp;

/// Masked per-column axpy over interleaved panels:
/// `y[i,c] += a[c]·x[i,c]` for every column with `active[c]`.
///
/// Each active column runs exactly [`crate::vector::axpy`]'s sequential
/// update order; inactive columns are untouched. The unmasked fast path
/// (all columns active) is branch-free in the inner loop.
fn axpy_columns(a: &[f64], x: &[f64], y: &mut [f64], k: usize, active: &[bool], n_active: usize) {
    if n_active == k {
        for (yrow, xrow) in y.chunks_exact_mut(k).zip(x.chunks_exact(k)) {
            for ((yv, xv), av) in yrow.iter_mut().zip(xrow).zip(a) {
                *yv += av * xv;
            }
        }
    } else {
        for (yrow, xrow) in y.chunks_exact_mut(k).zip(x.chunks_exact(k)) {
            for c in 0..k {
                if active[c] {
                    yrow[c] += a[c] * xrow[c];
                }
            }
        }
    }
}

/// Masked fused per-column `y ← a·x + y` with updated norms, over
/// interleaved panels: for every active column, `y[i,c] += a[c]·x[i,c]` and
/// `res[c] ← ‖y.col(c)‖₂` of the updated column.
///
/// Replicates [`crate::vector::axpy_norm2`] per column exactly (same lane
/// structure as [`dot_columns`], squares of the updated entries). Inactive
/// columns are untouched and their `res` entries are left as-is.
#[allow(clippy::too_many_arguments)]
fn axpy_norm2_columns(
    a: &[f64],
    x: &[f64],
    y: &mut [f64],
    n: usize,
    k: usize,
    active: &[bool],
    n_active: usize,
    lanes: &mut [f64],
    res: &mut [f64],
) {
    let lanes = &mut lanes[..5 * k];
    lanes.fill(0.0);
    let chunks = n / 4;
    let unmasked = n_active == k;
    for t in 0..chunks {
        let base = 4 * t * k;
        for l in 0..4 {
            let xrow = &x[base + l * k..base + (l + 1) * k];
            let yrow = &mut y[base + l * k..base + (l + 1) * k];
            let lane = &mut lanes[l * k..(l + 1) * k];
            if unmasked {
                for c in 0..k {
                    let v = yrow[c] + a[c] * xrow[c];
                    yrow[c] = v;
                    lane[c] += v * v;
                }
            } else {
                for c in 0..k {
                    if active[c] {
                        let v = yrow[c] + a[c] * xrow[c];
                        yrow[c] = v;
                        lane[c] += v * v;
                    }
                }
            }
        }
    }
    for i in 4 * chunks..n {
        let xrow = &x[i * k..(i + 1) * k];
        let yrow = &mut y[i * k..(i + 1) * k];
        let tail = &mut lanes[4 * k..5 * k];
        for c in 0..k {
            if active[c] {
                let v = yrow[c] + a[c] * xrow[c];
                yrow[c] = v;
                tail[c] += v * v;
            }
        }
    }
    for c in 0..k {
        if active[c] {
            res[c] = (lanes[c]
                + lanes[k + c]
                + lanes[2 * k + c]
                + lanes[3 * k + c]
                + lanes[4 * k + c])
                .sqrt();
        }
    }
}

/// Masked per-column `y ← x + b·y` (CG's direction recurrence) over
/// interleaved panels, for every column with `active[c]`; exactly
/// [`crate::vector::xpby`]'s sequential order per active column.
fn xpby_columns(x: &[f64], b: &[f64], y: &mut [f64], k: usize, active: &[bool], n_active: usize) {
    if n_active == k {
        for (yrow, xrow) in y.chunks_exact_mut(k).zip(x.chunks_exact(k)) {
            for ((yv, xv), bv) in yrow.iter_mut().zip(xrow).zip(b) {
                *yv = xv + bv * *yv;
            }
        }
    } else {
        for (yrow, xrow) in y.chunks_exact_mut(k).zip(x.chunks_exact(k)) {
            for c in 0..k {
                if active[c] {
                    yrow[c] = xrow[c] + b[c] * yrow[c];
                }
            }
        }
    }
}

/// Solves `k` SPD systems `A_j x_j = b_j` simultaneously with interleaved
/// preconditioned conjugate gradients.
///
/// `x` holds the initial guesses on entry (warm starting) and the solutions
/// on exit. `reports` is cleared and refilled with one [`SolveReport`] per
/// column; passing the same `Vec` (and workspace) across solves makes the
/// whole call heap-allocation-free after warm-up. Hitting the iteration cap
/// is *not* an error: affected columns report `converged == false`.
///
/// Column `j`'s iteration is bit-identical to the scalar
/// [`pcg_with`](super::pcg_with) on `(A_j, b_j)` — for `k = 1` the two
/// solvers produce the same bits — and results are independent of how the
/// columns are packed into the panel.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] on inconsistent panel
/// shapes, [`NumericsError::Breakdown`] if any column detects a non-SPD
/// operator (`pᵀAp ≤ 0`), and [`NumericsError::NonFinite`] on NaN/Inf
/// contamination. An error aborts the whole panel (matching the scalar
/// solver's contract for each column).
///
/// # Example
///
/// Eight shifted unit loads against one matrix, solved in a single panel:
///
/// ```
/// use etherm_numerics::multivec::MultiVec;
/// use etherm_numerics::solvers::{
///     block_pcg_with, BlockKrylovWorkspace, CgOptions, JacobiPrecond,
/// };
/// use etherm_numerics::sparse::{Coo, Csr};
///
/// let n = 24;
/// let mut coo = Coo::new(n, n);
/// for i in 0..n {
///     coo.push(i, i, 2.0);
///     if i + 1 < n {
///         coo.push(i, i + 1, -1.0);
///         coo.push(i + 1, i, -1.0);
///     }
/// }
/// let a = Csr::from_coo(&coo);
/// let precond = JacobiPrecond::new(&a).unwrap();
///
/// let k = 8;
/// let mut b = MultiVec::zeros(n, k);
/// for j in 0..k {
///     b.set(2 * j, j, 1.0);
/// }
/// let mut x = MultiVec::zeros(n, k);
/// let mut ws = BlockKrylovWorkspace::new();
/// let mut reports = Vec::new();
/// block_pcg_with(&a, &b, &mut x, &precond, &CgOptions::default(), &mut ws, &mut reports)
///     .unwrap();
/// assert_eq!(reports.len(), k);
/// assert!(reports.iter().all(|r| r.converged));
/// ```
pub fn block_pcg_with<A: BlockLinOp + ?Sized, P: Preconditioner + ?Sized>(
    a: &A,
    b: &MultiVec,
    x: &mut MultiVec,
    precond: &P,
    options: &CgOptions,
    ws: &mut BlockKrylovWorkspace,
    reports: &mut Vec<SolveReport>,
) -> Result<(), NumericsError> {
    let n = a.block_dim();
    let k = b.n_cols();
    if b.n_rows() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "block-pcg rhs",
            expected: n,
            found: b.n_rows(),
        });
    }
    if x.n_rows() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "block-pcg initial guess",
            expected: n,
            found: x.n_rows(),
        });
    }
    if x.n_cols() != k {
        return Err(NumericsError::DimensionMismatch {
            context: "block-pcg panel width",
            expected: k,
            found: x.n_cols(),
        });
    }
    if precond.dim() != n {
        return Err(NumericsError::DimensionMismatch {
            context: "block-pcg preconditioner",
            expected: n,
            found: precond.dim(),
        });
    }
    reports.clear();
    reports.resize(k, SolveReport::trivial());
    if k == 0 || n == 0 {
        return Ok(());
    }
    ws.ensure(n, k);

    // Per-column convergence targets from ‖b.col(j)‖₂ (one fused pass).
    dot_columns(b.as_slice(), b.as_slice(), n, k, &mut ws.lanes, &mut ws.pap);
    for j in 0..k {
        let norm_b = ws.pap[j].sqrt();
        if !norm_b.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "block-pcg",
                detail: "right-hand side",
            });
        }
        ws.target[j] = (options.tol_rel * norm_b).max(options.tol_abs);
    }

    // Initial residual panel R = B − A X.
    a.apply_block_into(x, &mut ws.r);
    for (ri, bi) in ws.r.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *ri = bi - *ri;
    }
    let rs = ws.r.as_slice();
    dot_columns(rs, rs, n, k, &mut ws.lanes, &mut ws.pap);
    let mut n_active = 0usize;
    for j in 0..k {
        let res = ws.pap[j].sqrt();
        if !res.is_finite() {
            return Err(NumericsError::NonFinite {
                solver: "block-pcg",
                detail: "initial residual",
            });
        }
        ws.res[j] = res;
        if res <= ws.target[j] {
            ws.active[j] = false;
            reports[j] = SolveReport {
                converged: true,
                iterations: 0,
                residual: res,
            };
        } else {
            ws.active[j] = true;
            n_active += 1;
        }
    }
    if n_active == 0 {
        return Ok(());
    }

    precond.apply_block(&ws.r, &mut ws.z);
    ws.p.copy_panel_from(&ws.z);
    dot_columns(
        ws.r.as_slice(),
        ws.z.as_slice(),
        n,
        k,
        &mut ws.lanes,
        &mut ws.rz,
    );

    let cap = options.cap(n);
    for iter in 1..=cap {
        // One shared traversal advances the whole panel — deflated columns
        // ride along for free — and emits the per-column pᵀAp dots on the
        // way out (the serial packed kernel folds them into the traversal).
        a.apply_block_dot_into(&ws.p, &mut ws.ap, &mut ws.lanes, &mut ws.pap);
        for j in 0..k {
            if !ws.active[j] {
                continue;
            }
            let pap = ws.pap[j];
            if !pap.is_finite() {
                return Err(NumericsError::NonFinite {
                    solver: "block-pcg",
                    detail: "pᵀAp",
                });
            }
            if pap <= 0.0 {
                return Err(NumericsError::Breakdown {
                    solver: "block-pcg",
                    detail: "pᵀAp not positive: operator is not SPD",
                });
            }
            let alpha = ws.rz[j] / pap;
            ws.alpha[j] = alpha;
            ws.coef[j] = -alpha;
        }
        axpy_columns(
            &ws.alpha,
            ws.p.as_slice(),
            x.as_mut_slice(),
            k,
            &ws.active,
            n_active,
        );
        axpy_norm2_columns(
            &ws.coef,
            ws.ap.as_slice(),
            ws.r.as_mut_slice(),
            n,
            k,
            &ws.active,
            n_active,
            &mut ws.lanes,
            &mut ws.res,
        );
        for j in 0..k {
            if !ws.active[j] {
                continue;
            }
            let res = ws.res[j];
            if !res.is_finite() {
                return Err(NumericsError::NonFinite {
                    solver: "block-pcg",
                    detail: "residual",
                });
            }
            if res <= ws.target[j] {
                ws.active[j] = false;
                n_active -= 1;
                reports[j] = SolveReport {
                    converged: true,
                    iterations: iter,
                    residual: res,
                };
            }
        }
        if n_active == 0 {
            return Ok(());
        }
        precond.apply_block(&ws.r, &mut ws.z);
        dot_columns(
            ws.r.as_slice(),
            ws.z.as_slice(),
            n,
            k,
            &mut ws.lanes,
            &mut ws.pap,
        );
        for j in 0..k {
            if ws.active[j] {
                let rz_new = ws.pap[j];
                ws.coef[j] = rz_new / ws.rz[j];
                ws.rz[j] = rz_new;
            }
        }
        xpby_columns(
            ws.z.as_slice(),
            &ws.coef,
            ws.p.as_mut_slice(),
            k,
            &ws.active,
            n_active,
        );
    }
    for j in 0..k {
        if ws.active[j] {
            reports[j] = SolveReport {
                converged: false,
                iterations: cap,
                residual: ws.res[j],
            };
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::precond::{IncompleteCholesky, JacobiPrecond, Ssor};
    use crate::solvers::workspace::KrylovWorkspace;
    use crate::solvers::{pcg_with, AmgOptions, AmgPrecond};
    use crate::sparse::{Coo, Csr, CsrBatch};

    fn lap2d(nx: usize) -> Csr {
        let n = nx * nx;
        let mut coo = Coo::new(n, n);
        for i in 0..nx {
            for j in 0..nx {
                let p = i * nx + j;
                coo.push(p, p, 4.0);
                if i + 1 < nx {
                    coo.push(p, p + nx, -1.0);
                    coo.push(p + nx, p, -1.0);
                }
                if j + 1 < nx {
                    coo.push(p, p + 1, -1.0);
                    coo.push(p + 1, p, -1.0);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    fn rhs_panel(n: usize, k: usize) -> MultiVec {
        let mut b = MultiVec::zeros(n, k);
        for j in 0..k {
            for i in 0..n {
                b.set(i, j, (((i * 17 + j * 31) % 29) as f64).sin() + 0.1);
            }
        }
        b
    }

    #[test]
    fn k1_is_bit_identical_to_scalar_pcg() {
        let a = lap2d(9);
        let n = a.n_rows();
        let b = rhs_panel(n, 1);
        let opts = CgOptions::default();
        // Scalar reference.
        let mut x_ref = vec![0.0; n];
        let mut kw = KrylovWorkspace::new();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let rep_ref = pcg_with(&a, &b.col_vec(0), &mut x_ref, &jacobi, &opts, &mut kw).unwrap();
        // Block path, k = 1.
        let mut x = MultiVec::zeros(n, 1);
        let mut ws = BlockKrylovWorkspace::new();
        let mut reports = Vec::new();
        block_pcg_with(&a, &b, &mut x, &jacobi, &opts, &mut ws, &mut reports).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].converged, rep_ref.converged);
        assert_eq!(reports[0].iterations, rep_ref.iterations);
        assert_eq!(reports[0].residual.to_bits(), rep_ref.residual.to_bits());
        assert_eq!(x.col_vec(0), x_ref);
    }

    #[test]
    fn every_column_matches_its_scalar_solve_bitwise() {
        // Packing-order independence falls out of this: each column equals
        // the scalar solve of its own (b, precond) pair regardless of where
        // it sits in the panel.
        let a = lap2d(8);
        let n = a.n_rows();
        let opts = CgOptions::default();
        let ic = IncompleteCholesky::with_fill(&a, 1).unwrap();
        let ssor = Ssor::new(&a, 1.2).unwrap();
        let amg = AmgPrecond::new(&a, AmgOptions::default()).unwrap();
        let ps: [&dyn Preconditioner; 3] = [&ic, &ssor, &amg];
        for (pi, p) in ps.iter().enumerate() {
            for k in [2usize, 5] {
                let b = rhs_panel(n, k);
                let mut x = MultiVec::zeros(n, k);
                let mut ws = BlockKrylovWorkspace::new();
                let mut reports = Vec::new();
                block_pcg_with(&a, &b, &mut x, *p, &opts, &mut ws, &mut reports).unwrap();
                for j in 0..k {
                    let mut x_ref = vec![0.0; n];
                    let mut kw = KrylovWorkspace::new();
                    let rep = pcg_with(&a, &b.col_vec(j), &mut x_ref, *p, &opts, &mut kw).unwrap();
                    assert!(rep.converged);
                    assert_eq!(
                        x.col_vec(j),
                        x_ref,
                        "precond {pi}, k = {k}, column {j} diverged from scalar"
                    );
                    assert_eq!(reports[j].iterations, rep.iterations);
                }
            }
        }
    }

    #[test]
    fn csr_batch_columns_match_per_matrix_scalar_solves() {
        let base = lap2d(7);
        let n = base.n_rows();
        let mats_owned: Vec<Csr> = (0..4)
            .map(|j| {
                let mut m = base.clone();
                m.scale(1.0 + 0.1 * j as f64);
                m
            })
            .collect();
        let mats: Vec<&Csr> = mats_owned.iter().collect();
        let batch = CsrBatch::new(mats.clone(), 1);
        // Shared preconditioner built from the first matrix: legitimate for
        // CG (affects iteration counts, not converged answers), and exactly
        // what the ensemble fast path does.
        let jacobi = JacobiPrecond::new(mats[0]).unwrap();
        let opts = CgOptions::default();
        let b = rhs_panel(n, 4);
        let mut x = MultiVec::zeros(n, 4);
        let mut ws = BlockKrylovWorkspace::new();
        let mut reports = Vec::new();
        block_pcg_with(&batch, &b, &mut x, &jacobi, &opts, &mut ws, &mut reports).unwrap();
        for j in 0..4 {
            assert!(reports[j].converged);
            let mut x_ref = vec![0.0; n];
            let mut kw = KrylovWorkspace::new();
            pcg_with(mats[j], &b.col_vec(j), &mut x_ref, &jacobi, &opts, &mut kw).unwrap();
            assert_eq!(x.col_vec(j), x_ref, "column {j}");
        }
    }

    #[test]
    fn deflation_converges_columns_independently() {
        let a = lap2d(6);
        let n = a.n_rows();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let opts = CgOptions::default();
        // Column 0 starts at the exact solution (0 iterations); column 1
        // needs real work — deflation must keep them independent.
        let mut b = rhs_panel(n, 2);
        b.copy_col_from(0, &vec![0.0; n]);
        let mut x = MultiVec::zeros(n, 2);
        let mut ws = BlockKrylovWorkspace::new();
        let mut reports = Vec::new();
        block_pcg_with(&a, &b, &mut x, &jacobi, &opts, &mut ws, &mut reports).unwrap();
        assert!(reports[0].converged);
        assert_eq!(reports[0].iterations, 0);
        assert!(reports[1].converged);
        assert!(reports[1].iterations > 0);
        assert_eq!(x.col_vec(0), vec![0.0; n]);
    }

    #[test]
    fn iteration_cap_reports_unconverged_columns() {
        let a = lap2d(8);
        let n = a.n_rows();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let opts = CgOptions {
            max_iter: 2,
            ..CgOptions::default()
        };
        let b = rhs_panel(n, 3);
        let mut x = MultiVec::zeros(n, 3);
        let mut ws = BlockKrylovWorkspace::new();
        let mut reports = Vec::new();
        block_pcg_with(&a, &b, &mut x, &jacobi, &opts, &mut ws, &mut reports).unwrap();
        for r in &reports {
            assert!(!r.converged);
            assert_eq!(r.iterations, 2);
            assert!(r.residual > 0.0);
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let a = lap2d(4);
        let n = a.n_rows();
        let jacobi = JacobiPrecond::new(&a).unwrap();
        let opts = CgOptions::default();
        let mut ws = BlockKrylovWorkspace::new();
        let mut reports = Vec::new();
        // Wrong rhs rows.
        let b_bad = MultiVec::zeros(n + 1, 2);
        let mut x = MultiVec::zeros(n, 2);
        assert!(block_pcg_with(&a, &b_bad, &mut x, &jacobi, &opts, &mut ws, &mut reports).is_err());
        // Wrong panel width.
        let b = MultiVec::zeros(n, 2);
        let mut x_bad = MultiVec::zeros(n, 3);
        assert!(block_pcg_with(&a, &b, &mut x_bad, &jacobi, &opts, &mut ws, &mut reports).is_err());
        // Empty panel is trivially fine.
        let b0 = MultiVec::zeros(n, 0);
        let mut x0 = MultiVec::zeros(n, 0);
        block_pcg_with(&a, &b0, &mut x0, &jacobi, &opts, &mut ws, &mut reports).unwrap();
        assert!(reports.is_empty());
    }
}
