//! Linear solvers: preconditioned Krylov methods and a tridiagonal direct
//! solver.
//!
//! All discretized FIT systems in this project are symmetric positive
//! definite after Dirichlet elimination (Laplacian + diagonal Robin terms +
//! symmetric two-terminal wire stamps), so preconditioned conjugate gradients
//! ([`pcg`]) is the workhorse. [`bicgstab`] is provided for general
//! (non-symmetric) systems and for cross-checks, [`solve_tridiagonal`] for
//! the 1D analytic wire chains.

mod amg;
mod bicgstab;
mod block_cg;
mod cg;
pub mod fault;
mod gmres;
mod precond;
mod skyline;
mod tridiag;
mod workspace;

pub use amg::{AmgOptions, AmgPrecond, AmgSmoother};
pub use bicgstab::{bicgstab, bicgstab_with};
pub use block_cg::block_pcg_with;
pub use cg::{cg, pcg, pcg_with, CgOptions};
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan, FaultyLinOp};
pub use gmres::{gmres, gmres_with, GmresOptions};
pub use precond::{IdentityPrecond, IncompleteCholesky, JacobiPrecond, Preconditioner, Ssor};
pub use skyline::SkylineCholesky;
pub use tridiag::solve_tridiagonal;
pub use workspace::{BlockKrylovWorkspace, GmresWorkspace, KrylovWorkspace};

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Whether the requested tolerance was reached.
    pub converged: bool,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final true residual norm `‖b − A x‖₂`.
    pub residual: f64,
}

impl SolveReport {
    /// A zero-iteration report for trivially satisfied systems.
    pub fn trivial() -> Self {
        SolveReport {
            converged: true,
            iterations: 0,
            residual: 0.0,
        }
    }
}

impl std::fmt::Display for SolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in {} iterations (residual {:.3e})",
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.iterations,
            self.residual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display() {
        let r = SolveReport {
            converged: true,
            iterations: 7,
            residual: 1e-11,
        };
        let s = r.to_string();
        assert!(s.contains("converged") && s.contains('7'));
        assert!(SolveReport::trivial().converged);
    }
}
