//! Reusable scratch buffers for the Krylov solvers.

use crate::multivec::MultiVec;

/// Scratch vectors for [`pcg`](crate::solvers::pcg) /
/// [`bicgstab`](crate::solvers::bicgstab), reusable across solves.
///
/// The Picard/implicit-Euler hot path performs thousands of linear solves on
/// systems of identical size; handing the same workspace to every solve makes
/// the Krylov iterations allocation-free after the first call ([`pcg`] needs
/// the first four buffers, [`bicgstab`] all eight). Buffers are grown on
/// demand and never shrunk, so alternating between subsystems of different
/// sizes also settles into a steady state without reallocation.
///
/// [`pcg`]: crate::solvers::pcg
/// [`bicgstab`]: crate::solvers::bicgstab
#[derive(Debug, Clone, Default)]
pub struct KrylovWorkspace {
    /// Residual `r`.
    pub(super) r: Vec<f64>,
    /// Preconditioned residual `z` (BiCGStab: preconditioned direction).
    pub(super) z: Vec<f64>,
    /// Search direction `p`.
    pub(super) p: Vec<f64>,
    /// Operator product `A·p`.
    pub(super) ap: Vec<f64>,
    /// BiCGStab shadow residual `r₀`.
    pub(super) r0: Vec<f64>,
    /// BiCGStab intermediate residual `s`.
    pub(super) s: Vec<f64>,
    /// BiCGStab preconditioned `s`.
    pub(super) sh: Vec<f64>,
    /// BiCGStab product `A·ŝ`.
    pub(super) t: Vec<f64>,
}

impl KrylovWorkspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        KrylovWorkspace::default()
    }

    /// A workspace pre-sized for `n`-dimensional solves (both solvers run
    /// allocation-free from the very first call).
    pub fn with_dim(n: usize) -> Self {
        let mut ws = KrylovWorkspace::default();
        ws.ensure(n);
        ws
    }

    /// Current buffer dimension.
    pub fn dim(&self) -> usize {
        self.r.len()
    }

    /// Grows (never shrinks) every buffer to length `n`.
    pub(super) fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.r,
            &mut self.z,
            &mut self.p,
            &mut self.ap,
            &mut self.r0,
            &mut self.s,
            &mut self.sh,
            &mut self.t,
        ] {
            if buf.len() < n {
                buf.resize(n, 0.0);
            }
        }
    }
}

/// Scratch panels for [`block_pcg_with`](crate::solvers::block_pcg_with),
/// reusable across solves.
///
/// The block solver advances an `n × k` panel of right-hand sides per
/// iteration, so its scratch state is four [`MultiVec`] panels plus per-column
/// convergence bookkeeping. Panels grow on demand and never shrink
/// ([`MultiVec::ensure`]): reusing the workspace across same-shaped solves —
/// the batched ensemble hot path — is heap-allocation-free after warm-up,
/// matching the scalar [`KrylovWorkspace`] contract.
#[derive(Debug, Clone, Default)]
pub struct BlockKrylovWorkspace {
    /// Residual panel `R`.
    pub(super) r: MultiVec,
    /// Preconditioned residual panel `Z`.
    pub(super) z: MultiVec,
    /// Search direction panel `P`.
    pub(super) p: MultiVec,
    /// Operator product panel `A·P`.
    pub(super) ap: MultiVec,
    /// Per-column `rᵀz` inner products.
    pub(super) rz: Vec<f64>,
    /// Per-column convergence targets.
    pub(super) target: Vec<f64>,
    /// Per-column residual norms.
    pub(super) res: Vec<f64>,
    /// Per-column active masks (`false` once converged and deflated).
    pub(super) active: Vec<bool>,
    /// Per-column `pᵀAp` inner products (also reused for `bᵀb` / `rᵀz`).
    pub(super) pap: Vec<f64>,
    /// Per-column step lengths `α`.
    pub(super) alpha: Vec<f64>,
    /// Per-column update coefficients (`−α`, then `β`).
    pub(super) coef: Vec<f64>,
    /// Lane accumulators for the fused four-lane dot/norm reductions
    /// (four lanes plus a tail lane, `5·k` entries).
    pub(super) lanes: Vec<f64>,
}

impl BlockKrylovWorkspace {
    /// An empty workspace; panels are allocated lazily on first use.
    pub fn new() -> Self {
        BlockKrylovWorkspace::default()
    }

    /// A workspace pre-sized for `n × k` panel solves (the block solver runs
    /// allocation-free from the very first call).
    pub fn with_shape(n: usize, k: usize) -> Self {
        let mut ws = BlockKrylovWorkspace::default();
        ws.ensure(n, k);
        ws
    }

    /// Grows (never shrinks) every panel to `n × k` and the per-column
    /// bookkeeping to width `k`.
    pub(super) fn ensure(&mut self, n: usize, k: usize) {
        for panel in [&mut self.r, &mut self.z, &mut self.p, &mut self.ap] {
            panel.ensure(n, k);
        }
        for buf in [
            &mut self.rz,
            &mut self.target,
            &mut self.res,
            &mut self.pap,
            &mut self.alpha,
            &mut self.coef,
        ] {
            if buf.len() < k {
                buf.resize(k, 0.0);
            }
        }
        if self.active.len() < k {
            self.active.resize(k, false);
        }
        if self.lanes.len() < 5 * k {
            self.lanes.resize(5 * k, 0.0);
        }
    }
}

/// Scratch buffers for [`gmres_with`](crate::solvers::gmres_with), reusable
/// across solves.
///
/// GMRES(m) keeps a full Krylov basis of `m + 1` vectors plus the Hessenberg
/// and rotation coefficients, so it gets its own workspace type rather than
/// piggybacking on [`KrylovWorkspace`]. Buffers grow on demand (both in the
/// system dimension `n` and the restart length `m`) and never shrink.
#[derive(Debug, Clone, Default)]
pub struct GmresWorkspace {
    /// Residual `r`.
    pub(super) r: Vec<f64>,
    /// Operator product `w = A·M⁻¹·v`.
    pub(super) w: Vec<f64>,
    /// Preconditioned vector `z = M⁻¹·v`.
    pub(super) z: Vec<f64>,
    /// Accumulated solution update `V·y`.
    pub(super) update: Vec<f64>,
    /// Krylov basis `v_0 … v_m`.
    pub(super) basis: Vec<Vec<f64>>,
    /// Hessenberg matrix, row-major `(m+1) × m` (entry `(j, k)` lives at
    /// `j * m + k`).
    pub(super) hess: Vec<f64>,
    /// Givens cosines.
    pub(super) cs: Vec<f64>,
    /// Givens sines.
    pub(super) sn: Vec<f64>,
    /// Rotated residual norms `g`.
    pub(super) g: Vec<f64>,
    /// Least-squares solution `y`.
    pub(super) y: Vec<f64>,
}

impl GmresWorkspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        GmresWorkspace::default()
    }

    /// A workspace pre-sized for `n`-dimensional solves with restart length
    /// `m` (the solver runs allocation-free from the very first call).
    pub fn with_dims(n: usize, m: usize) -> Self {
        let mut ws = GmresWorkspace::default();
        ws.ensure(n, m);
        ws
    }

    /// Grows (never shrinks) the buffers for dimension `n` and restart `m`.
    pub(super) fn ensure(&mut self, n: usize, m: usize) {
        for buf in [&mut self.r, &mut self.w, &mut self.z, &mut self.update] {
            if buf.len() < n {
                buf.resize(n, 0.0);
            }
        }
        if self.basis.len() < m + 1 {
            self.basis.resize_with(m + 1, Vec::new);
        }
        for v in &mut self.basis {
            if v.len() < n {
                v.resize(n, 0.0);
            }
        }
        if self.hess.len() < (m + 1) * m {
            self.hess.resize((m + 1) * m, 0.0);
        }
        for buf in [&mut self.cs, &mut self.sn, &mut self.y] {
            if buf.len() < m {
                buf.resize(m, 0.0);
            }
        }
        if self.g.len() < m + 1 {
            self.g.resize(m + 1, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmres_workspace_grows_and_never_shrinks() {
        let mut ws = GmresWorkspace::new();
        ws.ensure(10, 5);
        assert_eq!(ws.r.len(), 10);
        assert_eq!(ws.basis.len(), 6);
        assert!(ws.basis.iter().all(|v| v.len() == 10));
        assert_eq!(ws.hess.len(), 30);
        ws.ensure(4, 2);
        assert_eq!(ws.r.len(), 10);
        assert_eq!(ws.basis.len(), 6);
        let ws2 = GmresWorkspace::with_dims(8, 3);
        assert_eq!(ws2.g.len(), 4);
        assert_eq!(ws2.y.len(), 3);
    }

    #[test]
    fn block_workspace_grows_and_never_shrinks() {
        let mut ws = BlockKrylovWorkspace::new();
        ws.ensure(10, 4);
        assert_eq!(ws.r.n_rows(), 10);
        assert_eq!(ws.r.n_cols(), 4);
        assert_eq!(ws.rz.len(), 4);
        assert_eq!(ws.active.len(), 4);
        ws.ensure(3, 2);
        assert_eq!(ws.rz.len(), 4, "bookkeeping never shrinks");
        let ws2 = BlockKrylovWorkspace::with_shape(5, 3);
        assert_eq!(ws2.ap.n_rows(), 5);
        assert_eq!(ws2.target.len(), 3);
    }

    #[test]
    fn ensure_grows_and_never_shrinks() {
        let mut ws = KrylovWorkspace::new();
        assert_eq!(ws.dim(), 0);
        ws.ensure(10);
        assert_eq!(ws.dim(), 10);
        ws.ensure(4);
        assert_eq!(ws.dim(), 10);
        let ws2 = KrylovWorkspace::with_dim(7);
        assert_eq!(ws2.dim(), 7);
    }
}
