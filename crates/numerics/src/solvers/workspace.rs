//! Reusable scratch buffers for the Krylov solvers.

/// Scratch vectors for [`pcg`](crate::solvers::pcg) /
/// [`bicgstab`](crate::solvers::bicgstab), reusable across solves.
///
/// The Picard/implicit-Euler hot path performs thousands of linear solves on
/// systems of identical size; handing the same workspace to every solve makes
/// the Krylov iterations allocation-free after the first call ([`pcg`] needs
/// the first four buffers, [`bicgstab`] all eight). Buffers are grown on
/// demand and never shrunk, so alternating between subsystems of different
/// sizes also settles into a steady state without reallocation.
///
/// [`pcg`]: crate::solvers::pcg
/// [`bicgstab`]: crate::solvers::bicgstab
#[derive(Debug, Clone, Default)]
pub struct KrylovWorkspace {
    /// Residual `r`.
    pub(super) r: Vec<f64>,
    /// Preconditioned residual `z` (BiCGStab: preconditioned direction).
    pub(super) z: Vec<f64>,
    /// Search direction `p`.
    pub(super) p: Vec<f64>,
    /// Operator product `A·p`.
    pub(super) ap: Vec<f64>,
    /// BiCGStab shadow residual `r₀`.
    pub(super) r0: Vec<f64>,
    /// BiCGStab intermediate residual `s`.
    pub(super) s: Vec<f64>,
    /// BiCGStab preconditioned `s`.
    pub(super) sh: Vec<f64>,
    /// BiCGStab product `A·ŝ`.
    pub(super) t: Vec<f64>,
}

impl KrylovWorkspace {
    /// An empty workspace; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        KrylovWorkspace::default()
    }

    /// A workspace pre-sized for `n`-dimensional solves (both solvers run
    /// allocation-free from the very first call).
    pub fn with_dim(n: usize) -> Self {
        let mut ws = KrylovWorkspace::default();
        ws.ensure(n);
        ws
    }

    /// Current buffer dimension.
    pub fn dim(&self) -> usize {
        self.r.len()
    }

    /// Grows (never shrinks) every buffer to length `n`.
    pub(super) fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.r,
            &mut self.z,
            &mut self.p,
            &mut self.ap,
            &mut self.r0,
            &mut self.s,
            &mut self.sh,
            &mut self.t,
        ] {
            if buf.len() < n {
                buf.resize(n, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_and_never_shrinks() {
        let mut ws = KrylovWorkspace::new();
        assert_eq!(ws.dim(), 0);
        ws.ensure(10);
        assert_eq!(ws.dim(), 10);
        ws.ensure(4);
        assert_eq!(ws.dim(), 10);
        let ws2 = KrylovWorkspace::with_dim(7);
        assert_eq!(ws2.dim(), 7);
    }
}
