//! ASCII heat maps (the Fig. 8 spatial-temperature renderer).

/// Renders a 2D scalar field as an ASCII intensity map.
///
/// Values are mapped onto a 10-step character ramp from coldest (` `) to
/// hottest (`@`). Rows are printed with the *last* row first so that the
/// y axis points up, matching the usual plot orientation.
///
/// # Example
///
/// ```
/// use etherm_report::HeatMap;
///
/// let values = vec![0.0, 1.0, 2.0, 3.0]; // 2×2, row-major
/// let map = HeatMap::new(2, 2, values).unwrap();
/// let s = map.render();
/// assert!(s.contains('@'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeatMap {
    nx: usize,
    ny: usize,
    values: Vec<f64>,
}

/// Character ramp from cold to hot.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

impl HeatMap {
    /// Creates a heat map over an `nx × ny` row-major grid of values.
    ///
    /// # Errors
    ///
    /// Returns an error string if `values.len() != nx·ny` or it is empty.
    pub fn new(nx: usize, ny: usize, values: Vec<f64>) -> Result<Self, String> {
        if nx == 0 || ny == 0 || values.len() != nx * ny {
            return Err(format!(
                "heat map needs nx·ny = {} values, got {}",
                nx * ny,
                values.len()
            ));
        }
        Ok(HeatMap { nx, ny, values })
    }

    /// Minimum and maximum of the data.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Renders with the data range as the color scale.
    pub fn render(&self) -> String {
        let (lo, hi) = self.range();
        self.render_scaled(lo, hi)
    }

    /// Renders with an explicit color scale `[lo, hi]` (values clamp).
    pub fn render_scaled(&self, lo: f64, hi: f64) -> String {
        let span = if hi > lo { hi - lo } else { 1.0 };
        let mut out = String::new();
        for j in (0..self.ny).rev() {
            for i in 0..self.nx {
                let v = self.values[j * self.nx + i];
                let f = ((v - lo) / span).clamp(0.0, 1.0);
                let idx = ((f * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx]);
                out.push(RAMP[idx]); // double width ≈ square aspect
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "scale: '{}' = {:.2} .. '{}' = {:.2}\n",
            RAMP[0],
            lo,
            RAMP[RAMP.len() - 1],
            hi
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_map_to_ramp_ends() {
        let m = HeatMap::new(3, 1, vec![0.0, 0.5, 1.0]).unwrap();
        let s = m.render();
        let first_line = s.lines().next().unwrap();
        assert!(first_line.starts_with("  ")); // cold = spaces
        assert!(first_line.ends_with("@@"));
        assert_eq!(m.range(), (0.0, 1.0));
    }

    #[test]
    fn y_axis_points_up() {
        // Row-major 1×2: values[0] is y=0 (bottom), values[1] is y=1 (top).
        let m = HeatMap::new(1, 2, vec![0.0, 1.0]).unwrap();
        let s = m.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "@@"); // top row printed first = hot
        assert_eq!(lines[1], "  ");
    }

    #[test]
    fn constant_field_renders() {
        let m = HeatMap::new(2, 2, vec![5.0; 4]).unwrap();
        let s = m.render();
        assert!(s.contains("scale"));
    }

    #[test]
    fn scaled_clamps() {
        let m = HeatMap::new(2, 1, vec![-10.0, 10.0]).unwrap();
        let s = m.render_scaled(0.0, 1.0);
        let first = s.lines().next().unwrap();
        assert_eq!(first, "  @@");
    }

    #[test]
    fn validation() {
        assert!(HeatMap::new(2, 2, vec![0.0; 3]).is_err());
        assert!(HeatMap::new(0, 2, vec![]).is_err());
    }
}
