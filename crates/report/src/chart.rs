//! ASCII line charts with optional symmetric error bars and threshold
//! lines.

/// Rendering options for [`LineChart`].
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Plot area width in characters (excluding the axis labels).
    pub width: usize,
    /// Plot area height in rows.
    pub height: usize,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 70,
            height: 20,
            x_label: "x".into(),
            y_label: "y".into(),
        }
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
struct Series {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Half-width of the error bar per point (empty = none).
    bars: Vec<f64>,
    marker: char,
}

/// A multi-series ASCII line chart, the renderer behind the Fig. 5/7
/// reproductions.
///
/// # Example
///
/// ```
/// use etherm_report::{ChartOptions, LineChart};
///
/// let mut chart = LineChart::new(ChartOptions::default());
/// let xs: Vec<f64> = (0..=50).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&t| 300.0 + 200.0 * (1.0 - (-t / 10.0_f64).exp())).collect();
/// chart.add_series(&xs, &ys, '*');
/// chart.add_threshold(523.0, "T_crit");
/// let text = chart.render();
/// assert!(text.contains("T_crit"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    options: ChartOptions,
    series: Vec<Series>,
    thresholds: Vec<(f64, String)>,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(options: ChartOptions) -> Self {
        LineChart {
            options,
            series: Vec::new(),
            thresholds: Vec::new(),
        }
    }

    /// Adds a series without error bars.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or are empty.
    pub fn add_series(&mut self, xs: &[f64], ys: &[f64], marker: char) {
        assert_eq!(xs.len(), ys.len(), "series length mismatch");
        assert!(!xs.is_empty(), "empty series");
        self.series.push(Series {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            bars: Vec::new(),
            marker,
        });
    }

    /// Adds a series with symmetric error bars (`ys[i] ± bars[i]`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn add_series_with_bars(&mut self, xs: &[f64], ys: &[f64], bars: &[f64], marker: char) {
        assert_eq!(xs.len(), ys.len(), "series length mismatch");
        assert_eq!(xs.len(), bars.len(), "bars length mismatch");
        assert!(!xs.is_empty(), "empty series");
        self.series.push(Series {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            bars: bars.to_vec(),
            marker,
        });
    }

    /// Adds a horizontal threshold line (e.g. the critical temperature).
    pub fn add_threshold(&mut self, y: f64, label: impl Into<String>) {
        self.thresholds.push((y, label.into()));
    }

    /// Renders the chart to a multi-line string.
    ///
    /// # Panics
    ///
    /// Panics if no series was added.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "render: no series");
        let w = self.options.width.max(10);
        let h = self.options.height.max(5);

        // Data ranges (include error bars and thresholds).
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for (i, (&x, &y)) in s.xs.iter().zip(&s.ys).enumerate() {
                let bar = s.bars.get(i).copied().unwrap_or(0.0);
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y - bar);
                y_max = y_max.max(y + bar);
            }
        }
        for &(y, _) in &self.thresholds {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (x_max - x_min).abs() < 1e-300 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-300 {
            y_max = y_min + 1.0;
        }
        // 5 % padding on y.
        let pad = 0.05 * (y_max - y_min);
        y_min -= pad;
        y_max += pad;

        let col_of = |x: f64| -> usize {
            (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize
        };
        let row_of = |y: f64| -> usize {
            let f = (y - y_min) / (y_max - y_min);
            ((1.0 - f) * (h - 1) as f64).round() as usize
        };

        let mut canvas = vec![vec![' '; w]; h];

        // Thresholds first (lowest z-order).
        for &(y, _) in &self.thresholds {
            if y >= y_min && y <= y_max {
                let r = row_of(y);
                for c in canvas[r].iter_mut() {
                    *c = '-';
                }
            }
        }
        // Error bars.
        for s in &self.series {
            for (i, (&x, &y)) in s.xs.iter().zip(&s.ys).enumerate() {
                let bar = s.bars.get(i).copied().unwrap_or(0.0);
                if bar <= 0.0 {
                    continue;
                }
                let col = col_of(x);
                let r_top = row_of((y + bar).min(y_max));
                let r_bot = row_of((y - bar).max(y_min));
                for r in r_top..=r_bot {
                    if canvas[r][col] == ' ' || canvas[r][col] == '-' {
                        canvas[r][col] = '|';
                    }
                }
            }
        }
        // Data points (highest z-order).
        for s in &self.series {
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                canvas[row_of(y)][col_of(x)] = s.marker;
            }
        }

        // Compose with y-axis labels.
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.options.y_label));
        for (r, row) in canvas.iter().enumerate() {
            let y_here = y_max - (y_max - y_min) * r as f64 / (h - 1) as f64;
            let line: String = row.iter().collect();
            // Annotate thresholds on the right margin.
            let mut annot = String::new();
            for (y, label) in &self.thresholds {
                if row_of(*y) == r {
                    annot = format!("  <- {label}");
                }
            }
            out.push_str(&format!("{y_here:>10.2} |{line}{annot}\n"));
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(w)));
        out.push_str(&format!(
            "{:>10}  {:<w$}\n",
            "",
            format!("{:.3} .. {:.3} ({})", x_min, x_max, self.options.x_label),
            w = w
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let mut chart = LineChart::new(ChartOptions {
            width: 40,
            height: 10,
            x_label: "t (s)".into(),
            y_label: "T (K)".into(),
        });
        let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 300.0 + 10.0 * x).collect();
        chart.add_series(&xs, &ys, '*');
        let text = chart.render();
        assert!(text.contains('*'));
        assert!(text.contains("T (K)"));
        assert!(text.contains("t (s)"));
        // Rough shape: the first data row (max) contains a marker at the
        // right side, the last at the left.
        let rows: Vec<&str> = text.lines().collect();
        assert!(rows.len() >= 12);
    }

    #[test]
    fn error_bars_and_threshold_appear() {
        let mut chart = LineChart::new(ChartOptions::default());
        chart.add_series_with_bars(&[0.0, 1.0], &[1.0, 2.0], &[0.5, 0.5], 'o');
        chart.add_threshold(2.4, "limit");
        let text = chart.render();
        assert!(text.contains('|'), "error bars missing:\n{text}");
        assert!(text.contains("limit"));
        assert!(text.contains('-'));
    }

    #[test]
    fn constant_series_does_not_crash() {
        let mut chart = LineChart::new(ChartOptions::default());
        chart.add_series(&[0.0, 1.0], &[5.0, 5.0], 'x');
        let text = chart.render();
        assert!(text.contains('x'));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let mut chart = LineChart::new(ChartOptions::default());
        chart.add_series(&[0.0], &[1.0, 2.0], '*');
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn render_without_series_panics() {
        let chart = LineChart::new(ChartOptions::default());
        let _ = chart.render();
    }

    #[test]
    fn multiple_series_distinct_markers() {
        let mut chart = LineChart::new(ChartOptions::default());
        chart.add_series(&[0.0, 1.0], &[0.0, 1.0], 'a');
        chart.add_series(&[0.0, 1.0], &[1.0, 0.0], 'b');
        let text = chart.render();
        assert!(text.contains('a') && text.contains('b'));
    }
}
