//! Self-contained SVG export: line charts with error bars and heat maps.
//!
//! The ASCII renderers ([`crate::LineChart`] and [`crate::HeatMap`]) cover the
//! terminal; this module writes the same figures as standalone `.svg` files
//! (no external plotting dependency), so the Fig. 7 transient and the
//! Fig. 8 temperature field can be dropped into a paper or a README.

use std::fmt::Write as _;

/// Rendering options for [`SvgChart`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width: f64,
    /// Total image height in pixels.
    pub height: f64,
    /// Margin around the plot area in pixels.
    pub margin: f64,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Chart title (empty = none).
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 640.0,
            height: 420.0,
            margin: 56.0,
            x_label: "x".into(),
            y_label: "y".into(),
            title: String::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct SvgSeries {
    xs: Vec<f64>,
    ys: Vec<f64>,
    bars: Vec<f64>,
    color: String,
    label: String,
}

/// A multi-series SVG line chart with optional symmetric error bars and
/// horizontal threshold lines (the Fig. 7 layout).
///
/// # Example
///
/// ```
/// use etherm_report::svg::{SvgChart, SvgOptions};
///
/// let mut chart = SvgChart::new(SvgOptions::default());
/// let xs: Vec<f64> = (0..=50).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&t| 300.0 + 200.0 * (1.0 - (-t / 10.0_f64).exp())).collect();
/// chart.add_series(&xs, &ys, "#0057b8", "E_max(t)");
/// chart.add_threshold(523.0, "#d62728", "T_crit");
/// let svg = chart.render();
/// assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgChart {
    options: SvgOptions,
    series: Vec<SvgSeries>,
    thresholds: Vec<(f64, String, String)>,
}

impl SvgChart {
    /// Creates an empty chart.
    pub fn new(options: SvgOptions) -> Self {
        SvgChart {
            options,
            series: Vec::new(),
            thresholds: Vec::new(),
        }
    }

    /// Adds a series without error bars.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or are empty.
    pub fn add_series(&mut self, xs: &[f64], ys: &[f64], color: &str, label: &str) {
        assert_eq!(xs.len(), ys.len(), "SvgChart: series length mismatch");
        assert!(!xs.is_empty(), "SvgChart: empty series");
        self.series.push(SvgSeries {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            bars: Vec::new(),
            color: color.into(),
            label: label.into(),
        });
    }

    /// Adds a series with symmetric error bars of half-width `bars[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an empty series.
    pub fn add_series_with_bars(
        &mut self,
        xs: &[f64],
        ys: &[f64],
        bars: &[f64],
        color: &str,
        label: &str,
    ) {
        assert_eq!(xs.len(), ys.len(), "SvgChart: series length mismatch");
        assert_eq!(xs.len(), bars.len(), "SvgChart: error-bar length mismatch");
        assert!(!xs.is_empty(), "SvgChart: empty series");
        self.series.push(SvgSeries {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            bars: bars.to_vec(),
            color: color.into(),
            label: label.into(),
        });
    }

    /// Adds a horizontal threshold line at `y` (e.g. the critical wire
    /// temperature).
    pub fn add_threshold(&mut self, y: f64, color: &str, label: &str) {
        self.thresholds.push((y, color.into(), label.into()));
    }

    /// Renders the chart to an SVG document string.
    ///
    /// # Panics
    ///
    /// Panics if no series was added.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "SvgChart: no series to render");
        let o = &self.options;
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (i, (&x, &y)) in s.xs.iter().zip(&s.ys).enumerate() {
                let bar = s.bars.get(i).copied().unwrap_or(0.0);
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_min = y_min.min(y - bar);
                y_max = y_max.max(y + bar);
            }
        }
        for &(y, _, _) in &self.thresholds {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }
        // 5 % head-room.
        let y_pad = 0.05 * (y_max - y_min);
        y_min -= y_pad;
        y_max += y_pad;

        let plot_w = o.width - 2.0 * o.margin;
        let plot_h = o.height - 2.0 * o.margin;
        let px = |x: f64| o.margin + (x - x_min) / (x_max - x_min) * plot_w;
        let py = |y: f64| o.height - o.margin - (y - y_min) / (y_max - y_min) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            o.width, o.height, o.width, o.height
        );
        let _ = writeln!(
            out,
            r#"<rect width="100%" height="100%" fill="white"/>"#
        );
        // Axes.
        let _ = writeln!(
            out,
            r#"<g stroke="black" stroke-width="1"><line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/><line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/></g>"#,
            o.margin,
            o.height - o.margin,
            o.width - o.margin,
            o.height - o.margin,
            o.margin,
            o.margin,
            o.margin,
            o.height - o.margin
        );
        // Ticks and grid (5 intervals).
        for i in 0..=5 {
            let fx = x_min + (x_max - x_min) * i as f64 / 5.0;
            let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
            let _ = writeln!(
                out,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                px(fx),
                o.margin,
                px(fx),
                o.height - o.margin
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
                px(fx),
                o.height - o.margin + 16.0,
                format_tick(fx)
            );
            let _ = writeln!(
                out,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                o.margin,
                py(fy),
                o.width - o.margin,
                py(fy)
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
                o.margin - 6.0,
                py(fy) + 4.0,
                format_tick(fy)
            );
        }
        // Axis labels and title.
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="13" text-anchor="middle">{}</text>"#,
            o.width / 2.0,
            o.height - 8.0,
            xml_escape(&o.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="14" y="{:.1}" font-size="13" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            o.height / 2.0,
            o.height / 2.0,
            xml_escape(&o.y_label)
        );
        if !o.title.is_empty() {
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="20" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
                o.width / 2.0,
                xml_escape(&o.title)
            );
        }
        // Thresholds.
        for (y, color, label) in &self.thresholds {
            let _ = writeln!(
                out,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-dasharray="6 3" stroke-width="1.5"/>"#,
                o.margin,
                py(*y),
                o.width - o.margin,
                py(*y),
                color
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{}" text-anchor="end">{}</text>"#,
                o.width - o.margin - 4.0,
                py(*y) - 4.0,
                color,
                xml_escape(label)
            );
        }
        // Series.
        for (si, s) in self.series.iter().enumerate() {
            // Error bars first so the line draws on top.
            for (i, (&x, &y)) in s.xs.iter().zip(&s.ys).enumerate() {
                let bar = s.bars.get(i).copied().unwrap_or(0.0);
                if bar > 0.0 {
                    let _ = writeln!(
                        out,
                        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="1" opacity="0.6"/>"#,
                        px(x),
                        py(y - bar),
                        px(x),
                        py(y + bar),
                        s.color
                    );
                }
            }
            let points: Vec<String> = s
                .xs
                .iter()
                .zip(&s.ys)
                .map(|(&x, &y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
                points.join(" "),
                s.color
            );
            // Legend entry.
            if !s.label.is_empty() {
                let ly = o.margin + 16.0 * si as f64 + 8.0;
                let _ = writeln!(
                    out,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="2"/>"#,
                    o.margin + 8.0,
                    ly,
                    o.margin + 32.0,
                    ly,
                    s.color
                );
                let _ = writeln!(
                    out,
                    r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
                    o.margin + 38.0,
                    ly + 4.0,
                    xml_escape(&s.label)
                );
            }
        }
        out.push_str("</svg>\n");
        out
    }
}

/// An `nx × ny` scalar field rendered as an SVG cell raster with a
/// blue→red color ramp (the Fig. 8 layout).
///
/// # Example
///
/// ```
/// use etherm_report::svg::SvgHeatMap;
///
/// # fn main() -> Result<(), String> {
/// let values: Vec<f64> = (0..12).map(|i| i as f64).collect();
/// let svg = SvgHeatMap::new(4, 3, values)?.render();
/// assert!(svg.contains("<rect"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SvgHeatMap {
    nx: usize,
    ny: usize,
    values: Vec<f64>,
    /// Pixel size of one cell.
    pub cell_px: f64,
}

impl SvgHeatMap {
    /// Creates a heat map over an `nx × ny` row-major value grid.
    ///
    /// # Errors
    ///
    /// Returns an error string if the dimensions do not match the value
    /// count or any value is non-finite.
    pub fn new(nx: usize, ny: usize, values: Vec<f64>) -> Result<Self, String> {
        if nx == 0 || ny == 0 || values.len() != nx * ny {
            return Err(format!(
                "SvgHeatMap: {nx}×{ny} grid needs {} values (got {})",
                nx * ny,
                values.len()
            ));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err("SvgHeatMap: values must be finite".into());
        }
        Ok(SvgHeatMap {
            nx,
            ny,
            values,
            cell_px: 14.0,
        })
    }

    /// Renders the raster with an auto-scaled color range.
    pub fn render(&self) -> String {
        let lo = self.values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        self.render_scaled(lo, if hi > lo { hi } else { lo + 1.0 })
    }

    /// Renders with an explicit color range `[lo, hi]`.
    pub fn render_scaled(&self, lo: f64, hi: f64) -> String {
        let w = self.nx as f64 * self.cell_px;
        let h = self.ny as f64 * self.cell_px;
        // Extra band on the right for the color-bar.
        let bar_w = 3.0 * self.cell_px;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            w + bar_w + 46.0,
            h,
            w + bar_w + 46.0,
            h
        );
        for j in 0..self.ny {
            for i in 0..self.nx {
                let v = self.values[j * self.nx + i];
                let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                let (r, g, b) = ramp(t);
                // Row 0 at the bottom (physical y up).
                let ypix = (self.ny - 1 - j) as f64 * self.cell_px;
                let _ = writeln!(
                    out,
                    r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="rgb({r},{g},{b})"/>"#,
                    i as f64 * self.cell_px,
                    ypix,
                    self.cell_px,
                    self.cell_px
                );
            }
        }
        // Color bar (16 bands).
        for s in 0..16 {
            let t = s as f64 / 15.0;
            let (r, g, b) = ramp(t);
            let band_h = h / 16.0;
            let _ = writeln!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="rgb({r},{g},{b})"/>"#,
                w + self.cell_px,
                h - (s + 1) as f64 * band_h,
                self.cell_px,
                band_h
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="12" font-size="10">{}</text>"#,
            w + 2.2 * self.cell_px,
            format_tick(hi)
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10">{}</text>"#,
            w + 2.2 * self.cell_px,
            h - 2.0,
            format_tick(lo)
        );
        out.push_str("</svg>\n");
        out
    }
}

/// Blue → cyan → yellow → red ramp on `t ∈ [0, 1]`.
fn ramp(t: f64) -> (u8, u8, u8) {
    let t = t.clamp(0.0, 1.0);
    let (r, g, b) = if t < 1.0 / 3.0 {
        let u = 3.0 * t;
        (0.0, u, 1.0)
    } else if t < 2.0 / 3.0 {
        let u = 3.0 * t - 1.0;
        (u, 1.0, 1.0 - u)
    } else {
        let u = 3.0 * t - 2.0;
        (1.0, 1.0 - u, 0.0)
    };
    ((r * 255.0) as u8, (g * 255.0) as u8, (b * 255.0) as u8)
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (0.01..10_000.0).contains(&a) {
        let s = format!("{v:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        format!("{v:.2e}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_wellformed_svg() {
        let mut chart = SvgChart::new(SvgOptions::default());
        chart.add_series(&[0.0, 1.0, 2.0], &[1.0, 3.0, 2.0], "#0057b8", "series");
        chart.add_threshold(2.5, "#d62728", "limit");
        let svg = chart.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("stroke-dasharray"), "threshold missing");
        assert!(svg.contains("limit"));
        // Every opened rect/line/text is self-closed.
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn error_bars_are_emitted_per_point() {
        let mut chart = SvgChart::new(SvgOptions::default());
        chart.add_series_with_bars(
            &[0.0, 1.0, 2.0],
            &[1.0, 2.0, 3.0],
            &[0.5, 0.5, 0.0],
            "#000",
            "",
        );
        let svg = chart.render();
        // 2 nonzero bars → 2 opacity lines.
        assert_eq!(svg.matches(r#"opacity="0.6""#).count(), 2);
    }

    #[test]
    fn chart_scales_include_bar_extent() {
        let mut chart = SvgChart::new(SvgOptions::default());
        chart.add_series_with_bars(&[0.0, 1.0], &[10.0, 10.0], &[5.0, 5.0], "#000", "x");
        let svg = chart.render();
        // Axis labels should cover 5..15 after padding: the tick "15" or
        // higher must appear somewhere.
        assert!(svg.contains(">15"), "upper tick missing: {svg}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chart_rejects_ragged_series() {
        let mut chart = SvgChart::new(SvgOptions::default());
        chart.add_series(&[0.0, 1.0], &[1.0], "#000", "");
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn chart_requires_series() {
        let chart = SvgChart::new(SvgOptions::default());
        let _ = chart.render();
    }

    #[test]
    fn heatmap_emits_one_rect_per_cell_plus_colorbar() {
        let hm = SvgHeatMap::new(4, 3, (0..12).map(|i| i as f64).collect()).unwrap();
        let svg = hm.render();
        assert_eq!(svg.matches("<rect").count(), 12 + 16);
        assert!(svg.contains("rgb("));
    }

    #[test]
    fn heatmap_validation() {
        assert!(SvgHeatMap::new(0, 3, vec![]).is_err());
        assert!(SvgHeatMap::new(2, 2, vec![0.0; 3]).is_err());
        assert!(SvgHeatMap::new(1, 1, vec![f64::NAN]).is_err());
    }

    #[test]
    fn heatmap_constant_field_does_not_divide_by_zero() {
        let hm = SvgHeatMap::new(2, 2, vec![5.0; 4]).unwrap();
        let svg = hm.render();
        assert!(svg.contains("rgb(0,0,255)"), "constant maps to ramp(0)");
    }

    #[test]
    fn ramp_endpoints() {
        assert_eq!(ramp(0.0), (0, 0, 255));
        assert_eq!(ramp(1.0), (255, 0, 0));
        let (r, g, _) = ramp(0.5);
        assert!(g == 255 && r > 100, "midpoint is greenish-yellow");
    }

    #[test]
    fn xml_escape_covers_specials() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(523.0), "523");
        assert_eq!(format_tick(0.25), "0.25");
        assert!(format_tick(1e7).contains('e'));
    }
}
