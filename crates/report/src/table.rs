//! Aligned text tables (the Table I / Table II renderers).

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use etherm_report::TextTable;
///
/// let mut t = TextTable::new(&["Region", "Material", "λ [W/K/m]"]);
/// t.add_row(&["Compound", "Epoxy resin", "0.87"]);
/// t.add_row(&["Chip", "Copper", "398"]);
/// let s = t.render();
/// assert!(s.contains("Epoxy resin"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn add_row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn add_row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with `|`-separated aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for c in 0..n_cols {
                let cell = &cells[c];
                let pad = widths[c] - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                line.push('|');
            }
            line
        };
        let sep = {
            let mut s = String::from("+");
            for wdt in &widths {
                s.push_str(&"-".repeat(wdt + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_content() {
        let mut t = TextTable::new(&["a", "long header", "c"]);
        t.add_row(&["1", "2", "3"]);
        t.add_row_owned(vec!["x".into(), "yyyy".into(), "zzzzzz".into()]);
        assert_eq!(t.n_rows(), 2);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // All rows share the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("long header"));
        assert!(s.contains("zzzzzz"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn wrong_column_count_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(&["1"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["only"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert_eq!(s.lines().count(), 4); // sep, header, sep, sep
    }

    #[test]
    fn unicode_width_uses_char_count() {
        let mut t = TextTable::new(&["σ [S/m]"]);
        t.add_row(&["5.8×10⁷"]);
        let s = t.render();
        assert!(s.contains("5.8×10⁷"));
    }
}
