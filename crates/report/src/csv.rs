//! Minimal CSV export for post-processing in external tools.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A column-oriented CSV writer.
///
/// # Example
///
/// ```
/// use etherm_report::CsvWriter;
///
/// let mut csv = CsvWriter::new();
/// csv.add_column("t", &[0.0, 1.0]);
/// csv.add_column("T", &[300.0, 310.5]);
/// let text = csv.to_string_lossy();
/// assert!(text.starts_with("t,T\n"));
/// assert!(text.contains("1,310.5"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        CsvWriter::default()
    }

    /// Adds a named column.
    ///
    /// # Panics
    ///
    /// Panics if the column length differs from previously added columns,
    /// or the name contains a comma/newline.
    pub fn add_column(&mut self, name: &str, values: &[f64]) {
        assert!(
            !name.contains(',') && !name.contains('\n'),
            "column name must not contain ',' or newlines"
        );
        if let Some(first) = self.columns.first() {
            assert_eq!(first.len(), values.len(), "column length mismatch");
        }
        self.names.push(name.to_string());
        self.columns.push(values.to_vec());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Serializes to CSV text (shortest round-trip float formatting).
    pub fn to_string_lossy(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.names.join(","));
        out.push('\n');
        for r in 0..self.n_rows() {
            for (c, col) in self.columns.iter().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", col[r]);
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_string_lossy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_format() {
        let mut csv = CsvWriter::new();
        csv.add_column("a", &[1.0, 2.5]);
        csv.add_column("b", &[-3.0, 0.125]);
        let s = csv.to_string_lossy();
        assert_eq!(s, "a,b\n1,-3\n2.5,0.125\n");
        assert_eq!(csv.n_rows(), 2);
    }

    #[test]
    fn empty_writer() {
        let csv = CsvWriter::new();
        assert_eq!(csv.n_rows(), 0);
        assert_eq!(csv.to_string_lossy(), "\n");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        let mut csv = CsvWriter::new();
        csv.add_column("a", &[1.0]);
        csv.add_column("b", &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn bad_name_panics() {
        let mut csv = CsvWriter::new();
        csv.add_column("a,b", &[1.0]);
    }

    #[test]
    fn writes_file() {
        let mut csv = CsvWriter::new();
        csv.add_column("x", &[42.0]);
        let dir = std::env::temp_dir().join("etherm_csv_test.csv");
        csv.write_to(&dir).unwrap();
        let read = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(read, "x\n42\n");
        let _ = std::fs::remove_file(&dir);
    }
}
