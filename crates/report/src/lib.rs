//! Terminal-friendly reporting: ASCII line charts with error bars,
//! histograms, heat maps, aligned tables and CSV export — plus a
//! dependency-free SVG renderer for publication figures.
//!
//! Every table and figure of the paper is regenerated as text by the bench
//! binaries; this crate renders them. No plotting dependencies — the charts
//! are deliberately plain ASCII so they survive CI logs and diffs, with
//! [`svg`] as an optional vector output for the same data.

#![forbid(unsafe_code)]

mod chart;
mod csv;
mod heatmap;
pub mod svg;
mod table;

pub use chart::{ChartOptions, LineChart};
pub use csv::CsvWriter;
pub use heatmap::HeatMap;
pub use svg::{SvgChart, SvgHeatMap, SvgOptions};
pub use table::TextTable;
