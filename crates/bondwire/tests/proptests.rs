//! Property-based tests locking the degradation crossing analysis: first
//! crossings (including edge cases: crossing at the first sample, touching
//! without exceeding, multiple crossings) and the Arrhenius damage model.

use etherm_bondwire::degradation::{
    assess_series, first_crossing, ArrheniusDamage, K_BOLTZMANN_EV,
};
use proptest::prelude::*;

/// Reference implementation: scan every interval, return the earliest
/// interpolated crossing — the specification `first_crossing` must match.
fn reference_first_crossing(times: &[f64], temps: &[f64], threshold: f64) -> Option<f64> {
    if temps[0] >= threshold {
        return Some(times[0]);
    }
    let mut best: Option<f64> = None;
    for i in 1..temps.len() {
        if temps[i - 1] < threshold && temps[i] >= threshold {
            let f = (threshold - temps[i - 1]) / (temps[i] - temps[i - 1]);
            let t = times[i - 1] + f * (times[i] - times[i - 1]);
            best = Some(match best {
                None => t,
                Some(b) => b.min(t),
            });
        }
    }
    best
}

/// Builds a strictly increasing time grid from positive interval widths.
fn cumsum(dts: &[f64]) -> Vec<f64> {
    let mut times = Vec::with_capacity(dts.len() + 1);
    let mut t = 0.0;
    times.push(t);
    for &dt in dts {
        t += dt;
        times.push(t);
    }
    times
}

proptest! {
    #[test]
    fn crossing_matches_reference_and_interpolates_exactly(
        dts in proptest::collection::vec(0.05f64..2.0, 1..24),
        temps in proptest::collection::vec(300.0f64..600.0, 2..25),
        threshold in 320.0f64..580.0,
    ) {
        let n = dts.len().min(temps.len() - 1);
        let times = cumsum(&dts[..n]);
        let temps = &temps[..n + 1];
        let got = first_crossing(&times, temps, threshold);
        let want = reference_first_crossing(&times, temps, threshold);
        prop_assert_eq!(got, want);
        if let Some(t) = got {
            // Crossing lies inside the sampled window...
            prop_assert!(t >= times[0] && t <= *times.last().unwrap());
            // ...and the piecewise-linear interpolant evaluates to the
            // threshold there (unless the crossing is the first sample,
            // which may be strictly above it).
            let k = times.partition_point(|&x| x < t).max(1).min(times.len() - 1);
            let f = (t - times[k - 1]) / (times[k] - times[k - 1]);
            let interp = temps[k - 1] + f * (temps[k] - temps[k - 1]);
            if temps[0] < threshold {
                prop_assert!((interp - threshold).abs() < 1e-9,
                    "interpolant {} at crossing {} vs threshold {}", interp, t, threshold);
            } else {
                prop_assert_eq!(t, times[0]);
                prop_assert!(interp >= threshold - 1e-9);
            }
        }
    }

    #[test]
    fn passes_iff_peak_below_threshold(
        dts in proptest::collection::vec(0.05f64..2.0, 1..24),
        temps in proptest::collection::vec(300.0f64..600.0, 2..25),
        threshold in 320.0f64..580.0,
    ) {
        let n = dts.len().min(temps.len() - 1);
        let times = cumsum(&dts[..n]);
        let temps = &temps[..n + 1];
        let a = assess_series(&times, temps, threshold);
        let peak = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(a.peak_temperature, peak);
        prop_assert_eq!(a.margin, threshold - peak);
        // Reaching the threshold counts as failure: passes ⇔ peak < threshold.
        prop_assert_eq!(a.passes(), peak < threshold);
        prop_assert_eq!(a.first_crossing.is_some(), peak >= threshold);
    }

    #[test]
    fn touch_without_exceeding_is_detected_at_the_touch(
        dts in proptest::collection::vec(0.1f64..2.0, 2..12),
        below in proptest::collection::vec(300.0f64..500.0, 3..13),
        threshold in 510.0f64..600.0,
        touch_at in 1usize..12,
    ) {
        // Series strictly below the threshold except one sample placed
        // exactly on it.
        let n = dts.len().min(below.len() - 1);
        let times = cumsum(&dts[..n]);
        let mut temps = below[..n + 1].to_vec();
        let k = 1 + touch_at % n.max(1);
        temps[k] = threshold;
        let a = assess_series(&times, &temps, threshold);
        prop_assert_eq!(a.first_crossing, Some(times[k]));
        prop_assert!(!a.passes());
        prop_assert_eq!(a.margin, 0.0);
    }

    #[test]
    fn crossing_at_the_first_sample_returns_time_zero(
        dts in proptest::collection::vec(0.1f64..2.0, 1..12),
        temps in proptest::collection::vec(300.0f64..600.0, 2..13),
        threshold in 320.0f64..580.0,
        start in 0.0f64..80.0,
    ) {
        let n = dts.len().min(temps.len() - 1);
        let times = cumsum(&dts[..n]);
        let mut temps = temps[..n + 1].to_vec();
        temps[0] = threshold + start; // at or above the threshold from t = 0
        let a = assess_series(&times, &temps, threshold);
        prop_assert_eq!(a.first_crossing, Some(times[0]));
        prop_assert!(!a.passes());
    }

    #[test]
    fn arrhenius_failure_time_is_consistent_with_accumulate(
        base in 430.0f64..520.0,
        amplitude in 0.0f64..60.0,
        n in 20usize..120,
    ) {
        let d = ArrheniusDamage::default();
        // Scale the horizon so the total damage is exactly 1.8: failure
        // strictly inside the series. (Damage is linear in a uniform time
        // dilation at fixed per-sample temperatures.)
        let mean_rate = d.rate(base + 0.5 * amplitude);
        let t_guess = 1.8 / mean_rate;
        let mut times: Vec<f64> = (0..=n).map(|i| t_guess * i as f64 / n as f64).collect();
        let temps: Vec<f64> = times
            .iter()
            .map(|&t| base + amplitude * (3.0 * t / t_guess).sin().abs())
            .collect();
        let raw = d.accumulate(&times, &temps);
        let dilation = 1.8 / raw;
        for t in times.iter_mut() {
            *t *= dilation;
        }
        let t_end = *times.last().unwrap();
        let total = d.accumulate(&times, &temps);
        prop_assert!((total - 1.8).abs() < 1e-9);
        let tf = d.failure_time(&times, &temps).unwrap();
        prop_assert!(tf > 0.0 && tf < t_end);
        // Damage strictly before the violating interval is < 1, and through
        // the end of it is ≥ 1.
        let k = times.partition_point(|&t| t < tf);
        prop_assert!(d.accumulate(&times[..k], &temps[..k]) < 1.0 + 1e-12);
        prop_assert!(d.accumulate(&times[..=k], &temps[..=k]) >= 1.0 - 1e-12);
        // Monotonicity: a uniformly hotter profile fails earlier.
        let hotter: Vec<f64> = temps.iter().map(|&x| x + 10.0).collect();
        let tf_hot = d.failure_time(&times, &hotter).unwrap();
        prop_assert!(tf_hot < tf);
    }

    #[test]
    fn arrhenius_rate_follows_the_closed_form(t in 250.0f64..900.0) {
        let d = ArrheniusDamage::default();
        let want = d.prefactor * (-d.activation_energy_ev / (K_BOLTZMANN_EV * t)).exp();
        prop_assert!((d.rate(t) - want).abs() <= 1e-15 * want.abs());
    }
}
