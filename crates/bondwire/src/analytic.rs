//! Closed-form 1D bonding-wire temperature baseline.
//!
//! The "bonding wire calculator" literature the paper cites (refs. \[3\], \[6\])
//! evaluates wire temperatures from the steady 1D fin equation along the
//! wire axis:
//!
//! ```text
//! λ A T''(x) + q̇ A = h P (T(x) − T∞),   T(0) = T_a, T(L) = T_b,
//! ```
//!
//! with volumetric Joule heating `q̇ = (I/A)²/σ`, cross-section `A = πd²/4`
//! and perimeter `P = πd`. For `h = 0` (wire embedded in poorly conducting
//! mold) the solution is the parabola
//! `T(x) = T_a + (T_b − T_a)x/L + q̇/(2λ)·x(L − x)`; for `h > 0` it is the
//! classical cosh/sinh fin profile. This module provides both, a
//! self-consistent property iteration, a finite-difference cross-check, the
//! allowable-current search, and the Preece fusing-current rule of thumb.

use crate::wire::BondWire;
use etherm_numerics::solvers::solve_tridiagonal;

/// Steady-state 1D fin model of a single bonding wire.
///
/// # Example
///
/// ```
/// use etherm_bondwire::analytic::FinModel;
/// use etherm_bondwire::BondWire;
/// use etherm_materials::library;
///
/// let wire = BondWire::new("w", 1.55e-3, 25.4e-6, library::copper()).unwrap();
/// let fin = FinModel::new(wire, 300.0, 300.0, 300.0, 0.0, 0.5);
/// let (x_max, t_max) = fin.max_temperature();
/// // Symmetric boundary temperatures → hot spot at mid-span.
/// assert!((x_max / fin.wire().length() - 0.5).abs() < 1e-9);
/// assert!(t_max > 300.0);
/// ```
#[derive(Debug, Clone)]
pub struct FinModel {
    wire: BondWire,
    t_a: f64,
    t_b: f64,
    t_inf: f64,
    /// Lateral heat transfer coefficient (W/m²/K); 0 = insulated mantle.
    h: f64,
    /// Driven current (A).
    current: f64,
    /// Temperature at which σ and λ are evaluated.
    eval_temp: f64,
}

impl FinModel {
    /// Creates a fin model with properties evaluated at the mean boundary
    /// temperature.
    pub fn new(wire: BondWire, t_a: f64, t_b: f64, t_inf: f64, h: f64, current: f64) -> Self {
        let eval = 0.5 * (t_a + t_b);
        FinModel {
            wire,
            t_a,
            t_b,
            t_inf,
            h,
            current,
            eval_temp: eval,
        }
    }

    /// The modeled wire.
    pub fn wire(&self) -> &BondWire {
        &self.wire
    }

    /// Sets the property evaluation temperature.
    pub fn set_eval_temperature(&mut self, t: f64) {
        self.eval_temp = t;
    }

    /// Sets the driven current (A).
    pub fn set_current(&mut self, i: f64) {
        self.current = i;
    }

    /// Volumetric Joule heating `q̇ = (I/A)²/σ(T_eval)` (W/m³).
    pub fn volumetric_heating(&self) -> f64 {
        let a = self.wire.cross_section();
        let j = self.current / a;
        j * j / self.wire.material().sigma(self.eval_temp)
    }

    /// Temperature at axial position `x ∈ [0, L]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, L]` (with a small tolerance).
    pub fn temperature_at(&self, x: f64) -> f64 {
        let l = self.wire.length();
        assert!(
            (-1e-12..=l * (1.0 + 1e-12)).contains(&x),
            "x = {x} outside wire [0, {l}]"
        );
        let lam = self.wire.material().lambda(self.eval_temp);
        let qdot = self.volumetric_heating();
        if self.h == 0.0 {
            // Insulated mantle: parabolic superposition.
            self.t_a + (self.t_b - self.t_a) * x / l + qdot / (2.0 * lam) * x * (l - x)
        } else {
            // Fin: θ'' = m²θ with θ = T − T∞ − q̇A/(hP).
            let a = self.wire.cross_section();
            let p = std::f64::consts::PI * self.wire.diameter();
            let m = (self.h * p / (lam * a)).sqrt();
            let shift = self.t_inf + qdot * a / (self.h * p);
            let theta_a = self.t_a - shift;
            let theta_b = self.t_b - shift;
            let denom = (m * l).sinh();
            let c1 = theta_a;
            let c2 = (theta_b - theta_a * (m * l).cosh()) / denom;
            shift + c1 * (m * x).cosh() + c2 * (m * x).sinh()
        }
    }

    /// Samples `n + 1` equidistant points of the profile as `(x, T)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn profile(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "profile needs at least one interval");
        let l = self.wire.length();
        (0..=n)
            .map(|i| {
                let x = l * i as f64 / n as f64;
                (x, self.temperature_at(x))
            })
            .collect()
    }

    /// Location and value of the maximum wire temperature.
    pub fn max_temperature(&self) -> (f64, f64) {
        let l = self.wire.length();
        if self.h == 0.0 {
            let lam = self.wire.material().lambda(self.eval_temp);
            let qdot = self.volumetric_heating();
            if qdot == 0.0 {
                // Pure conduction: extremum at an endpoint.
                return if self.t_a >= self.t_b {
                    (0.0, self.t_a)
                } else {
                    (l, self.t_b)
                };
            }
            // dT/dx = (T_b−T_a)/L + q̇/(2λ)(L − 2x) = 0.
            let x_star = (0.5 * l + lam * (self.t_b - self.t_a) / (qdot * l)).clamp(0.0, l);
            (x_star, self.temperature_at(x_star))
        } else {
            // Scan (profile is smooth; 1000 samples suffice for reporting).
            let mut best = (0.0, self.temperature_at(0.0));
            for i in 1..=1000 {
                let x = l * i as f64 / 1000.0;
                let t = self.temperature_at(x);
                if t > best.1 {
                    best = (x, t);
                }
            }
            best
        }
    }

    /// Iterates the property-evaluation temperature to the resulting maximum
    /// temperature until self-consistency (fixed point), returning the
    /// converged `(x_max, T_max)`.
    pub fn solve_self_consistent(&mut self, tol: f64, max_iter: usize) -> (f64, f64) {
        let mut result = self.max_temperature();
        for _ in 0..max_iter {
            self.eval_temp = result.1;
            let next = self.max_temperature();
            let done = (next.1 - result.1).abs() <= tol;
            result = next;
            if done {
                break;
            }
        }
        result
    }

    /// Finite-difference (tridiagonal) solution with `n` intervals — the
    /// numerical cross-check for the closed forms.
    ///
    /// Returns the nodal temperatures at `n + 1` equidistant points.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the discretization becomes singular.
    pub fn solve_fd(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least 2 intervals");
        let l = self.wire.length();
        let dx = l / n as f64;
        let lam = self.wire.material().lambda(self.eval_temp);
        let a = self.wire.cross_section();
        let p = std::f64::consts::PI * self.wire.diameter();
        let qdot = self.volumetric_heating();
        // Interior unknowns 1..n-1: λA/dx² (T_{i-1} −2T_i + T_{i+1}) + q̇A
        //   = hP(T_i − T∞).
        let m = n - 1;
        let diag_val = 2.0 * lam * a / (dx * dx) + self.h * p;
        let off = -lam * a / (dx * dx);
        let diag = vec![diag_val; m];
        let lower = vec![off; m - 1];
        let upper = vec![off; m - 1];
        let mut rhs = vec![qdot * a + self.h * p * self.t_inf; m];
        rhs[0] -= off * self.t_a;
        rhs[m - 1] -= off * self.t_b;
        let inner = solve_tridiagonal(&lower, &diag, &upper, &rhs)
            .expect("fin FD system is SPD tridiagonal");
        let mut t = Vec::with_capacity(n + 1);
        t.push(self.t_a);
        t.extend(inner);
        t.push(self.t_b);
        t
    }
}

/// Largest current (A) keeping the self-consistent maximum wire temperature
/// below `t_crit`, found by bisection on `[0, i_upper]`.
///
/// Returns 0 if even an infinitesimal current exceeds the limit (i.e. the
/// boundary temperatures already violate it).
///
/// # Panics
///
/// Panics if `i_upper` is not positive.
pub fn allowable_current(
    wire: &BondWire,
    t_pads: f64,
    t_inf: f64,
    h: f64,
    t_crit: f64,
    i_upper: f64,
) -> f64 {
    assert!(i_upper > 0.0, "upper current bracket must be positive");
    let max_temp = |i: f64| -> f64 {
        let mut fin = FinModel::new(wire.clone(), t_pads, t_pads, t_inf, h, i);
        fin.solve_self_consistent(1e-6, 100).1
    };
    if max_temp(0.0) >= t_crit {
        return 0.0;
    }
    if max_temp(i_upper) < t_crit {
        return i_upper;
    }
    let (mut lo, mut hi) = (0.0f64, i_upper);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if max_temp(mid) < t_crit {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-12 * i_upper {
            break;
        }
    }
    lo
}

/// Preece fusing-current rule of thumb `I_fuse = k·d^{3/2}` with the copper
/// constant `k = 80 A/mm^{3/2}` (`d` in mm). A sanity bound, not a design
/// value — the lumped/fin models above are the actual calculators.
pub fn preece_fusing_current(diameter_m: f64) -> f64 {
    let d_mm = diameter_m * 1e3;
    80.0 * d_mm.powf(1.5)
}

/// Onderdonk adiabatic fusing time for a copper conductor: the time (s) a
/// current `i` (A) takes to heat a cross-section `area_m2` (m²) from
/// `t_ambient` (K) to the copper melting point, neglecting all heat loss:
///
/// ```text
/// t = 33 · (A_cmil · I⁻¹)² · log₁₀( (T_melt − T_a)/(234 + T_a) + 1 ),
/// ```
///
/// with `A_cmil` the area in circular mils and temperatures in °C (the
/// classical engineering form). Valid for events ≲ 1 s where conduction to
/// the pads can be ignored — the complement of the steady-state
/// [`allowable_current`] limit. Returns `f64::INFINITY` for `i == 0`.
///
/// # Panics
///
/// Panics if `area_m2` is not positive, `i` is negative, or `t_ambient` is
/// not below the copper melting point (1 356 K).
pub fn onderdonk_fusing_time(area_m2: f64, i: f64, t_ambient: f64) -> f64 {
    const T_MELT_C: f64 = 1_083.0;
    assert!(area_m2 > 0.0, "onderdonk: area must be positive");
    assert!(i >= 0.0, "onderdonk: current must be non-negative");
    let t_a_c = t_ambient - 273.15;
    assert!(
        t_a_c < T_MELT_C,
        "onderdonk: ambient above the copper melting point"
    );
    if i == 0.0 {
        return f64::INFINITY;
    }
    // 1 circular mil = π/4 · (25.4e-6 m)² = 5.06707e-10 m².
    let a_cmil = area_m2 / 5.067_074_79e-10;
    let ratio = (T_MELT_C - t_a_c) / (234.0 + t_a_c) + 1.0;
    33.0 * (a_cmil / i).powi(2) * ratio.log10()
}

/// Onderdonk adiabatic fusing *current* for a copper conductor: inverts
/// [`onderdonk_fusing_time`] for a given event duration `time_s`.
///
/// # Panics
///
/// Panics under the same conditions as [`onderdonk_fusing_time`], or if
/// `time_s` is not positive.
pub fn onderdonk_fusing_current(area_m2: f64, time_s: f64, t_ambient: f64) -> f64 {
    assert!(time_s > 0.0, "onderdonk: time must be positive");
    // t = 33 (A/I)² log₁₀(r) → I = A √(33 log₁₀(r) / t).
    const T_MELT_C: f64 = 1_083.0;
    assert!(area_m2 > 0.0, "onderdonk: area must be positive");
    let t_a_c = t_ambient - 273.15;
    assert!(
        t_a_c < T_MELT_C,
        "onderdonk: ambient above the copper melting point"
    );
    let a_cmil = area_m2 / 5.067_074_79e-10;
    let ratio = (T_MELT_C - t_a_c) / (234.0 + t_a_c) + 1.0;
    a_cmil * (33.0 * ratio.log10() / time_s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_materials::library;

    fn wire() -> BondWire {
        BondWire::new("w", 1.55e-3, 25.4e-6, library::copper()).unwrap()
    }

    #[test]
    fn onderdonk_roundtrip_and_scaling() {
        let area = std::f64::consts::PI / 4.0 * (25.4e-6f64).powi(2);
        // Round trip: the current that fuses in t seconds fuses in t seconds.
        let t_fuse = 1e-3;
        let i = onderdonk_fusing_current(area, t_fuse, 300.0);
        let t_back = onderdonk_fusing_time(area, i, 300.0);
        assert!((t_back - t_fuse).abs() / t_fuse < 1e-12);
        // Fusing time scales as 1/I².
        let t1 = onderdonk_fusing_time(area, i, 300.0);
        let t2 = onderdonk_fusing_time(area, 2.0 * i, 300.0);
        assert!((t1 / t2 - 4.0).abs() < 1e-10);
        // Zero current never fuses.
        assert!(onderdonk_fusing_time(area, 0.0, 300.0).is_infinite());
    }

    #[test]
    fn onderdonk_magnitudes_are_physical() {
        // A 25.4 µm (1 mil) wire is ~1.27 cmil ≈ area 5.067e-10·1 m²...
        // 1 mil diameter = 1 cmil by definition.
        let area = std::f64::consts::PI / 4.0 * (25.4e-6f64).powi(2);
        let a_cmil = area / 5.067_074_79e-10;
        assert!((a_cmil - 1.0).abs() < 1e-6, "1 mil wire = 1 cmil, got {a_cmil}");
        // 10 ms fusing current for the paper's wire: order 10 A — far above
        // the ~mA operating currents, consistent with thermal (not fusing)
        // failure being the paper's concern.
        let i10ms = onderdonk_fusing_current(area, 10e-3, 300.0);
        assert!(i10ms > 1.0 && i10ms < 100.0, "I(10 ms) = {i10ms} A");
        // Hotter ambient fuses faster.
        let t_cold = onderdonk_fusing_time(area, 5.0, 300.0);
        let t_hot = onderdonk_fusing_time(area, 5.0, 500.0);
        assert!(t_hot < t_cold);
    }

    #[test]
    fn preece_and_onderdonk_cover_complementary_regimes() {
        // Preece bounds the *steady* fusing current; Onderdonk the *short
        // pulse* (adiabatic) one with I ∝ 1/√t. For any sub-second event
        // the adiabatic limit must allow more current than the steady rule,
        // and the crossover duration (where both coincide) must be far
        // beyond the adiabatic model's validity (≫ 1 s).
        let d = 25.4e-6;
        let area = std::f64::consts::PI / 4.0 * d * d;
        let preece = preece_fusing_current(d);
        for t in [1e-3, 1e-2, 1e-1, 1.0] {
            assert!(onderdonk_fusing_current(area, t, 300.0) > preece, "t = {t}");
        }
        // I ∝ 1/√t ⇒ crossover t* = t·(I(t)/I_preece)².
        let i1 = onderdonk_fusing_current(area, 1.0, 300.0);
        let t_cross = (i1 / preece).powi(2);
        assert!(t_cross > 50.0, "crossover at t* = {t_cross} s");
    }

    #[test]
    fn zero_current_is_linear_profile() {
        let fin = FinModel::new(wire(), 300.0, 400.0, 300.0, 0.0, 0.0);
        for (x, t) in fin.profile(10) {
            let expect = 300.0 + 100.0 * x / 1.55e-3;
            assert!((t - expect).abs() < 1e-9);
        }
        let (x_max, t_max) = fin.max_temperature();
        assert_eq!(t_max, 400.0);
        assert!((x_max - 1.55e-3).abs() < 1e-12);
    }

    #[test]
    fn boundary_conditions_are_met() {
        for h in [0.0, 50.0] {
            let fin = FinModel::new(wire(), 310.0, 350.0, 300.0, h, 0.4);
            assert!((fin.temperature_at(0.0) - 310.0).abs() < 1e-9);
            assert!((fin.temperature_at(1.55e-3) - 350.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heating_raises_midpoint_above_linear() {
        let fin = FinModel::new(wire(), 300.0, 300.0, 300.0, 0.0, 0.5);
        let mid = fin.temperature_at(0.5 * 1.55e-3);
        assert!(mid > 300.0);
        // Quadratic profile: symmetric.
        let q1 = fin.temperature_at(0.25 * 1.55e-3);
        let q3 = fin.temperature_at(0.75 * 1.55e-3);
        assert!((q1 - q3).abs() < 1e-9);
    }

    #[test]
    fn convection_cools_the_wire() {
        let hot = FinModel::new(wire(), 300.0, 300.0, 300.0, 0.0, 0.5);
        let cooled = FinModel::new(wire(), 300.0, 300.0, 300.0, 200.0, 0.5);
        assert!(cooled.max_temperature().1 < hot.max_temperature().1);
    }

    #[test]
    fn closed_form_matches_finite_differences() {
        for h in [0.0, 120.0] {
            let fin = FinModel::new(wire(), 305.0, 335.0, 300.0, h, 0.45);
            let n = 400;
            let fd = fin.solve_fd(n);
            for (i, &t_fd) in fd.iter().enumerate() {
                let x = 1.55e-3 * i as f64 / n as f64;
                let t = fin.temperature_at(x);
                assert!(
                    (t - t_fd).abs() < 0.05,
                    "h={h}, x={x}: analytic {t} vs FD {t_fd}"
                );
            }
        }
    }

    #[test]
    fn self_consistency_raises_temperature() {
        // Hotter wire → lower σ → more heating → hotter: the converged
        // temperature must exceed the cold-property estimate.
        let mut fin = FinModel::new(wire(), 300.0, 300.0, 300.0, 0.0, 0.6);
        let cold = fin.max_temperature().1;
        let (_, warm) = fin.solve_self_consistent(1e-9, 200);
        assert!(warm > cold, "{warm} vs {cold}");
    }

    #[test]
    fn allowable_current_is_monotone_bracketed() {
        let w = wire();
        let i_crit = allowable_current(&w, 300.0, 300.0, 0.0, 523.0, 5.0);
        assert!(i_crit > 0.0 && i_crit < 5.0);
        // At the returned current the temperature stays below the limit...
        let mut fin = FinModel::new(w.clone(), 300.0, 300.0, 300.0, 0.0, i_crit * 0.999);
        assert!(fin.solve_self_consistent(1e-9, 200).1 < 523.0);
        // ...and 10 % more violates it.
        let mut fin = FinModel::new(w, 300.0, 300.0, 300.0, 0.0, i_crit * 1.1);
        assert!(fin.solve_self_consistent(1e-9, 200).1 > 523.0);
    }

    #[test]
    fn allowable_current_zero_when_pads_too_hot() {
        let w = wire();
        assert_eq!(allowable_current(&w, 600.0, 300.0, 0.0, 523.0, 5.0), 0.0);
    }

    #[test]
    fn allowable_current_saturates_at_bracket() {
        // Tiny current bracket that can never heat the wire to 523 K.
        let w = wire();
        let i = allowable_current(&w, 300.0, 300.0, 0.0, 523.0, 1e-6);
        assert_eq!(i, 1e-6);
    }

    #[test]
    fn preece_scaling() {
        let i1 = preece_fusing_current(25.4e-6);
        let i2 = preece_fusing_current(4.0 * 25.4e-6);
        assert!((i2 / i1 - 8.0).abs() < 1e-9); // d^{3/2}: ×4 diameter → ×8 current
        // 25.4 µm copper fuses around 0.3 A by Preece.
        assert!(i1 > 0.2 && i1 < 0.5, "I_fuse = {i1}");
    }

    #[test]
    fn fin_longer_wire_gets_hotter() {
        let w_short = wire();
        let w_long = w_short.with_length(2.0e-3).unwrap();
        let t_short = FinModel::new(w_short, 300.0, 300.0, 300.0, 0.0, 0.4)
            .max_temperature()
            .1;
        let t_long = FinModel::new(w_long, 300.0, 300.0, 300.0, 0.0, 0.4)
            .max_temperature()
            .1;
        assert!(t_long > t_short);
    }
}
