//! Bond wire geometry and lumped conductances.

use etherm_materials::Material;
use std::fmt;

/// Errors validating a [`BondWire`].
#[derive(Debug, Clone, PartialEq)]
pub enum BondWireError {
    /// Length must be positive and finite.
    InvalidLength(f64),
    /// Diameter must be positive, finite and much smaller than the length.
    InvalidDiameter(f64),
    /// At least one segment is required.
    ZeroSegments,
}

impl fmt::Display for BondWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BondWireError::InvalidLength(l) => write!(f, "invalid wire length {l} m"),
            BondWireError::InvalidDiameter(d) => write!(f, "invalid wire diameter {d} m"),
            BondWireError::ZeroSegments => write!(f, "wire needs at least one segment"),
        }
    }
}

impl std::error::Error for BondWireError {}

/// A cylindrical bonding wire modeled as a chain of lumped electrothermal
/// conductances.
///
/// With one segment this is exactly the paper's two-terminal element
/// `G_bw(T_bw)` with the average temperature `T_bw = XᵀT` (Eq. 5); with
/// `n > 1` segments the wire gains `n − 1` internal DoFs and resolves a
/// piecewise-linear temperature profile along its length.
///
/// # Example
///
/// ```
/// use etherm_bondwire::BondWire;
/// use etherm_materials::library;
///
/// // Table II: d = 25.4 µm, average length 1.55 mm, copper.
/// let wire = BondWire::new("w1", 1.55e-3, 25.4e-6, library::copper()).unwrap();
/// let r300 = wire.resistance(300.0);
/// // R = L/(σA) ≈ 52.7 mΩ… for this geometry ≈ 52.7e-3 Ω.
/// assert!((r300 - 52.7e-3).abs() / 52.7e-3 < 0.01);
/// // Heating the wire raises its resistance.
/// assert!(wire.resistance(400.0) > r300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BondWire {
    label: String,
    length: f64,
    diameter: f64,
    material: Material,
    segments: usize,
}

impl BondWire {
    /// Creates a single-segment wire.
    ///
    /// # Errors
    ///
    /// Returns [`BondWireError`] for non-positive/non-finite length or
    /// diameter, or a diameter not smaller than the length (the lumped model
    /// assumes a thin wire).
    pub fn new(
        label: impl Into<String>,
        length: f64,
        diameter: f64,
        material: Material,
    ) -> Result<Self, BondWireError> {
        if !(length.is_finite() && length > 0.0) {
            return Err(BondWireError::InvalidLength(length));
        }
        if !(diameter.is_finite() && diameter > 0.0) || diameter >= length {
            return Err(BondWireError::InvalidDiameter(diameter));
        }
        Ok(BondWire {
            label: label.into(),
            length,
            diameter,
            material,
            segments: 1,
        })
    }

    /// Sets the number of lumped segments (piecewise-linear temperature).
    ///
    /// # Errors
    ///
    /// Returns [`BondWireError::ZeroSegments`] if `n == 0`.
    pub fn with_segments(mut self, n: usize) -> Result<Self, BondWireError> {
        if n == 0 {
            return Err(BondWireError::ZeroSegments);
        }
        self.segments = n;
        Ok(self)
    }

    /// Returns a copy with a different length (used by the Monte Carlo
    /// sampling of uncertain elongations).
    ///
    /// # Errors
    ///
    /// Same validation as [`BondWire::new`].
    pub fn with_length(&self, length: f64) -> Result<Self, BondWireError> {
        if !(length.is_finite() && length > 0.0) || self.diameter >= length {
            return Err(BondWireError::InvalidLength(length));
        }
        let mut w = self.clone();
        w.length = length;
        Ok(w)
    }

    /// Wire label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total length `L` (m).
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Diameter `d` (m).
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Wire material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Number of lumped segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of internal DoFs (`segments − 1`).
    pub fn n_internal(&self) -> usize {
        self.segments - 1
    }

    /// Cross-section area `A = πd²/4` (m²).
    pub fn cross_section(&self) -> f64 {
        std::f64::consts::PI * self.diameter * self.diameter / 4.0
    }

    /// Lateral (mantle) surface area `πdL` (m²).
    pub fn surface_area(&self) -> f64 {
        std::f64::consts::PI * self.diameter * self.length
    }

    /// Electrical conductance of the *whole* wire at uniform temperature
    /// `t`: `G_el = σ(T)·A/L` (S).
    pub fn electrical_conductance(&self, t: f64) -> f64 {
        self.material.sigma(t) * self.cross_section() / self.length
    }

    /// Thermal conductance of the whole wire at uniform temperature `t`:
    /// `G_th = λ(T)·A/L` (W/K).
    pub fn thermal_conductance(&self, t: f64) -> f64 {
        self.material.lambda(t) * self.cross_section() / self.length
    }

    /// Electrical conductance of one segment at temperature `t`
    /// (`segments ×` the whole-wire conductance).
    pub fn segment_electrical_conductance(&self, t: f64) -> f64 {
        self.electrical_conductance(t) * self.segments as f64
    }

    /// Thermal conductance of one segment at temperature `t`.
    pub fn segment_thermal_conductance(&self, t: f64) -> f64 {
        self.thermal_conductance(t) * self.segments as f64
    }

    /// Electrical resistance `R(T) = 1/G_el(T)` (Ω).
    pub fn resistance(&self, t: f64) -> f64 {
        1.0 / self.electrical_conductance(t)
    }

    /// Total heat capacity `ρc·A·L` (J/K). The paper's lumped model neglects
    /// wire heat capacity (conduction-dominated); exposed for extensions.
    pub fn heat_capacity(&self) -> f64 {
        self.material.rho_c() * self.cross_section() * self.length
    }
}

impl fmt::Display for BondWire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: L = {:.4} mm, d = {:.1} µm, {} segment(s), {}",
            self.label,
            self.length * 1e3,
            self.diameter * 1e6,
            self.segments,
            self.material.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_materials::library;

    fn paper_wire() -> BondWire {
        BondWire::new("w", 1.55e-3, 25.4e-6, library::copper()).unwrap()
    }

    #[test]
    fn geometry_values() {
        let w = paper_wire();
        let a = w.cross_section();
        assert!((a - std::f64::consts::PI * (25.4e-6f64).powi(2) / 4.0).abs() < 1e-20);
        assert!((w.surface_area() - std::f64::consts::PI * 25.4e-6 * 1.55e-3).abs() < 1e-15);
        assert_eq!(w.segments(), 1);
        assert_eq!(w.n_internal(), 0);
    }

    #[test]
    fn conductances_scale_with_segments() {
        let w = paper_wire().with_segments(4).unwrap();
        let g_whole = w.electrical_conductance(300.0);
        assert!((w.segment_electrical_conductance(300.0) - 4.0 * g_whole).abs() < 1e-12 * g_whole);
        // n segments in series recover the whole-wire conductance.
        let g_series = 1.0 / (4.0 / w.segment_electrical_conductance(300.0));
        assert!((g_series - g_whole).abs() < 1e-12 * g_whole);
        assert_eq!(w.n_internal(), 3);
    }

    #[test]
    fn temperature_dependence() {
        let w = paper_wire();
        assert!(w.electrical_conductance(500.0) < w.electrical_conductance(300.0));
        assert!(w.thermal_conductance(500.0) < w.thermal_conductance(300.0));
        assert!(w.resistance(500.0) > w.resistance(300.0));
    }

    #[test]
    fn paper_wire_resistance_magnitude() {
        // R = L/(σA): 1.55e-3 / (5.8e7 · 5.067e-10) ≈ 52.7 mΩ.
        let w = paper_wire();
        let r = w.resistance(300.0);
        assert!(r > 0.04 && r < 0.06, "R = {r}");
    }

    #[test]
    fn with_length_preserves_everything_else() {
        let w = paper_wire().with_segments(3).unwrap();
        let w2 = w.with_length(2.0e-3).unwrap();
        assert_eq!(w2.length(), 2.0e-3);
        assert_eq!(w2.segments(), 3);
        assert_eq!(w2.diameter(), w.diameter());
        assert!(w2.electrical_conductance(300.0) < w.electrical_conductance(300.0));
    }

    #[test]
    fn validation() {
        let cu = library::copper;
        assert!(matches!(
            BondWire::new("x", 0.0, 1e-6, cu()),
            Err(BondWireError::InvalidLength(_))
        ));
        assert!(matches!(
            BondWire::new("x", 1e-3, -1.0, cu()),
            Err(BondWireError::InvalidDiameter(_))
        ));
        // Diameter ≥ length violates the thin-wire assumption.
        assert!(matches!(
            BondWire::new("x", 1e-6, 1e-3, cu()),
            Err(BondWireError::InvalidDiameter(_))
        ));
        assert!(matches!(
            BondWire::new("x", 1e-3, 1e-6, cu()).unwrap().with_segments(0),
            Err(BondWireError::ZeroSegments)
        ));
        assert!(paper_wire().with_length(f64::NAN).is_err());
    }

    #[test]
    fn error_display() {
        assert!(BondWireError::InvalidLength(0.0).to_string().contains("length"));
        assert!(BondWireError::InvalidDiameter(0.0)
            .to_string()
            .contains("diameter"));
        assert!(BondWireError::ZeroSegments.to_string().contains("segment"));
    }

    #[test]
    fn display_format() {
        let s = paper_wire().to_string();
        assert!(s.contains("1.55") && s.contains("25.4") && s.contains("copper"));
    }
}
