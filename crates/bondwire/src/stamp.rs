//! Stamping lumped wires into the reduced FIT systems.
//!
//! A wire with `n` segments couples its two grid attachment nodes through a
//! chain of `n` two-terminal conductances with `n − 1` internal DoFs. The
//! internal DoFs are appended after the grid nodes in the *shared* DoF
//! layout used by both the electrical and the thermal system, so one
//! [`WireTopology`] describes the wire's incidence (`P_j` in the paper) for
//! both physics.

use crate::wire::BondWire;
use etherm_fit::Assembler;

/// Incidence information of one wire in the global DoF numbering.
///
/// Local wire nodes are numbered `0 ..= n_segments`: local `0` is grid node
/// `end_a`, local `n_segments` is grid node `end_b`, and locals
/// `1 .. n_segments` map to `internal_offset .. internal_offset + n − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTopology {
    /// Global DoF of the first attachment (chip-side) node.
    pub end_a: usize,
    /// Global DoF of the second attachment (pad-side) node.
    pub end_b: usize,
    /// First global DoF of the wire's internal nodes.
    pub internal_offset: usize,
    /// Number of lumped segments (≥ 1).
    pub n_segments: usize,
}

impl WireTopology {
    /// A single-segment wire directly between two grid nodes.
    pub fn two_terminal(end_a: usize, end_b: usize) -> Self {
        WireTopology {
            end_a,
            end_b,
            internal_offset: usize::MAX,
            n_segments: 1,
        }
    }

    /// Global DoF of local wire node `i ∈ 0..=n_segments`.
    ///
    /// # Panics
    ///
    /// Panics if `i > n_segments`.
    pub fn local_dof(&self, i: usize) -> usize {
        assert!(i <= self.n_segments, "local wire node out of range");
        if i == 0 {
            self.end_a
        } else if i == self.n_segments {
            self.end_b
        } else {
            self.internal_offset + i - 1
        }
    }

    /// Number of internal DoFs.
    pub fn n_internal(&self) -> usize {
        self.n_segments - 1
    }

    /// Average wire temperature `T_bw = XᵀT` over the two *attachment*
    /// nodes (paper Eq. 5) — independent of the segment count, this is the
    /// quantity of interest reported in Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if the DoFs are out of bounds of `t`.
    pub fn average_temperature(&self, t: &[f64]) -> f64 {
        0.5 * (t[self.end_a] + t[self.end_b])
    }

    /// Maximum temperature over all wire nodes (attachments + internal).
    /// For multi-segment wires this resolves the interior hot spot.
    pub fn max_temperature(&self, t: &[f64]) -> f64 {
        (0..=self.n_segments)
            .map(|i| t[self.local_dof(i)])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Temperatures of each segment (mean of its two endpoint DoFs).
    pub fn segment_temperatures(&self, t: &[f64]) -> Vec<f64> {
        (0..self.n_segments)
            .map(|s| 0.5 * (t[self.local_dof(s)] + t[self.local_dof(s + 1)]))
            .collect()
    }
}

/// Which lumped conductance to stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePhysics {
    /// Electrical conductance `G_el(T)`.
    Electrical,
    /// Thermal conductance `G_th(T)`.
    Thermal,
}

/// Stamps the wire's segment conductances into a reduced system.
///
/// `t_full` is the lagged full temperature vector (grid + wire internal
/// DoFs) used to evaluate the temperature-dependent conductances.
///
/// # Panics
///
/// Panics if the topology's segment count differs from the wire's, or DoFs
/// exceed the stamper's map.
pub fn stamp_wire<A: Assembler>(
    wire: &BondWire,
    topo: &WireTopology,
    t_full: &[f64],
    physics: WirePhysics,
    stamper: &mut A,
) {
    assert_eq!(
        topo.n_segments,
        wire.segments(),
        "topology/wire segment mismatch"
    );
    for (s, &t_seg) in topo.segment_temperatures(t_full).iter().enumerate() {
        let g = match physics {
            WirePhysics::Electrical => wire.segment_electrical_conductance(t_seg),
            WirePhysics::Thermal => wire.segment_thermal_conductance(t_seg),
        };
        stamper.add_conductance(topo.local_dof(s), topo.local_dof(s + 1), g);
    }
}

/// Joule heat of the wire: per-segment power
/// `Q_s = G_el,s(T_s)·(Δφ_s)²`, accumulated half/half onto the segment
/// endpoint DoFs of `q`. Returns the wire's total dissipated power (W).
///
/// For the single-segment wire this reduces to the paper's
/// `Q_bw,j = Φᵀ P_j G_el P_jᵀ Φ` distributed by `X_j` (half to each
/// attachment node).
///
/// # Panics
///
/// Panics on inconsistent topology or vector lengths.
pub fn wire_joule_heat(
    wire: &BondWire,
    topo: &WireTopology,
    t_full: &[f64],
    phi_full: &[f64],
    q: &mut [f64],
) -> f64 {
    assert_eq!(
        topo.n_segments,
        wire.segments(),
        "topology/wire segment mismatch"
    );
    let mut total = 0.0;
    for (s, &t_seg) in topo.segment_temperatures(t_full).iter().enumerate() {
        let a = topo.local_dof(s);
        let b = topo.local_dof(s + 1);
        let g = wire.segment_electrical_conductance(t_seg);
        let dphi = phi_full[a] - phi_full[b];
        let p = g * dphi * dphi;
        q[a] += 0.5 * p;
        q[b] += 0.5 * p;
        total += p;
    }
    total
}

/// Current flowing through the wire (A), evaluated on the first segment
/// (all segments carry the same current once the electrical system is
/// solved; small discrepancies indicate an unconverged solve).
///
/// # Panics
///
/// Panics on inconsistent topology.
pub fn wire_current(
    wire: &BondWire,
    topo: &WireTopology,
    t_full: &[f64],
    phi_full: &[f64],
) -> f64 {
    assert_eq!(
        topo.n_segments,
        wire.segments(),
        "topology/wire segment mismatch"
    );
    let temps = topo.segment_temperatures(t_full);
    let g = wire.segment_electrical_conductance(temps[0]);
    g * (phi_full[topo.local_dof(0)] - phi_full[topo.local_dof(1)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use etherm_fit::{DofMap, Stamper};
    use etherm_materials::library;

    fn wire(n: usize) -> BondWire {
        BondWire::new("w", 1.0e-3, 25.4e-6, library::copper())
            .unwrap()
            .with_segments(n)
            .unwrap()
    }

    #[test]
    fn topology_local_dofs() {
        let topo = WireTopology {
            end_a: 3,
            end_b: 7,
            internal_offset: 100,
            n_segments: 3,
        };
        assert_eq!(topo.local_dof(0), 3);
        assert_eq!(topo.local_dof(1), 100);
        assert_eq!(topo.local_dof(2), 101);
        assert_eq!(topo.local_dof(3), 7);
        assert_eq!(topo.n_internal(), 2);
    }

    #[test]
    fn two_terminal_constructor() {
        let topo = WireTopology::two_terminal(1, 5);
        assert_eq!(topo.n_segments, 1);
        assert_eq!(topo.local_dof(0), 1);
        assert_eq!(topo.local_dof(1), 5);
        assert_eq!(topo.n_internal(), 0);
    }

    #[test]
    fn average_temperature_is_endpoint_mean() {
        let topo = WireTopology {
            end_a: 0,
            end_b: 2,
            internal_offset: 3,
            n_segments: 2,
        };
        let t = [300.0, 0.0, 400.0, 999.0];
        assert_eq!(topo.average_temperature(&t), 350.0);
        assert_eq!(topo.max_temperature(&t), 999.0);
        assert_eq!(topo.segment_temperatures(&t), vec![649.5, 699.5]);
    }

    #[test]
    fn single_segment_stamp_matches_paper_block() {
        // System: two free DoFs, one wire between them. The reduced matrix
        // must be [[g, -g], [-g, g]] + structural zeros.
        let w = wire(1);
        let topo = WireTopology::two_terminal(0, 1);
        let map = DofMap::new(2, &[]);
        let mut st = Stamper::new(&map);
        let t = [300.0, 300.0];
        stamp_wire(&w, &topo, &t, WirePhysics::Electrical, &mut st);
        let (a, _) = st.finish();
        let g = w.electrical_conductance(300.0);
        assert!((a.get(0, 0) - g).abs() < 1e-12 * g);
        assert!((a.get(0, 1) + g).abs() < 1e-12 * g);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn chain_of_segments_recovers_whole_wire_resistance() {
        // Wire with 4 segments between Dirichlet potentials: solve the
        // internal nodes and verify the current equals V·G_whole.
        let w = wire(4);
        let v = 0.04;
        let map = DofMap::new(5, &[(0, v), (4, 0.0)]);
        let topo = WireTopology {
            end_a: 0,
            end_b: 4,
            internal_offset: 1,
            n_segments: 4,
        };
        let t = [300.0; 5];
        let mut st = Stamper::new(&map);
        stamp_wire(&w, &topo, &t, WirePhysics::Electrical, &mut st);
        let (a, b) = st.finish();
        let x = a.to_dense().solve(&b).unwrap();
        let phi = map.expand(&x);
        // Linear potential drop across the chain.
        for i in 0..=4 {
            let expect = v * (1.0 - i as f64 / 4.0);
            assert!((phi[i] - expect).abs() < 1e-12, "{phi:?}");
        }
        let i_wire = wire_current(&w, &topo, &t, &phi);
        let expect = v * w.electrical_conductance(300.0);
        assert!((i_wire - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn joule_heat_conserves_total_power() {
        let w = wire(3);
        let topo = WireTopology {
            end_a: 0,
            end_b: 4,
            internal_offset: 1,
            n_segments: 3,
        };
        // Linear potential profile over local nodes 0,1,2,3 → dofs 0,1,2,4.
        let phi = [0.03, 0.02, 0.01, 0.0, 0.0];
        let t = [300.0; 5];
        let mut q = vec![0.0; 5];
        let total = wire_joule_heat(&w, &topo, &t, &phi, &mut q);
        let sum: f64 = q.iter().sum();
        assert!((sum - total).abs() < 1e-15 * total.max(1e-30));
        // P = V²·G with V = 0.03 (uniform temperature → uniform G).
        let expect = 0.03f64.powi(2) * w.electrical_conductance(300.0);
        assert!((total - expect).abs() < 1e-9 * expect, "{total} vs {expect}");
    }

    #[test]
    fn hot_wire_conducts_less() {
        let w = wire(1);
        let topo = WireTopology::two_terminal(0, 1);
        let phi = [0.04, 0.0];
        let cold = [300.0, 300.0];
        let hot = [500.0, 500.0];
        let i_cold = wire_current(&w, &topo, &cold, &phi);
        let i_hot = wire_current(&w, &topo, &hot, &phi);
        assert!(i_hot < i_cold);
    }

    #[test]
    #[should_panic(expected = "segment mismatch")]
    fn topology_mismatch_panics() {
        let w = wire(2);
        let topo = WireTopology::two_terminal(0, 1);
        let mut q = vec![0.0; 2];
        let _ = wire_joule_heat(&w, &topo, &[300.0; 2], &[0.0; 2], &mut q);
    }
}
