//! Lumped electrothermal bonding-wire models (paper §III-B).
//!
//! Bonding wires are orders of magnitude thinner (25.4 µm) than every other
//! package feature, so resolving them in the computational grid would force
//! a prohibitive multiscale mesh. Instead each wire becomes a *lumped
//! element*: a temperature-dependent electrothermal conductance
//! `G_bw(T) = [σ|λ](T_bw) · A / L` stamped between two mesh nodes, with its
//! Joule heat `Q_bw = G_el·(Δφ)²` fed back to the thermal system.
//!
//! * [`BondWire`] — wire geometry + material, single- or multi-segment
//!   (piecewise-linear wire temperature, paper §III-B last paragraph),
//! * [`stamp`] — stamping wires into the reduced FIT systems and computing
//!   their Joule heat and currents,
//! * [`analytic`] — a closed-form 1D fin baseline (the "bonding wire
//!   calculator" family of refs. \[3\], \[6\]) incl. allowable-current search,
//! * [`degradation`] — critical-temperature failure criterion
//!   (`T_crit = 523 K`), threshold-crossing detection and an Arrhenius
//!   damage-accumulation extension.

#![forbid(unsafe_code)]

pub mod analytic;
pub mod degradation;
pub mod stamp;
mod wire;

pub use stamp::WireTopology;
pub use wire::{BondWire, BondWireError};

/// The critical (failure) temperature used throughout the paper:
/// `T_critical = 523 K ≈ 250 °C`, the degradation threshold of the
/// surrounding mold compound.
pub const T_CRITICAL: f64 = 523.0;
