//! Wire degradation and failure criteria.
//!
//! The paper defines failure through the degradation of the surrounding mold
//! compound at `T_critical = 523 K ≈ 250 °C` and asks whether the (6σ band
//! of the) wire temperature crosses that threshold during operation. This
//! module provides the crossing analysis used by the Fig. 7 reproduction and
//! an Arrhenius damage-accumulation extension (the paper's "future research"
//! direction of more sophisticated degradation models).

use crate::T_CRITICAL;

/// Result of assessing a temperature time series against a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureAssessment {
    /// Threshold used (K).
    pub threshold: f64,
    /// Peak temperature reached (K).
    pub peak_temperature: f64,
    /// Time of the peak (s).
    pub peak_time: f64,
    /// First threshold crossing (linear interpolation between samples), if
    /// any.
    pub first_crossing: Option<f64>,
    /// Margin `threshold − peak` (negative when the threshold is violated).
    pub margin: f64,
}

impl FailureAssessment {
    /// Whether the series stays strictly below the threshold.
    pub fn passes(&self) -> bool {
        self.first_crossing.is_none()
    }
}

/// Assesses a sampled temperature series `(times, temps)` against
/// `threshold`.
///
/// # Panics
///
/// Panics if the series is empty or lengths differ.
pub fn assess_series(times: &[f64], temps: &[f64], threshold: f64) -> FailureAssessment {
    assert_eq!(times.len(), temps.len(), "assess_series: length mismatch");
    assert!(!times.is_empty(), "assess_series: empty series");
    let mut peak = f64::NEG_INFINITY;
    let mut peak_time = times[0];
    for (&t, &temp) in times.iter().zip(temps) {
        if temp > peak {
            peak = temp;
            peak_time = t;
        }
    }
    FailureAssessment {
        threshold,
        peak_temperature: peak,
        peak_time,
        first_crossing: first_crossing(times, temps, threshold),
        margin: threshold - peak,
    }
}

/// First time the series reaches `threshold`, linearly interpolated between
/// samples; `None` if it never does.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn first_crossing(times: &[f64], temps: &[f64], threshold: f64) -> Option<f64> {
    assert_eq!(times.len(), temps.len(), "first_crossing: length mismatch");
    if temps.first().is_some_and(|&t| t >= threshold) {
        return times.first().copied();
    }
    for i in 1..temps.len() {
        if temps[i] >= threshold && temps[i - 1] < threshold {
            let f = (threshold - temps[i - 1]) / (temps[i] - temps[i - 1]);
            return Some(times[i - 1] + f * (times[i] - times[i - 1]));
        }
    }
    None
}

/// Convenience: assessment against the paper's `T_critical = 523 K`.
pub fn assess_against_critical(times: &[f64], temps: &[f64]) -> FailureAssessment {
    assess_series(times, temps, T_CRITICAL)
}

/// Arrhenius damage-accumulation model: damage rate
/// `ṙ(T) = A·exp(−E_a / (k_B·T))`, failure when the integral reaches 1.
///
/// This is the standard thermally-activated wear-out form (mold-compound
/// decomposition, intermetallic growth). The default parameters are
/// *illustrative*, normalized so that continuous operation exactly at
/// `T_critical` consumes the lifetime in 1000 h.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrheniusDamage {
    /// Pre-exponential factor `A` (1/s).
    pub prefactor: f64,
    /// Activation energy `E_a` (eV).
    pub activation_energy_ev: f64,
}

/// Boltzmann constant in eV/K.
pub const K_BOLTZMANN_EV: f64 = 8.617333262e-5;

impl Default for ArrheniusDamage {
    fn default() -> Self {
        // Mold-compound-like activation energy.
        let ea = 0.8;
        // Normalize: rate(T_CRITICAL) · (1000 h) = 1.
        let rate_target = 1.0 / (1000.0 * 3600.0);
        let prefactor = rate_target / (-ea / (K_BOLTZMANN_EV * T_CRITICAL)).exp();
        ArrheniusDamage {
            prefactor,
            activation_energy_ev: ea,
        }
    }
}

impl ArrheniusDamage {
    /// Instantaneous damage rate at temperature `t` (1/s).
    pub fn rate(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.prefactor * (-self.activation_energy_ev / (K_BOLTZMANN_EV * t)).exp()
    }

    /// Accumulated damage over a sampled series (trapezoidal rule).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or fewer than two samples are given.
    pub fn accumulate(&self, times: &[f64], temps: &[f64]) -> f64 {
        assert_eq!(times.len(), temps.len(), "accumulate: length mismatch");
        assert!(times.len() >= 2, "accumulate: need at least 2 samples");
        let mut d = 0.0;
        for i in 1..times.len() {
            let dt = times[i] - times[i - 1];
            d += 0.5 * (self.rate(temps[i]) + self.rate(temps[i - 1])) * dt;
        }
        d
    }

    /// Lifetime (s) under constant temperature `t`; `None` when the rate is
    /// zero.
    pub fn lifetime_at(&self, t: f64) -> Option<f64> {
        let r = self.rate(t);
        if r > 0.0 {
            Some(1.0 / r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_is_interpolated() {
        let times = [0.0, 1.0, 2.0];
        let temps = [500.0, 520.0, 540.0];
        // 523 K is reached 3/20 of the way through the second interval.
        let c = first_crossing(&times, &temps, 523.0).unwrap();
        assert!((c - (1.0 + 3.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn crossing_at_start_and_never() {
        assert_eq!(first_crossing(&[0.0, 1.0], &[600.0, 700.0], 523.0), Some(0.0));
        assert_eq!(first_crossing(&[0.0, 1.0], &[300.0, 400.0], 523.0), None);
    }

    #[test]
    fn assessment_summary() {
        let times = [0.0, 10.0, 20.0, 30.0];
        let temps = [300.0, 450.0, 530.0, 525.0];
        let a = assess_against_critical(&times, &temps);
        assert_eq!(a.threshold, 523.0);
        assert_eq!(a.peak_temperature, 530.0);
        assert_eq!(a.peak_time, 20.0);
        assert!(!a.passes());
        assert!(a.margin < 0.0);
        assert!(a.first_crossing.unwrap() > 10.0 && a.first_crossing.unwrap() < 20.0);
    }

    #[test]
    fn passing_series() {
        let a = assess_against_critical(&[0.0, 50.0], &[300.0, 500.0]);
        assert!(a.passes());
        assert!((a.margin - 23.0).abs() < 1e-12);
    }

    #[test]
    fn arrhenius_default_normalization() {
        let d = ArrheniusDamage::default();
        let life = d.lifetime_at(T_CRITICAL).unwrap();
        assert!((life - 1000.0 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn arrhenius_rate_monotone_in_temperature() {
        let d = ArrheniusDamage::default();
        assert!(d.rate(400.0) < d.rate(500.0));
        assert!(d.rate(500.0) < d.rate(600.0));
        assert_eq!(d.rate(-5.0), 0.0);
        assert!(d.lifetime_at(-5.0).is_none());
    }

    #[test]
    fn accumulation_matches_constant_rate() {
        let d = ArrheniusDamage::default();
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 100.0).collect();
        let temps = vec![500.0; 11];
        let acc = d.accumulate(&times, &temps);
        assert!((acc - d.rate(500.0) * 1000.0).abs() < 1e-18);
    }

    #[test]
    fn hotter_excursions_accumulate_more_damage() {
        let d = ArrheniusDamage::default();
        let times: Vec<f64> = (0..=50).map(|i| i as f64).collect();
        let cool = vec![450.0; 51];
        let mut spike = cool.clone();
        for t in spike.iter_mut().take(30).skip(20) {
            *t = 520.0;
        }
        assert!(d.accumulate(&times, &spike) > d.accumulate(&times, &cool));
    }
}
