//! Wire degradation and failure criteria.
//!
//! The paper defines failure through the degradation of the surrounding mold
//! compound at `T_critical = 523 K ≈ 250 °C` and asks whether the (6σ band
//! of the) wire temperature crosses that threshold during operation. This
//! module provides the crossing analysis used by the Fig. 7 reproduction and
//! an Arrhenius damage-accumulation extension (the paper's "future research"
//! direction of more sophisticated degradation models).

use crate::T_CRITICAL;

/// Result of assessing a temperature time series against a threshold.
///
/// Failure semantics: *reaching* the threshold counts — a series that
/// touches `threshold` without exceeding it has a `first_crossing` (at the
/// touch time) and `margin == 0`, consistent with the failure criterion
/// `T ≥ T_critical` used throughout the reliability engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureAssessment {
    /// Threshold used (K).
    pub threshold: f64,
    /// Peak temperature reached (K).
    pub peak_temperature: f64,
    /// Time of the peak (s); the first occurrence for a tied peak.
    pub peak_time: f64,
    /// First time the series reaches the threshold (linear interpolation
    /// between samples), if it ever does.
    pub first_crossing: Option<f64>,
    /// Margin `threshold − peak`: positive when the series passes, zero
    /// when it exactly touches the threshold, negative when it exceeds it.
    pub margin: f64,
}

impl FailureAssessment {
    /// Whether the series stays strictly below the threshold
    /// (`peak < threshold ⇔ no crossing`).
    pub fn passes(&self) -> bool {
        self.first_crossing.is_none()
    }
}

/// Assesses a sampled temperature series `(times, temps)` against
/// `threshold`.
///
/// # Panics
///
/// Panics if the series is empty or lengths differ.
pub fn assess_series(times: &[f64], temps: &[f64], threshold: f64) -> FailureAssessment {
    assert_eq!(times.len(), temps.len(), "assess_series: length mismatch");
    assert!(!times.is_empty(), "assess_series: empty series");
    let mut peak = f64::NEG_INFINITY;
    let mut peak_time = times[0];
    for (&t, &temp) in times.iter().zip(temps) {
        if temp > peak {
            peak = temp;
            peak_time = t;
        }
    }
    FailureAssessment {
        threshold,
        peak_temperature: peak,
        peak_time,
        first_crossing: first_crossing(times, temps, threshold),
        margin: threshold - peak,
    }
}

/// First time the series reaches `threshold`, linearly interpolated between
/// samples; `None` if it never does.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn first_crossing(times: &[f64], temps: &[f64], threshold: f64) -> Option<f64> {
    assert_eq!(times.len(), temps.len(), "first_crossing: length mismatch");
    if temps.first().is_some_and(|&t| t >= threshold) {
        return times.first().copied();
    }
    for i in 1..temps.len() {
        if temps[i] >= threshold && temps[i - 1] < threshold {
            let f = (threshold - temps[i - 1]) / (temps[i] - temps[i - 1]);
            return Some(times[i - 1] + f * (times[i] - times[i - 1]));
        }
    }
    None
}

/// Convenience: assessment against the paper's `T_critical = 523 K`.
pub fn assess_against_critical(times: &[f64], temps: &[f64]) -> FailureAssessment {
    assess_series(times, temps, T_CRITICAL)
}

/// Arrhenius damage-accumulation model: damage rate
/// `ṙ(T) = A·exp(−E_a / (k_B·T))`, failure when the integral reaches 1.
///
/// This is the standard thermally-activated wear-out form (mold-compound
/// decomposition, intermetallic growth). The default parameters are
/// *illustrative*, normalized so that continuous operation exactly at
/// `T_critical` consumes the lifetime in 1000 h.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrheniusDamage {
    /// Pre-exponential factor `A` (1/s).
    pub prefactor: f64,
    /// Activation energy `E_a` (eV).
    pub activation_energy_ev: f64,
}

/// Boltzmann constant in eV/K.
pub const K_BOLTZMANN_EV: f64 = 8.617333262e-5;

impl Default for ArrheniusDamage {
    fn default() -> Self {
        // Mold-compound-like activation energy.
        let ea = 0.8;
        // Normalize: rate(T_CRITICAL) · (1000 h) = 1.
        let rate_target = 1.0 / (1000.0 * 3600.0);
        let prefactor = rate_target / (-ea / (K_BOLTZMANN_EV * T_CRITICAL)).exp();
        ArrheniusDamage {
            prefactor,
            activation_energy_ev: ea,
        }
    }
}

impl ArrheniusDamage {
    /// Instantaneous damage rate at temperature `t` (1/s).
    pub fn rate(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        self.prefactor * (-self.activation_energy_ev / (K_BOLTZMANN_EV * t)).exp()
    }

    /// Accumulated damage over a sampled series (trapezoidal rule).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or fewer than two samples are given.
    pub fn accumulate(&self, times: &[f64], temps: &[f64]) -> f64 {
        assert_eq!(times.len(), temps.len(), "accumulate: length mismatch");
        assert!(times.len() >= 2, "accumulate: need at least 2 samples");
        let mut d = 0.0;
        for i in 1..times.len() {
            let dt = times[i] - times[i - 1];
            d += 0.5 * (self.rate(temps[i]) + self.rate(temps[i - 1])) * dt;
        }
        d
    }

    /// Lifetime (s) under constant temperature `t`; `None` when the rate is
    /// zero.
    pub fn lifetime_at(&self, t: f64) -> Option<f64> {
        let r = self.rate(t);
        if r > 0.0 {
            Some(1.0 / r)
        } else {
            None
        }
    }

    /// Time at which the accumulated damage reaches 1 (failure), under the
    /// same trapezoidal model as [`ArrheniusDamage::accumulate`]: the rate
    /// is linearly interpolated inside each sampling interval, making the
    /// cumulative damage piecewise quadratic — the crossing of 1 is solved
    /// exactly within the violating interval, so the result is consistent
    /// with `accumulate` on any refinement of the same rate profile.
    /// Returns `None` if the series ends before the lifetime is consumed.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or fewer than two samples are given.
    pub fn failure_time(&self, times: &[f64], temps: &[f64]) -> Option<f64> {
        assert_eq!(times.len(), temps.len(), "failure_time: length mismatch");
        assert!(times.len() >= 2, "failure_time: need at least 2 samples");
        let mut damage = 0.0;
        let mut r_prev = self.rate(temps[0]);
        for i in 1..times.len() {
            let dt = times[i] - times[i - 1];
            let r_cur = self.rate(temps[i]);
            let increment = 0.5 * (r_prev + r_cur) * dt;
            if increment > 0.0 && damage + increment >= 1.0 {
                // Inside the interval: damage(τ) = d₀ + r₀τ + ½(r₁−r₀)τ²/Δt.
                // Solve aτ² + bτ − c = 0 for the first root; the Citardauq
                // form 2c/(b + √(b² + 4ac)) is the smaller positive root for
                // every sign of `a` and is numerically stable.
                let need = 1.0 - damage;
                let a = 0.5 * (r_cur - r_prev) / dt;
                let b = r_prev;
                let disc = (b * b + 4.0 * a * need).max(0.0);
                let tau = 2.0 * need / (b + disc.sqrt());
                return Some(times[i - 1] + tau.clamp(0.0, dt));
            }
            damage += increment;
            r_prev = r_cur;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_is_interpolated() {
        let times = [0.0, 1.0, 2.0];
        let temps = [500.0, 520.0, 540.0];
        // 523 K is reached 3/20 of the way through the second interval.
        let c = first_crossing(&times, &temps, 523.0).unwrap();
        assert!((c - (1.0 + 3.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn crossing_at_start_and_never() {
        assert_eq!(first_crossing(&[0.0, 1.0], &[600.0, 700.0], 523.0), Some(0.0));
        assert_eq!(first_crossing(&[0.0, 1.0], &[300.0, 400.0], 523.0), None);
    }

    #[test]
    fn assessment_summary() {
        let times = [0.0, 10.0, 20.0, 30.0];
        let temps = [300.0, 450.0, 530.0, 525.0];
        let a = assess_against_critical(&times, &temps);
        assert_eq!(a.threshold, 523.0);
        assert_eq!(a.peak_temperature, 530.0);
        assert_eq!(a.peak_time, 20.0);
        assert!(!a.passes());
        assert!(a.margin < 0.0);
        assert!(a.first_crossing.unwrap() > 10.0 && a.first_crossing.unwrap() < 20.0);
    }

    #[test]
    fn passing_series() {
        let a = assess_against_critical(&[0.0, 50.0], &[300.0, 500.0]);
        assert!(a.passes());
        assert!((a.margin - 23.0).abs() < 1e-12);
    }

    #[test]
    fn arrhenius_default_normalization() {
        let d = ArrheniusDamage::default();
        let life = d.lifetime_at(T_CRITICAL).unwrap();
        assert!((life - 1000.0 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn arrhenius_rate_monotone_in_temperature() {
        let d = ArrheniusDamage::default();
        assert!(d.rate(400.0) < d.rate(500.0));
        assert!(d.rate(500.0) < d.rate(600.0));
        assert_eq!(d.rate(-5.0), 0.0);
        assert!(d.lifetime_at(-5.0).is_none());
    }

    #[test]
    fn accumulation_matches_constant_rate() {
        let d = ArrheniusDamage::default();
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 100.0).collect();
        let temps = vec![500.0; 11];
        let acc = d.accumulate(&times, &temps);
        assert!((acc - d.rate(500.0) * 1000.0).abs() < 1e-18);
    }

    #[test]
    fn touching_the_threshold_counts_as_a_crossing() {
        // [520, 523, 520]: touches exactly, never exceeds. Failure semantics
        // are T ≥ threshold, so the touch time is the crossing and the
        // margin is exactly zero.
        let times = [0.0, 1.0, 2.0];
        let temps = [520.0, 523.0, 520.0];
        let a = assess_against_critical(&times, &temps);
        assert_eq!(a.first_crossing, Some(1.0));
        assert!(!a.passes());
        assert_eq!(a.margin, 0.0);
        assert_eq!(a.peak_temperature, 523.0);
        assert_eq!(a.peak_time, 1.0);
    }

    #[test]
    fn first_of_multiple_crossings_is_returned() {
        // Crosses in (1, 2), dips below, crosses again in (3, 4): the first
        // crossing wins and is the interpolated one.
        let times = [0.0, 1.0, 2.0, 3.0, 4.0];
        let temps = [500.0, 513.0, 533.0, 510.0, 543.0];
        let c = first_crossing(&times, &temps, 523.0).unwrap();
        assert!((c - (1.0 + 10.0 / 20.0)).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn failure_time_matches_lifetime_at_constant_temperature() {
        let d = ArrheniusDamage::default();
        let life = d.lifetime_at(T_CRITICAL).unwrap();
        // Series long enough to contain the lifetime.
        let times = [0.0, 2.0 * life];
        let temps = [T_CRITICAL, T_CRITICAL];
        let tf = d.failure_time(&times, &temps).unwrap();
        assert!((tf - life).abs() < 1e-9 * life, "{tf} vs {life}");
        // Truncated before the lifetime: no failure.
        assert!(d.failure_time(&[0.0, 0.5 * life], &temps).is_none());
    }

    #[test]
    fn failure_time_iff_accumulated_damage_reaches_one() {
        let d = ArrheniusDamage::default();
        let life500 = d.lifetime_at(500.0).unwrap();
        // Ramp through temperatures; scale times so failure lands inside.
        let times: Vec<f64> = (0..=50).map(|i| i as f64 * life500 / 25.0).collect();
        let temps: Vec<f64> = (0..=50).map(|i| 450.0 + 2.0 * i as f64).collect();
        let total = d.accumulate(&times, &temps);
        assert!(total > 1.0, "profile must consume the lifetime ({total})");
        let tf = d.failure_time(&times, &temps).unwrap();
        // Damage accumulated up to tf is exactly 1 (evaluate by splitting
        // the series at tf with the interpolated temperature).
        let k = times.partition_point(|&t| t < tf);
        let f = (tf - times[k - 1]) / (times[k] - times[k - 1]);
        let t_interp = temps[k - 1] + f * (temps[k] - temps[k - 1]);
        let mut cut_times: Vec<f64> = times[..k].to_vec();
        let mut cut_temps: Vec<f64> = temps[..k].to_vec();
        cut_times.push(tf);
        cut_temps.push(t_interp);
        let damage_at_tf = d.accumulate(&cut_times, &cut_temps);
        // The interval model is linear-in-rate, not linear-in-temperature,
        // so re-evaluating at the interpolated temperature is only
        // approximately the same — tight on this smooth ramp.
        assert!(
            (damage_at_tf - 1.0).abs() < 1e-4,
            "damage at failure time: {damage_at_tf}"
        );
        // Before tf the damage is below 1.
        let damage_before = d.accumulate(&times[..k], &temps[..k]);
        assert!(damage_before < 1.0);
    }

    #[test]
    fn failure_time_invariant_under_refinement_of_linear_rate() {
        // Choose temperatures so the *rate* is exactly linear in time; the
        // trapezoidal rule is then exact and both the accumulated damage and
        // the failure time must be grid-independent to machine precision.
        let d = ArrheniusDamage::default();
        let r0 = d.rate(480.0);
        let r1 = d.rate(560.0);
        let t_end = 2.5 / (0.5 * (r0 + r1)); // total damage 2.5 → failure inside
        let temp_of_rate = |r: f64| -> f64 {
            // Invert r = A·exp(−Ea/(k_B·T)).
            -d.activation_energy_ev / (K_BOLTZMANN_EV * (r / d.prefactor).ln())
        };
        let series = |n: usize| -> (Vec<f64>, Vec<f64>) {
            let times: Vec<f64> = (0..=n).map(|i| t_end * i as f64 / n as f64).collect();
            let temps: Vec<f64> = times
                .iter()
                .map(|&t| temp_of_rate(r0 + (r1 - r0) * t / t_end))
                .collect();
            (times, temps)
        };
        let (tc, xc) = series(7);
        let (tf_coarse, acc_coarse) = (d.failure_time(&tc, &xc).unwrap(), d.accumulate(&tc, &xc));
        for n in [14, 70, 700] {
            let (t, x) = series(n);
            let tf = d.failure_time(&t, &x).unwrap();
            let acc = d.accumulate(&t, &x);
            assert!(
                (tf - tf_coarse).abs() < 1e-9 * tf_coarse,
                "n={n}: {tf} vs {tf_coarse}"
            );
            assert!(
                (acc - acc_coarse).abs() < 1e-9 * acc_coarse,
                "n={n}: {acc} vs {acc_coarse}"
            );
        }
    }

    #[test]
    fn accumulate_converges_under_refinement_of_smooth_profile() {
        // A smooth (nonlinear-rate) profile: refinement converges at the
        // trapezoidal O(h²) and the fine-grid values are mutually
        // consistent.
        let d = ArrheniusDamage::default();
        let profile = |t: f64| 450.0 + 60.0 * (t / 1000.0).sin();
        let acc_n = |n: usize| {
            let times: Vec<f64> = (0..=n).map(|i| 3000.0 * i as f64 / n as f64).collect();
            let temps: Vec<f64> = times.iter().map(|&t| profile(t)).collect();
            d.accumulate(&times, &temps)
        };
        let a100 = acc_n(100);
        let a200 = acc_n(200);
        let a400 = acc_n(400);
        // Richardson: error quarters per halving.
        let e1 = (a200 - a400).abs();
        let e0 = (a100 - a200).abs();
        assert!(e1 < 0.35 * e0, "trapezoidal convergence: {e0} -> {e1}");
        assert!((a100 - a400).abs() < 1e-3 * a400);
    }

    #[test]
    fn hotter_excursions_accumulate_more_damage() {
        let d = ArrheniusDamage::default();
        let times: Vec<f64> = (0..=50).map(|i| i as f64).collect();
        let cool = vec![450.0; 51];
        let mut spike = cool.clone();
        for t in spike.iter_mut().take(30).skip(20) {
            *t = 520.0;
        }
        assert!(d.accumulate(&times, &spike) > d.accumulate(&times, &cool));
    }
}
