//! Shared helpers for the experiment regeneration binaries.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; see
//! DESIGN.md §5 for the experiment index. This library provides the tiny
//! argument parser (no CLI dependencies) and the package/Monte Carlo
//! plumbing every experiment shares.

use etherm_core::{Simulator, SolverOptions, TransientSolution};
use etherm_package::{build_model, BuildOptions, BuiltPackage, PackageGeometry};
use etherm_uq::dist::Distribution;

/// Returns the value following `--name` parsed as `f64`, or `default`.
///
/// # Panics
///
/// Panics with a clear message when the value is present but unparsable.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got '{v}'"))
        })
        .unwrap_or(default)
}

/// Returns the value following `--name` parsed as `usize`, or `default`.
///
/// # Panics
///
/// Panics when the value is present but unparsable.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got '{v}'"))
        })
        .unwrap_or(default)
}

/// Returns the string following `--name`, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether the bare flag `--name` is present.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Standard experiment mesh for Monte Carlo sweeps (validated against the
/// fine mesh in `conv_mesh`; the hottest-wire error is ≲ 0.1 K).
pub fn mc_build_options() -> BuildOptions {
    BuildOptions {
        target_spacing_xy: arg_f64("mesh-xy", 0.42e-3),
        target_spacing_z: arg_f64("mesh-z", 0.22e-3),
        ..BuildOptions::paper_fig7()
    }
}

/// Builds the calibrated paper package on the MC mesh.
///
/// # Panics
///
/// Panics if the model cannot be built (programmer error in the presets).
pub fn build_paper_package() -> BuiltPackage {
    let geometry = PackageGeometry::paper();
    build_model(&geometry, &mc_build_options()).expect("paper package builds")
}

/// Runs one transient of the paper scenario (50 s, 50 steps unless
/// overridden by `--steps`) and returns the solution.
///
/// # Panics
///
/// Panics on solver failure — experiments should fail loudly.
pub fn run_paper_transient(built: &BuiltPackage, snapshots: &[f64]) -> TransientSolution {
    let steps = arg_usize("steps", 50);
    let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
    sim.run_transient(50.0, steps, snapshots).expect("transient solve")
}

/// Evaluates one Monte Carlo sample: applies the elongations and runs the
/// transient, returning the flattened `wire × time` temperature matrix.
///
/// # Panics
///
/// Panics on solver failure.
pub fn mc_sample_outputs(built: &mut BuiltPackage, deltas: &[f64], steps: usize) -> Vec<f64> {
    built
        .apply_elongations(deltas)
        .expect("sampled elongations are < 1");
    let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
    let sol = sim
        .run_transient(50.0, steps, &[])
        .expect("transient solve");
    let mut out = Vec::with_capacity(sol.n_wires() * sol.n_times());
    for j in 0..sol.n_wires() {
        out.extend_from_slice(sol.wire_series(j));
    }
    out
}

/// Twelve references to the same distribution (the wires' iid elongations).
pub fn iid_inputs<D: Distribution>(dist: &D, n: usize) -> Vec<&dyn Distribution> {
    (0..n).map(|_| dist as &dyn Distribution).collect()
}

/// Formats a Kelvin value with one decimal.
pub fn fmt_k(v: f64) -> String {
    format!("{v:.1} K")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_helpers_fall_back_to_defaults() {
        assert_eq!(arg_f64("definitely-not-passed", 2.5), 2.5);
        assert_eq!(arg_usize("definitely-not-passed", 7), 7);
        assert!(!arg_flag("definitely-not-passed"));
        assert!(arg_value("definitely-not-passed").is_none());
    }

    #[test]
    fn fmt_kelvin() {
        assert_eq!(fmt_k(333.456), "333.5 K");
    }
}
