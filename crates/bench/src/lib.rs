//! Shared helpers for the experiment regeneration binaries.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; see
//! DESIGN.md §5 for the experiment index. This library provides the tiny
//! argument parser (no CLI dependencies) and the package/Monte Carlo
//! plumbing every experiment shares.

#![forbid(unsafe_code)]

use etherm_core::{Simulator, SolveCounters, SolverOptions, TransientSolution};
use etherm_package::{build_model, BuildOptions, BuiltPackage, PackageGeometry};
use etherm_uq::dist::Distribution;

/// One benchmark run in the record schema shared by `BENCH_transient.json`
/// and `BENCH_scaling.json`: configuration label, preconditioner name, wall
/// time and the simulator's cumulative solve/preconditioner counters.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Human-readable configuration label.
    pub config: String,
    /// Preconditioner name (`PrecondKind::describe`).
    pub precond: String,
    /// Wall time of the transient (s).
    pub wall_s: f64,
    /// Total Picard iterations.
    pub picard_iterations: usize,
    /// Total CG iterations (electrical + thermal).
    pub cg_iterations: usize,
    /// Number of linear solves.
    pub solves: usize,
    /// Preconditioner (re)builds and refreshes.
    pub precond_rebuilds: usize,
    /// Solves that reused a cached preconditioner unchanged.
    pub precond_reuses: usize,
    /// Largest AMG coarsest-level dimension (0 for single-level
    /// preconditioners).
    pub peak_coarse_dim: usize,
}

impl RunRecord {
    /// Builds a record from a timed transient run.
    pub fn new(
        config: impl Into<String>,
        options: &SolverOptions,
        wall_s: f64,
        solution: &TransientSolution,
        counters: SolveCounters,
    ) -> Self {
        RunRecord {
            config: config.into(),
            precond: options.preconditioner.describe(),
            wall_s,
            picard_iterations: solution.picard_iterations.iter().sum(),
            cg_iterations: counters.electrical_iterations + counters.thermal_iterations,
            solves: counters.electrical_solves + counters.thermal_solves,
            precond_rebuilds: counters.precond_rebuilds,
            precond_reuses: counters.precond_reuses,
            peak_coarse_dim: counters.peak_coarse_dim,
        }
    }

    /// Builds a record from a timed campaign (many runs on one or more
    /// sessions) whose per-run solutions were consumed by the QoI
    /// extraction: all iteration statistics come from the merged
    /// [`SolveCounters`].
    pub fn from_counters(
        config: impl Into<String>,
        options: &SolverOptions,
        wall_s: f64,
        counters: SolveCounters,
    ) -> Self {
        RunRecord {
            config: config.into(),
            precond: options.preconditioner.describe(),
            wall_s,
            picard_iterations: counters.picard_iterations,
            cg_iterations: counters.electrical_iterations + counters.thermal_iterations,
            solves: counters.electrical_solves + counters.thermal_solves,
            precond_rebuilds: counters.precond_rebuilds,
            precond_reuses: counters.precond_reuses,
            peak_coarse_dim: counters.peak_coarse_dim,
        }
    }

    /// Mean CG iterations per solve (the mesh-scaling quality metric).
    pub fn iters_per_solve(&self) -> f64 {
        self.cg_iterations as f64 / self.solves.max(1) as f64
    }

    /// Renders the record as one JSON object, prefixed by `indent`.
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{\"config\": \"{}\", \"precond\": \"{}\", \"wall_s\": {:.3}, \
             \"picard_iterations\": {}, \"cg_iterations\": {}, \"solves\": {}, \
             \"precond_rebuilds\": {}, \"precond_reuses\": {}, \"peak_coarse_dim\": {}}}",
            escape_json(&self.config),
            escape_json(&self.precond),
            self.wall_s,
            self.picard_iterations,
            self.cg_iterations,
            self.solves,
            self.precond_rebuilds,
            self.precond_reuses,
            self.peak_coarse_dim,
        )
    }
}

/// Escapes backslashes, quotes and control characters for embedding in a
/// JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs one timed transient (snapshot at `t_end`) and returns the
/// shared-schema [`RunRecord`] plus the solution — the common core of
/// `bench_transient` and `bench_scaling`.
///
/// # Panics
///
/// Panics on solver failure — benchmarks should fail loudly.
pub fn timed_transient_run(
    built: &BuiltPackage,
    solver: SolverOptions,
    config: impl Into<String>,
    t_end: f64,
    steps: usize,
) -> (RunRecord, TransientSolution) {
    let sim = Simulator::new(&built.model, solver.clone()).expect("simulator");
    let start = std::time::Instant::now();
    let solution = sim
        .run_transient(t_end, steps, &[t_end])
        .expect("transient run");
    let wall_s = start.elapsed().as_secs_f64();
    let record = RunRecord::new(config, &solver, wall_s, &solution, sim.counters());
    (record, solution)
}

/// Returns the value following `--name` parsed as `f64`, or `default`.
///
/// # Panics
///
/// Panics with a clear message when the value is present but unparsable.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got '{v}'"))
        })
        .unwrap_or(default)
}

/// Returns the value following `--name` parsed as `usize`, or `default`.
///
/// # Panics
///
/// Panics when the value is present but unparsable.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_value(name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got '{v}'"))
        })
        .unwrap_or(default)
}

/// Returns the string following `--name`, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether the bare flag `--name` is present.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Standard experiment mesh for Monte Carlo sweeps (validated against the
/// fine mesh in `conv_mesh`; the hottest-wire error is ≲ 0.1 K).
pub fn mc_build_options() -> BuildOptions {
    BuildOptions {
        target_spacing_xy: arg_f64("mesh-xy", 0.42e-3),
        target_spacing_z: arg_f64("mesh-z", 0.22e-3),
        ..BuildOptions::paper_fig7()
    }
}

/// Builds the calibrated paper package on the MC mesh.
///
/// # Panics
///
/// Panics if the model cannot be built (programmer error in the presets).
pub fn build_paper_package() -> BuiltPackage {
    let geometry = PackageGeometry::paper();
    build_model(&geometry, &mc_build_options()).expect("paper package builds")
}

/// Runs one transient of the paper scenario (50 s, 50 steps unless
/// overridden by `--steps`) and returns the solution.
///
/// # Panics
///
/// Panics on solver failure — experiments should fail loudly.
pub fn run_paper_transient(built: &BuiltPackage, snapshots: &[f64]) -> TransientSolution {
    let steps = arg_usize("steps", 50);
    let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
    sim.run_transient(50.0, steps, snapshots).expect("transient solve")
}

/// Evaluates one Monte Carlo sample the pre-session way: applies the
/// elongations to the model and rebuilds the simulator. Kept as the
/// rebuild-per-sample *baseline* of `bench_uq`; campaign code should use
/// [`BuiltPackage::elongation_scenario`] with `etherm_core::run_ensemble`
/// instead.
///
/// # Panics
///
/// Panics on solver failure.
pub fn mc_sample_outputs(built: &mut BuiltPackage, deltas: &[f64], steps: usize) -> Vec<f64> {
    mc_sample_outputs_with(built, deltas, steps, SolverOptions::fast())
}

/// [`mc_sample_outputs`] with explicit solver options.
///
/// # Panics
///
/// Panics on solver failure.
pub fn mc_sample_outputs_with(
    built: &mut BuiltPackage,
    deltas: &[f64],
    steps: usize,
    options: SolverOptions,
) -> Vec<f64> {
    built
        .apply_elongations(deltas)
        .expect("sampled elongations are < 1");
    let sim = Simulator::new(&built.model, options).expect("simulator");
    let sol = sim
        .run_transient(50.0, steps, &[])
        .expect("transient solve");
    flatten_wire_series(&sol)
}

/// Flattens a solution into the campaign QoI layout `wire × time` (output
/// index `j·n_times + i`) shared by `fig07`, `bench_uq` and the tests.
pub fn flatten_wire_series(sol: &TransientSolution) -> Vec<f64> {
    let mut out = Vec::with_capacity(sol.n_wires() * sol.n_times());
    for j in 0..sol.n_wires() {
        out.extend_from_slice(sol.wire_series(j));
    }
    out
}

/// Twelve references to the same distribution (the wires' iid elongations).
pub fn iid_inputs<D: Distribution>(dist: &D, n: usize) -> Vec<&dyn Distribution> {
    (0..n).map(|_| dist as &dyn Distribution).collect()
}

/// Formats a Kelvin value with one decimal.
pub fn fmt_k(v: f64) -> String {
    format!("{v:.1} K")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_helpers_fall_back_to_defaults() {
        assert_eq!(arg_f64("definitely-not-passed", 2.5), 2.5);
        assert_eq!(arg_usize("definitely-not-passed", 7), 7);
        assert!(!arg_flag("definitely-not-passed"));
        assert!(arg_value("definitely-not-passed").is_none());
    }

    #[test]
    fn fmt_kelvin() {
        assert_eq!(fmt_k(333.456), "333.5 K");
    }

    #[test]
    fn run_record_serializes_shared_schema() {
        let rec = RunRecord {
            config: "lazy \"cache\"".into(),
            precond: "ic(1)".into(),
            wall_s: 1.25,
            picard_iterations: 10,
            cg_iterations: 100,
            solves: 20,
            precond_rebuilds: 2,
            precond_reuses: 18,
            peak_coarse_dim: 0,
        };
        let json = rec.to_json("  ");
        for key in [
            "\"config\"",
            "\"precond\"",
            "\"wall_s\"",
            "\"picard_iterations\"",
            "\"cg_iterations\"",
            "\"solves\"",
            "\"precond_rebuilds\"",
            "\"precond_reuses\"",
            "\"peak_coarse_dim\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("lazy \\\"cache\\\""), "quote not escaped");
        assert!((rec.iters_per_solve() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn escape_json_handles_control_characters() {
        assert_eq!(escape_json(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_json("line1\nline2\tend\r"), "line1\\nline2\\tend\\r");
        assert_eq!(escape_json("bell\u{7}"), "bell\\u0007");
    }
}
