//! **Fig. 2** — bonding-wire modeling by a lumped element.
//!
//! Shows the two-terminal stamp `G_bw(T)` of the paper and validates the
//! lumped approach against a fully grid-resolved wire on a micro example:
//! a thin conducting bar either meshed explicitly or replaced by the lumped
//! element between its end nodes must produce the same end-to-end current.

use etherm_bondwire::stamp::{stamp_wire, wire_current, WirePhysics};
use etherm_bondwire::{BondWire, WireTopology};
use etherm_fit::{DofMap, Stamper};
use etherm_grid::{Axis, Grid3};
use etherm_materials::library;

fn main() {
    let wire = BondWire::new("fig2", 1.0e-3, 25.4e-6, library::copper()).unwrap();
    let t = 300.0;
    let g_el = wire.electrical_conductance(t);
    let g_th = wire.thermal_conductance(t);

    println!("Fig. 2: lumped bonding-wire element");
    println!();
    println!("   o--[ G_bw(T) ]--o        G_bw stamped as  [[ g, -g],");
    println!("                                              [-g,  g]]");
    println!();
    println!("wire: L = 1 mm, d = 25.4 um, copper at {t} K");
    println!("  G_el = sigma A / L = {g_el:.4e} S   (R = {:.2} mOhm)", 1e3 / g_el);
    println!("  G_th = lambda A / L = {g_th:.4e} W/K");

    // --- validation against a grid-resolved wire --------------------------
    // Resolve a 1 mm × 25.4 µm × 25.4 µm copper bar with 20 cells along its
    // axis and compare its end-to-end conductance with the lumped value.
    let d = 25.4e-6;
    let grid = Grid3::new(
        Axis::uniform(0.0, 1.0e-3, 20).unwrap(),
        Axis::uniform(0.0, d, 1).unwrap(),
        Axis::uniform(0.0, d, 1).unwrap(),
    );
    let sigma = library::copper().sigma(t);
    let m: Vec<f64> = (0..grid.n_edges())
        .map(|e| sigma * grid.dual_area(e) / grid.edge_length(e))
        .collect();
    // Dirichlet: x = 0 plane at 1 mV, x = 1 mm plane at 0.
    let v = 1e-3;
    let fixed: Vec<(usize, f64)> = (0..grid.n_nodes())
        .filter_map(|n| {
            let x = grid.node_position(n).0;
            if x == 0.0 {
                Some((n, v))
            } else if (x - 1.0e-3).abs() < 1e-12 {
                Some((n, 0.0))
            } else {
                None
            }
        })
        .collect();
    let map = DofMap::new(grid.n_nodes(), &fixed);
    let mut st = Stamper::new(&map);
    for e in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(e);
        st.add_conductance(a, b, m[e]);
    }
    let (a, b) = st.finish();
    let x = a.to_dense().solve(&b).unwrap();
    let phi = map.expand(&x);
    // Current through the first x-layer of edges.
    let mut current = 0.0;
    for e in 0..grid.n_edges() {
        let (na, nb) = grid.edge_endpoints(e);
        if grid.node_position(na).0 == 0.0 && grid.node_position(nb).0 > 0.0 {
            current += m[e] * (phi[na] - phi[nb]);
        }
    }
    let g_resolved = current / v;

    // The grid bar has a square cross-section d²; the lumped wire a circular
    // πd²/4 — compare conductance per cross-section area.
    let g_resolved_circ = g_resolved * (std::f64::consts::PI / 4.0);
    let rel = (g_resolved_circ - g_el).abs() / g_el;
    println!();
    println!("validation vs grid-resolved wire (20 cells along the axis):");
    println!("  resolved G (square cross-section)    = {g_resolved:.4e} S");
    println!("  resolved G (scaled to circular area) = {g_resolved_circ:.4e} S");
    println!("  lumped   G_el                        = {g_el:.4e} S");
    println!("  relative difference                  = {rel:.2e}");

    // --- lumped stamp demo --------------------------------------------------
    let map2 = DofMap::new(2, &[(0, v), (1, 0.0)]);
    let mut st2 = Stamper::new(&map2);
    let topo = WireTopology::two_terminal(0, 1);
    stamp_wire(&wire, &topo, &[t, t], WirePhysics::Electrical, &mut st2);
    let phi2 = [v, 0.0];
    let i_lumped = wire_current(&wire, &topo, &[t, t], &phi2);
    println!();
    println!("lumped element driven at {v} V: I = {:.3} mA", i_lumped * 1e3);
    println!("grid cost avoided: resolving one wire at d/2 resolution needs ~{} cells;",
        ((1.0e-3 / (d / 2.0)) as usize) * 2 * 2);
    println!("the lumped element costs one 2x2 stamp (the paper's multiscale argument).");

    assert!(rel < 0.01, "lumped vs resolved mismatch");
    println!("\nLUMPED MODEL VERIFIED (< 1% vs resolved wire)");
}
