//! **Fig. 1** — the discrete electrothermal house.
//!
//! The figure is structural: it asserts the exact dualities the FIT
//! discretization must satisfy. This binary *verifies* them numerically on
//! a representative non-uniform grid and prints the house with the checked
//! properties annotated.

use etherm_grid::{operators, Axis, Grid3};
use etherm_numerics::vector;

fn main() {
    let grid = Grid3::new(
        Axis::from_coords(vec![0.0, 0.4e-3, 1.0e-3, 1.3e-3]).unwrap(),
        Axis::from_coords(vec![0.0, 0.5e-3, 0.8e-3]).unwrap(),
        Axis::from_coords(vec![0.0, 0.2e-3, 0.7e-3]).unwrap(),
    );
    let g = operators::gradient(&grid);
    let s = operators::divergence(&grid);

    // Duality S̃ = −Gᵀ.
    let mut gt = g.transpose();
    gt.scale(-1.0);
    let duality_ok = gt == s;

    // Stiffness K = Gᵀ M G: symmetric, zero row sums, M-matrix signs.
    let m: Vec<f64> = (0..grid.n_edges())
        .map(|e| grid.dual_area(e) / grid.edge_length(e))
        .collect();
    let k = operators::assemble_stiffness(&grid, &m);
    let sym_ok = k.is_symmetric(1e-14);
    let row_sum_max = k
        .row_sums()
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()));
    let signs_ok = k
        .iter()
        .all(|(i, j, v)| if i == j { v >= 0.0 } else { v <= 0.0 });

    // Gradient of a linear potential gives exact edge voltages.
    let phi: Vec<f64> = (0..grid.n_nodes())
        .map(|n| {
            let (x, y, z) = grid.node_position(n);
            2.0 * x - 3.0 * y + 0.5 * z
        })
        .collect();
    let e = g.matvec(&phi);
    let mut grad_err = 0.0f64;
    for edge in 0..grid.n_edges() {
        let (a, b) = grid.edge_endpoints(edge);
        let exact = phi[b] - phi[a];
        grad_err = grad_err.max((e[edge] - exact).abs());
    }

    // Dual geometry partitions the domain.
    let vol: f64 = (0..grid.n_nodes()).map(|n| grid.dual_volume(n)).sum();
    let domain = grid.x().extent() * grid.y().extent() * grid.z().extent();
    let volume_ok = (vol - domain).abs() < 1e-18;

    println!("Fig. 1: the discrete electrothermal house (verified properties)");
    println!();
    println!("   Maxwell house (stationary current)     thermal house");
    println!("   Phi --(-G)--> _e                       T --(-G)--> _t");
    println!("    |            |                        |            |");
    println!("    |        [M_sigma]                    |        [M_lambda]   [M_rho_c]");
    println!("    |            v                        |            v            |");
    println!("    +--(S~)--- _j                         +--(S~)--- _q        dT/dt");
    println!();
    println!("   coupling: Q_el = _e . _j   (Joule), sigma = sigma(T), lambda = lambda(T)");
    println!();
    println!("checked on a non-uniform {:?} grid:", grid.node_dims());
    println!("  S~ == -G^T (exact duality)                   : {duality_ok}");
    println!("  K = G^T M G symmetric                        : {sym_ok}");
    println!("  K row sums (max |.|)                         : {row_sum_max:.3e}");
    println!("  K M-matrix sign pattern                      : {signs_ok}");
    println!("  gradient exact on linear potentials (max err): {grad_err:.3e}");
    println!("  dual volumes tile the domain                 : {volume_ok}");
    println!(
        "  entity counts: {} nodes, {} edges, {} cells",
        grid.n_nodes(),
        grid.n_edges(),
        grid.n_cells()
    );
    let ok = duality_ok && sym_ok && signs_ok && row_sum_max < 1e-12 && grad_err < 1e-12;
    println!("\nALL HOUSE PROPERTIES {}", if ok { "VERIFIED" } else { "VIOLATED" });
    let _ = vector::norm2(&e);
    std::process::exit(if ok { 0 } else { 1 });
}
