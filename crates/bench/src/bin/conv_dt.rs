//! **A5** — implicit-Euler time-step convergence (first order).
//!
//! Runs the nominal transient with successively halved step counts and
//! verifies `O(Δt)` convergence of the hottest-wire end temperature — the
//! consistency check for the paper's 51-point discretization.

use etherm_bench::build_paper_package;
use etherm_core::{Simulator, SolverOptions};
use etherm_report::TextTable;

fn main() {
    let built = build_paper_package();
    let step_counts = [10usize, 25, 50, 100, 200];

    println!("A5: implicit-Euler convergence of E_hot(50 s)\n");
    let mut results = Vec::new();
    for &steps in &step_counts {
        let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        results.push((steps, sol.max_wire_series()[steps]));
        eprintln!("  {steps} steps done");
    }
    let reference = results.last().expect("ran").1;
    let mut t = TextTable::new(&["steps", "dt [s]", "E_hot(50s) [K]", "error vs finest [K]", "order"]);
    let mut prev_err: Option<f64> = None;
    for &(steps, e) in &results[..results.len() - 1] {
        let err = (e - reference).abs();
        let order = prev_err.map_or(String::from("-"), |p| {
            if err > 0.0 {
                format!("{:.2}", (p / err).log2())
            } else {
                "-".into()
            }
        });
        t.add_row_owned(vec![
            format!("{steps}"),
            format!("{:.2}", 50.0 / steps as f64),
            format!("{e:.3}"),
            format!("{err:.4}"),
            order,
        ]);
        prev_err = Some(err);
    }
    t.add_row_owned(vec![
        format!("{}", step_counts[step_counts.len() - 1]),
        format!("{:.2}", 50.0 / *step_counts.last().expect("nonempty") as f64),
        format!("{reference:.3}"),
        "reference".into(),
        "-".into(),
    ]);
    println!("{}", t.render());
    println!("halving dt should halve the error (order ≈ 1.0 between successive rows).");
    println!("the paper's 50 steps (dt = 1 s) are well inside the asymptotic regime.");
}
