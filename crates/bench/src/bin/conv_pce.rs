//! **A10** — polynomial chaos vs Monte Carlo on the wire problem.
//!
//! The paper notes that "the application of other methods is
//! straightforward" (§IV-C). This experiment fits a Wiener–Hermite chaos
//! surrogate of the hottest-wire end temperature over the 12 iid elongation
//! germs by least-squares regression, and compares its analytic mean/std
//! against plain Monte Carlo at the same evaluation budget. The chaos
//! coefficients also yield per-wire Sobol' sensitivity indices for free.
//!
//! Usage: `cargo run --release -p etherm-bench --bin conv_pce --
//!         [--samples N] [--degree P] [--steps S]`

use etherm_bench::{arg_usize, build_paper_package, mc_sample_outputs};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::special::normal_quantile;
use etherm_uq::{fit_regression, Distribution, MultiIndexSet, RunningStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_WIRES: usize = 12;

fn main() {
    let degree = arg_usize("degree", 1);
    let basis_size = MultiIndexSet::total_degree(N_WIRES, degree)
        .expect("basis")
        .len();
    // Oversample the regression ~3× for a stable fit.
    let n_fit = arg_usize("samples", 3 * basis_size.max(13));
    let steps = arg_usize("steps", 25);
    let delta_dist = paper_elongation_distribution();
    let (mu, sd) = (delta_dist.mean(), delta_dist.std_dev());

    println!("A10: PCE (degree {degree}, {basis_size} terms, {n_fit} fit samples) vs MC");
    println!("QoI: hottest-wire temperature at t = 50 s, {steps} implicit-Euler steps\n");

    let mut built = build_paper_package();
    let mut rng = StdRng::seed_from_u64(2016);
    let mut xi_samples: Vec<Vec<f64>> = Vec::with_capacity(n_fit);
    let mut responses: Vec<f64> = Vec::with_capacity(n_fit);
    let mut mc = RunningStats::new();
    for s in 0..n_fit {
        // Germ ξ ~ N(0, I₁₂) via inversion; δ_j = µ + σ ξ_j, kept < 1.
        let xi: Vec<f64> = (0..N_WIRES)
            .map(|_| normal_quantile(rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12)))
            .collect();
        let deltas: Vec<f64> = xi.iter().map(|&x| (mu + sd * x).min(0.9)).collect();
        let outputs = mc_sample_outputs(&mut built, &deltas, steps);
        // Hottest wire at the final time.
        let hottest = (0..N_WIRES)
            .map(|j| outputs[j * (steps + 1) + steps])
            .fold(f64::NEG_INFINITY, f64::max);
        xi_samples.push(xi);
        responses.push(hottest);
        mc.push(hottest);
        if (s + 1) % 10 == 0 {
            eprintln!("  sample {}/{n_fit}", s + 1);
        }
    }

    let model =
        fit_regression(&xi_samples, &responses, N_WIRES, degree).expect("PCE regression fits");

    let mut t = TextTable::new(&["estimator", "mean [K]", "std [K]", "evals"]);
    t.add_row_owned(vec![
        format!("Monte Carlo (same {n_fit} samples)"),
        format!("{:.3}", mc.mean()),
        format!("{:.3}", mc.sample_std()),
        format!("{n_fit}"),
    ]);
    t.add_row_owned(vec![
        format!("PCE degree {degree} (analytic moments)"),
        format!("{:.3}", model.mean()),
        format!("{:.3}", model.std_dev()),
        format!("{n_fit}"),
    ]);
    println!("{}", t.render());

    println!("Per-wire Sobol' indices from the chaos coefficients:");
    let mut s = TextTable::new(&["wire", "S_first", "S_total"]);
    let mut ranked: Vec<usize> = (0..N_WIRES).collect();
    ranked.sort_by(|&a, &b| model.sobol_total(b).total_cmp(&model.sobol_total(a)));
    for &j in &ranked {
        s.add_row_owned(vec![
            format!("{}", j + 1),
            format!("{:.4}", model.sobol_first(j)),
            format!("{:.4}", model.sobol_total(j)),
        ]);
    }
    println!("{}", s.render());
    println!("Expectation: the PCE mean/std match the MC estimates within the MC error,");
    println!("and the Sobol' ranking singles out the wires nearest the hot corner — the");
    println!("same wires Fig. 8 shows glowing.");
}
