//! **bench_transient** — wall-time benchmark of the paper package transient.
//!
//! Runs the 28-pad/12-wire package (Fig. 7 configuration) through the full
//! implicit-Euler transient twice — once with the preconditioner cache
//! disabled (rebuild before every solve, the pre-cache behavior) and once
//! with the default lazily-refreshed cache — verifies both produce the same
//! physics within solver tolerance, and writes wall time, step/Picard/CG
//! counts and preconditioner rebuild statistics to `BENCH_transient.json` so
//! every future PR can compare against the committed numbers. Run records
//! use the same schema as `BENCH_scaling.json` (see `bench_scaling`).
//!
//! Flags:
//! - `--steps N` / `--t-end S` / `--mesh-xy M` / `--mesh-z M`: problem size
//!   (defaults: the paper run, 50 steps over 50 s)
//! - `--quick`: small grid + 5 steps for CI smoke runs
//! - `--fill K` / `--droptol T` / `--reuses N` / `--refresh-factor F`:
//!   solver knobs of the lazy configuration
//! - `--amg`: use the AMG preconditioner in the lazy configuration instead
//!   of IC
//! - `--reference-wall-s W` / `--reference-label L`: embed an externally
//!   measured reference run (e.g. the pre-change seed) in the report
//! - `--out PATH`: output path (default `BENCH_transient.json`)

use etherm_bench::{arg_f64, arg_flag, arg_usize, arg_value, escape_json, timed_transient_run};
use etherm_core::{PrecondKind, Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, PackageGeometry};

fn main() {
    let quick = arg_flag("quick");
    let (default_xy, default_z, default_steps, default_t_end) = if quick {
        (0.9e-3, 0.5e-3, 5, 5.0)
    } else {
        (0.42e-3, 0.22e-3, 50, 50.0)
    };
    let steps = arg_usize("steps", default_steps);
    let t_end = arg_f64("t-end", default_t_end);
    let mesh_xy = arg_f64("mesh-xy", default_xy);
    let mesh_z = arg_f64("mesh-z", default_z);
    let opts = BuildOptions {
        target_spacing_xy: mesh_xy,
        target_spacing_z: mesh_z,
        ..BuildOptions::paper_fig7()
    };
    let geometry = PackageGeometry::paper();
    let built = build_model(&geometry, &opts).expect("package builds");

    let mut lazy = SolverOptions::default();
    lazy.preconditioner = if arg_flag("amg") {
        PrecondKind::amg()
    } else {
        PrecondKind::Ic(arg_usize("fill", 1))
    };
    lazy.precond_droptol = arg_f64("droptol", lazy.precond_droptol);
    lazy.precond_max_reuses = arg_usize("reuses", lazy.precond_max_reuses);
    lazy.precond_refresh_factor = arg_f64("refresh-factor", lazy.precond_refresh_factor);

    // Reference configuration: cache disabled (rebuild before every solve)
    // with the seed's zero-fill IC(0) factorization.
    let reference = SolverOptions {
        preconditioner: PrecondKind::Ic(0),
        precond_droptol: 0.0,
        ..SolverOptions::rebuild_every_solve()
    };

    let sim_probe = Simulator::new(&built.model, lazy.clone()).expect("simulator");
    let dofs = sim_probe.layout().n_total();
    drop(sim_probe);
    eprintln!("paper package: {dofs} DoFs, {steps} steps over {t_end} s");

    let (rec_ref, sol_ref) = timed_transient_run(
        &built,
        reference,
        "rebuild-every-solve ic0 (pre-cache behavior)",
        t_end,
        steps,
    );
    eprintln!(
        "reference: {:.3} s wall | picard {} | cg {} | rebuilds {}",
        rec_ref.wall_s,
        rec_ref.picard_iterations,
        rec_ref.cg_iterations,
        rec_ref.precond_rebuilds
    );
    let (rec_lazy, sol_lazy) = timed_transient_run(
        &built,
        lazy,
        "lazy cached preconditioner (default options)",
        t_end,
        steps,
    );
    eprintln!(
        "lazy:      {:.3} s wall | picard {} | cg {} | rebuilds {} reuses {}",
        rec_lazy.wall_s,
        rec_lazy.picard_iterations,
        rec_lazy.cg_iterations,
        rec_lazy.precond_rebuilds,
        rec_lazy.precond_reuses
    );

    // Identical physics: the lazily-refreshed preconditioner must reproduce
    // the rebuild-every-solve temperatures within solver tolerance.
    let (_, t_ref) = &sol_ref.snapshots[sol_ref.snapshots.len() - 1];
    let (_, t_lazy) = &sol_lazy.snapshots[sol_lazy.snapshots.len() - 1];
    let max_diff_k = t_ref
        .iter()
        .zip(t_lazy)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    eprintln!("max |ΔT| between configurations: {max_diff_k:.3e} K");
    assert!(
        max_diff_k < 1e-3,
        "physics mismatch between preconditioner configurations: {max_diff_k} K"
    );

    let mut runs = Vec::new();
    let seed_wall = arg_value("reference-wall-s").and_then(|v| v.parse::<f64>().ok());
    if let Some(w) = seed_wall {
        let label = escape_json(
            &arg_value("reference-label").unwrap_or_else(|| "seed (measured before this change)".into()),
        );
        runs.push(format!("    {{\"config\": \"{label}\", \"wall_s\": {w:.3}}}"));
    }
    runs.push(rec_ref.to_json("    "));
    runs.push(rec_lazy.to_json("    "));

    let speedup = rec_ref.wall_s / rec_lazy.wall_s;
    let speedup_vs_seed = seed_wall
        .map(|w| format!("\n  \"speedup_vs_seed\": {:.3},", w / rec_lazy.wall_s))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"transient\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"dofs\": {dofs},\n  \"steps\": {steps},\n  \"t_end_s\": {t_end},\n  \
         \"mesh_xy_m\": {mesh_xy:e},\n  \"mesh_z_m\": {mesh_z:e},\n  \"runs\": [\n{}\n  ],{speedup_vs_seed}\n  \
         \"speedup_lazy_vs_rebuild\": {speedup:.3},\n  \
         \"max_temperature_diff_k\": {max_diff_k:.3e}\n}}\n",
        runs.join(",\n"),
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_transient.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!("speedup (lazy vs rebuild-every-solve): {speedup:.2}x -> {out}");
}
