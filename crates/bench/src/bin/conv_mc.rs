//! **Eq. (6)** — Monte Carlo error estimator `error_MC = σ_MC/√M`.
//!
//! Verifies the 1/√M convergence on the *actual* wire-temperature QoI using
//! a sequence of sample sizes, comparing the estimator against the observed
//! scatter of independent replications. To keep the runtime minutes-scale
//! this uses the end-time temperature of the hottest wire only and modest
//! M (`--max-samples` to extend). The package is compiled once; every
//! sample size reuses the same session-backed ensemble engine.

use etherm_bench::{arg_usize, build_paper_package, iid_inputs};
use etherm_core::{run_ensemble, EnsembleOptions, SolverOptions};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::{draw_samples, McOptions, McResult, MonteCarloSampler};
use std::sync::Arc;

fn main() {
    let max_m = arg_usize("max-samples", 64);
    let steps = arg_usize("steps", 25);
    let threads = arg_usize("threads", 1);
    let built = build_paper_package();
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);
    let compiled = Arc::new(
        built
            .compile(SolverOptions::fast())
            .expect("package compiles"),
    );
    let scenario = built.elongation_scenario(50.0, steps, move |sol| {
        vec![sol.max_wire_series()[steps]]
    });

    println!("Eq. (6): error_MC = sigma/sqrt(M) on the hottest-wire end temperature\n");
    let mut t = TextTable::new(&["M", "mean [K]", "sigma_MC [K]", "error_MC [K]", "ratio to prev"]);
    let mut ms = Vec::new();
    let mut m = 8;
    while m <= max_m {
        ms.push(m);
        m *= 2;
    }
    let mut prev_err: Option<f64> = None;
    for &m in &ms {
        let mut gen = MonteCarloSampler::new(7);
        let inputs = draw_samples(&mut gen, &dists, m);
        let ensemble = run_ensemble(
            &compiled,
            &scenario,
            &inputs,
            &EnsembleOptions {
                n_threads: threads,
                warm_start: false,
                progress: None,
                ..EnsembleOptions::default()
            },
        )
        .expect("mc run");
        let result = McResult::from_ordered(inputs, ensemble.outputs, McOptions::default());
        let stats = result.output(0);
        let err = stats.mc_error();
        let ratio = prev_err.map_or(String::from("-"), |p| format!("{:.3}", err / p));
        t.add_row_owned(vec![
            format!("{m}"),
            format!("{:.3}", stats.mean()),
            format!("{:.4}", stats.sample_std()),
            format!("{err:.4}"),
            ratio,
        ]);
        prev_err = Some(err);
        eprintln!("  M = {m} done");
    }
    println!("{}", t.render());
    println!("doubling M should multiply error_MC by ~1/sqrt(2) = 0.707 once sigma stabilizes;");
    println!("paper (M = 1000): sigma_MC = 4.65 K, error_MC = 0.147 K.");
}
