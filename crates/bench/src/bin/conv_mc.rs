//! **Eq. (6)** — Monte Carlo error estimator `error_MC = σ_MC/√M`.
//!
//! Verifies the 1/√M convergence on the *actual* wire-temperature QoI using
//! a sequence of sample sizes, comparing the estimator against the observed
//! scatter of independent replications. To keep the runtime minutes-scale
//! this uses the end-time temperature of the hottest wire only and modest
//! M (`--max-samples` to extend).

use etherm_bench::{arg_usize, build_paper_package, iid_inputs};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::{run_monte_carlo, McOptions, MonteCarloSampler};

fn main() {
    let max_m = arg_usize("max-samples", 64);
    let steps = arg_usize("steps", 25);
    let mut built = build_paper_package();
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);

    println!("Eq. (6): error_MC = sigma/sqrt(M) on the hottest-wire end temperature\n");
    let mut t = TextTable::new(&["M", "mean [K]", "sigma_MC [K]", "error_MC [K]", "ratio to prev"]);
    let mut ms = Vec::new();
    let mut m = 8;
    while m <= max_m {
        ms.push(m);
        m *= 2;
    }
    let mut prev_err: Option<f64> = None;
    for &m in &ms {
        let mut gen = MonteCarloSampler::new(7);
        let result = run_monte_carlo(
            &mut gen,
            &dists,
            m,
            McOptions::default(),
            |_, deltas| -> Result<Vec<f64>, String> {
                built.apply_elongations(deltas).map_err(|e| e.to_string())?;
                let sim =
                    etherm_core::Simulator::new(&built.model, etherm_core::SolverOptions::fast())
                        .map_err(|e| e.to_string())?;
                let sol = sim.run_transient(50.0, steps, &[]).map_err(|e| e.to_string())?;
                Ok(vec![sol.max_wire_series()[steps]])
            },
        )
        .expect("mc run");
        let stats = result.output(0);
        let err = stats.mc_error();
        let ratio = prev_err.map_or(String::from("-"), |p| format!("{:.3}", err / p));
        t.add_row_owned(vec![
            format!("{m}"),
            format!("{:.3}", stats.mean()),
            format!("{:.4}", stats.sample_std()),
            format!("{err:.4}"),
            ratio,
        ]);
        prev_err = Some(err);
        eprintln!("  M = {m} done");
    }
    println!("{}", t.render());
    println!("doubling M should multiply error_MC by ~1/sqrt(2) = 0.707 once sigma stabilizes;");
    println!("paper (M = 1000): sigma_MC = 4.65 K, error_MC = 0.147 K.");
}
