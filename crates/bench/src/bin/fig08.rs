//! **Fig. 8** — spatial temperature distribution at `t = 50 s`.
//!
//! One nominal transient (mean elongations), full-field snapshot at the end
//! time, rendered as an ASCII heat map of the wire-bond plane. The paper's
//! observation to verify: the region where the contacts are closest and
//! connected by the shortest wires runs hottest, and the hottest wire of
//! Fig. 7 lives there.

use etherm_bench::{arg_value, build_paper_package, run_paper_transient};
use etherm_core::qoi::field_slice_at_z;
use etherm_package::PackageGeometry;

fn main() {
    let built = build_paper_package();
    let geometry = PackageGeometry::paper();
    let sol = run_paper_transient(&built, &[50.0]);
    let (t_snap, state) = &sol.snapshots[0];

    // Slice through the wire-bond plane (chip top surface).
    let (_, chi) = geometry.chip_box();
    let slice = field_slice_at_z(built.model.grid(), state, chi.2);
    println!(
        "Fig. 8: temperature field at t = {t_snap} s, z = {:.3} mm (wire-bond plane)\n",
        chi.2 * 1e3
    );
    println!("{}", slice.render_heatmap());

    let (lo, hi) = slice.range();
    let (ix, iy, tmax) = slice.argmax();
    println!("range: {lo:.1} K .. {hi:.1} K");
    println!(
        "hottest grid point: ({:.3}, {:.3}) mm at {tmax:.1} K",
        slice.xs[ix] * 1e3,
        slice.ys[iy] * 1e3
    );

    // Verify the paper's qualitative claim: the hottest wire is (one of)
    // the shortest.
    let hottest = sol.hottest_wire().expect("wires exist");
    let lengths: Vec<f64> = built.nominal_lengths.clone();
    let mut sorted = lengths.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = sorted
        .iter()
        .position(|&l| l == lengths[hottest.0])
        .expect("present");
    println!(
        "\nhottest wire: #{} at {:.1} K, nominal length {:.3} mm (rank {} of 12 by length)",
        hottest.0,
        hottest.1,
        lengths[hottest.0] * 1e3,
        rank + 1
    );
    println!(
        "paper's claim — shortest wires between closest contacts run hottest: {}",
        if rank < 4 { "CONFIRMED" } else { "NOT REPRODUCED" }
    );

    // Wire-end temperatures as an overlay list.
    println!("\nwire-end temperatures at t = 50 s:");
    for (j, att) in built.model.wires().iter().enumerate() {
        let (xa, ya, _) = built.model.grid().node_position(att.node_a);
        println!(
            "  wire {j:2}: chip bond ({:.2}, {:.2}) mm  T_bw = {:.1} K  (L = {:.3} mm)",
            xa * 1e3,
            ya * 1e3,
            sol.wire_series(j).last().expect("nonempty"),
            att.wire.length() * 1e3
        );
    }

    if let Some(path) = arg_value("svg") {
        let svg = etherm_report::SvgHeatMap::new(slice.nx, slice.ny, slice.values.clone())
            .expect("consistent slice")
            .render();
        std::fs::write(&path, svg).expect("write svg");
        eprintln!("wrote {path}");
    }
}

/// Local extension: render a `FieldSlice` as a heat map.
trait RenderHeatmap {
    fn render_heatmap(&self) -> String;
}

impl RenderHeatmap for etherm_core::qoi::FieldSlice {
    fn render_heatmap(&self) -> String {
        etherm_report::HeatMap::new(self.nx, self.ny, self.values.clone())
            .expect("consistent slice")
            .render()
    }
}
