//! **Fig. 3** — the X-ray measurement of the investigated chip.
//!
//! The physical photographs are replaced by the synthetic metrology model
//! (DESIGN.md §4): this binary prints the per-wire measurement record the
//! "X-ray" produces — direct distance `d`, misplacement `Δs`, bending `Δh`
//! (with the camera quirk hiding it for 6 of 12 wires), total length `L`
//! and relative elongation `δ`.

use etherm_bench::arg_usize;
use etherm_package::{PackageGeometry, XrayMetrology};
use etherm_report::TextTable;

fn main() {
    let seed = arg_usize("seed", 2016) as u64;
    let geometry = PackageGeometry::paper();
    let xray = XrayMetrology {
        seed,
        ..XrayMetrology::default()
    };
    let measurements = xray.measure(&geometry);

    println!("Fig. 3: synthetic X-ray metrology of the 12 bonding wires (seed {seed})");
    println!("(substitutes the paper's photographs; see DESIGN.md §4)\n");
    let mut t = TextTable::new(&[
        "wire", "d [mm]", "ds [mm]", "dh true [mm]", "dh observed", "L [mm]", "delta",
    ]);
    for m in &measurements {
        t.add_row_owned(vec![
            format!("{}", m.wire_id),
            format!("{:.4}", m.direct * 1e3),
            format!("{:.4}", m.delta_s * 1e3),
            format!("{:.4}", m.delta_h_true * 1e3),
            match m.delta_h_observed {
                Some(v) => format!("{:.4}", v * 1e3),
                None => format!("hidden->{:.4}", m.delta_h_used * 1e3),
            },
            format!("{:.4}", m.length * 1e3),
            format!("{:.4}", m.delta_rel),
        ]);
    }
    println!("{}", t.render());

    let mean_l: f64 = measurements.iter().map(|m| m.length).sum::<f64>() / 12.0;
    let hidden = measurements
        .iter()
        .filter(|m| m.delta_h_observed.is_none())
        .count();
    println!("mean measured length: {:.4} mm (paper Table II: 1.55 mm)", mean_l * 1e3);
    println!("camera quirk: {hidden} of 12 wires have hidden dh, imputed with the mean of the visible 6 (paper §IV-B)");
}
