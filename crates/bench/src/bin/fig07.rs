//! **Fig. 7** — expected temperature of the hottest bonding wire over time
//! with 6σ_MC error bars against the critical temperature `T_crit = 523 K`.
//!
//! Monte Carlo over the 12 wires' relative elongations
//! `δ ~ N(0.17, 0.048)` (paper §IV), `M = 1000` samples by default
//! (`--samples M` to override), implicit Euler with 50 steps to 50 s. Also
//! reports σ_MC, `error_MC = σ_MC/√M` (Eq. 6) and the first crossing of
//! `E + 6σ` with the critical temperature (paper: t ≈ 26 s).
//!
//! The campaign runs on the compile-once/run-many engine: the package model
//! is compiled once, every worker thread owns one `Session`, and samples
//! are merged in index order — so the statistics are bit-identical for any
//! `--threads`, and (in the default exact mode) bit-identical to the
//! historical rebuild-per-sample driver with the same seed. `--warm` keeps
//! sessions warm across samples (faster; QoIs within solver tolerance).

use etherm_bench::{
    arg_f64, arg_flag, arg_usize, arg_value, build_paper_package, flatten_wire_series, iid_inputs,
};
use etherm_bondwire::degradation::first_crossing;
use etherm_bondwire::T_CRITICAL;
use etherm_core::{run_ensemble, EnsembleOptions, SolverOptions};
use etherm_package::paper_elongation_distribution;
use etherm_report::svg::{SvgChart, SvgOptions};
use etherm_report::{ChartOptions, CsvWriter, LineChart};
use etherm_uq::{draw_samples, McOptions, McResult, MonteCarloSampler};
use std::sync::Arc;
use std::time::Instant;

fn progress(done: usize, total: usize) {
    if done.is_multiple_of(25) || done == total {
        eprintln!("  sample {done}/{total}");
    }
}

fn main() {
    let m = arg_usize("samples", 1000);
    let steps = arg_usize("steps", 50);
    let seed = arg_usize("seed", 2016) as u64;
    let threads = arg_usize("threads", 1);
    let warm = arg_flag("warm");
    let t_end = 50.0;
    let n_times = steps + 1;
    let n_wires = 12;

    eprintln!(
        "fig07: M = {m} samples, {steps} steps, seed {seed}, {threads} thread(s){}",
        if warm { ", warm sessions" } else { "" }
    );
    let built = build_paper_package();
    eprintln!(
        "package grid: {} nodes, {} wires",
        built.model.grid().n_nodes(),
        built.model.wires().len()
    );

    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, n_wires);
    let mut gen = MonteCarloSampler::new(seed);
    let inputs = draw_samples(&mut gen, &dists, m);

    let started = Instant::now();
    // Compile once; the ensemble engine reuses one session per worker.
    let compiled = Arc::new(
        built
            .compile(SolverOptions::fast())
            .expect("package compiles"),
    );
    let scenario = built.elongation_scenario(t_end, steps, flatten_wire_series);
    let ensemble = run_ensemble(
        &compiled,
        &scenario,
        &inputs,
        &EnsembleOptions {
            n_threads: threads,
            warm_start: warm,
            progress: Some(progress),
            ..EnsembleOptions::default()
        },
    )
    .expect("monte carlo run");
    let result = McResult::from_ordered(inputs, ensemble.outputs, McOptions::default());
    eprintln!("MC finished in {:.1} s", started.elapsed().as_secs_f64());
    let c = ensemble.counters;
    eprintln!(
        "solver: {} CG iterations in {} solves, {} precond rebuilds / {} reuses",
        c.electrical_iterations + c.thermal_iterations,
        c.electrical_solves + c.thermal_solves,
        c.precond_rebuilds,
        c.precond_reuses
    );

    // Output index (j, i) = j*n_times + i.
    let means = result.means();
    let stds = result.std_devs();
    let times: Vec<f64> = (0..n_times).map(|i| t_end * i as f64 / steps as f64).collect();

    // E_j(t) per wire; E_max(t) = max_j E_j(t) (paper Eq. 7).
    let e_max: Vec<f64> = (0..n_times)
        .map(|i| {
            (0..n_wires)
                .map(|j| means[j * n_times + i])
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    // Hottest wire at the end time.
    let j_hot = (0..n_wires)
        .max_by(|&a, &b| {
            means[a * n_times + steps]
                .partial_cmp(&means[b * n_times + steps])
                .expect("finite")
        })
        .expect("wires exist");
    let e_hot: Vec<f64> = (0..n_times).map(|i| means[j_hot * n_times + i]).collect();
    let s_hot: Vec<f64> = (0..n_times).map(|i| stds[j_hot * n_times + i]).collect();
    let sigma_mc = s_hot[steps];
    let error_mc = sigma_mc / (m as f64).sqrt();

    // Crossing of E + 6σ with the critical temperature.
    let upper: Vec<f64> = e_hot.iter().zip(&s_hot).map(|(e, s)| e + 6.0 * s).collect();
    let crossing = first_crossing(&times, &upper, T_CRITICAL);

    // ---- render -----------------------------------------------------------
    let mut chart = LineChart::new(ChartOptions {
        width: 70,
        height: 24,
        x_label: "time (s)".into(),
        y_label: "temperature (K), hottest wire, ±6σ_MC".into(),
    });
    let bars: Vec<f64> = s_hot.iter().map(|s| 6.0 * s).collect();
    chart.add_series_with_bars(&times, &e_hot, &bars, '*');
    chart.add_threshold(T_CRITICAL, "T_crit = 523 K");
    println!("{}", chart.render());

    println!("Fig. 7 reproduction (M = {m}, {steps} implicit-Euler steps to {t_end} s)");
    println!("  hottest wire: #{j_hot} (E_max at t = {t_end} s)");
    println!("  E_max(50 s)          = {:.2} K   (paper: just below 523 K)", e_max[steps]);
    println!("  sigma_MC(50 s)       = {sigma_mc:.3} K   (paper: 4.65 K)");
    println!("  error_MC = s/sqrt(M) = {error_mc:.3} K   (paper: 0.147 K)");
    match crossing {
        Some(t) => println!("  E+6sigma crosses T_crit at t = {t:.1} s  (paper: t > 26 s)"),
        None => println!("  E+6sigma never crosses T_crit  (paper: crossing for t > 26 s)"),
    }
    println!("  (shape check) E settles: E(30)/E(50) rel. rise = {:.3}",
        (e_hot[(30 * steps) / 50] - 300.0) / (e_hot[steps] - 300.0));

    // Per-wire summary: shortest wires must be the hottest.
    println!("\n  wire  L_nominal[mm]  E(50s)[K]  sigma[K]");
    for j in 0..n_wires {
        println!(
            "  {:4}  {:12.3}  {:9.2}  {:7.3}",
            j,
            built.nominal_lengths[j] * 1e3,
            means[j * n_times + steps],
            stds[j * n_times + steps]
        );
    }

    if let Some(path) = arg_value("csv") {
        let mut csv = CsvWriter::new();
        csv.add_column("t", &times);
        csv.add_column("E_hottest", &e_hot);
        csv.add_column("sigma_hottest", &s_hot);
        csv.add_column("E_max", &e_max);
        csv.write_to(std::path::Path::new(&path)).expect("write csv");
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value("svg") {
        let mut svg = SvgChart::new(SvgOptions {
            x_label: "time (s)".into(),
            y_label: "temperature (K)".into(),
            title: format!("Fig. 7: hottest-wire E(t) ± 6σ_MC (M = {m})"),
            ..SvgOptions::default()
        });
        svg.add_series_with_bars(&times, &e_hot, &bars, "#0057b8", "E(t) hottest wire");
        svg.add_threshold(T_CRITICAL, "#d62728", "T_crit = 523 K");
        std::fs::write(&path, svg.render()).expect("write svg");
        eprintln!("wrote {path}");
    }
    let _ = arg_f64("unused", 0.0);
}
