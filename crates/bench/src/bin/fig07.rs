//! **Fig. 7** — expected temperature of the hottest bonding wire over time
//! with 6σ_MC error bars against the critical temperature `T_crit = 523 K`.
//!
//! Monte Carlo over the 12 wires' relative elongations
//! `δ ~ N(0.17, 0.048)` (paper §IV), `M = 1000` samples by default
//! (`--samples M` to override; the paper's M = 1000 takes ~45 min on one
//! core), implicit Euler with 50 steps to 50 s. Also reports σ_MC,
//! `error_MC = σ_MC/√M` (Eq. 6) and the first crossing of `E + 6σ` with the
//! critical temperature (paper: t ≈ 26 s).

use etherm_bench::{arg_f64, arg_usize, arg_value, build_paper_package, iid_inputs};
use etherm_bondwire::degradation::first_crossing;
use etherm_bondwire::T_CRITICAL;
use etherm_package::paper_elongation_distribution;
use etherm_report::svg::{SvgChart, SvgOptions};
use etherm_report::{ChartOptions, CsvWriter, LineChart};
use etherm_uq::{run_monte_carlo, run_monte_carlo_parallel, McOptions, MonteCarloSampler};
use std::time::Instant;

fn main() {
    let m = arg_usize("samples", 1000);
    let steps = arg_usize("steps", 50);
    let seed = arg_usize("seed", 2016) as u64;
    let threads = arg_usize("threads", 1);
    let t_end = 50.0;
    let n_times = steps + 1;
    let n_wires = 12;

    eprintln!("fig07: M = {m} samples, {steps} steps, seed {seed}, {threads} thread(s)");
    let mut built = build_paper_package();
    eprintln!(
        "package grid: {} nodes, {} wires",
        built.model.grid().n_nodes(),
        built.model.wires().len()
    );

    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, n_wires);
    let mut gen = MonteCarloSampler::new(seed);
    let started = Instant::now();
    let sample_model = |built: &mut etherm_package::BuiltPackage,
                        deltas: &[f64]|
     -> Result<Vec<f64>, String> {
        built.apply_elongations(deltas).map_err(|e| e.to_string())?;
        let sim = etherm_core::Simulator::new(&built.model, etherm_core::SolverOptions::fast())
            .map_err(|e| e.to_string())?;
        let sol = sim
            .run_transient(t_end, steps, &[])
            .map_err(|e| e.to_string())?;
        let mut out = Vec::with_capacity(n_wires * n_times);
        for j in 0..n_wires {
            out.extend_from_slice(sol.wire_series(j));
        }
        Ok(out)
    };
    let result = if threads > 1 {
        // One package instance per worker; the design is drawn once, so the
        // statistics are identical to the serial run with the same seed.
        run_monte_carlo_parallel(&mut gen, &dists, m, McOptions::default(), threads, || {
            let mut local = build_paper_package();
            move |i: usize, deltas: &[f64]| {
                if i.is_multiple_of(25) {
                    eprintln!("  sample {i}/{m}");
                }
                sample_model(&mut local, deltas)
            }
        })
    } else {
        run_monte_carlo(&mut gen, &dists, m, McOptions::default(), |i, deltas| {
            if i % 25 == 0 {
                eprintln!(
                    "  sample {i}/{m} ({:.1} s elapsed)",
                    started.elapsed().as_secs_f64()
                );
            }
            sample_model(&mut built, deltas)
        })
    }
    .expect("monte carlo run");
    eprintln!("MC finished in {:.1} s", started.elapsed().as_secs_f64());

    // Output index (j, i) = j*n_times + i.
    let means = result.means();
    let stds = result.std_devs();
    let times: Vec<f64> = (0..n_times).map(|i| t_end * i as f64 / steps as f64).collect();

    // E_j(t) per wire; E_max(t) = max_j E_j(t) (paper Eq. 7).
    let e_max: Vec<f64> = (0..n_times)
        .map(|i| {
            (0..n_wires)
                .map(|j| means[j * n_times + i])
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    // Hottest wire at the end time.
    let j_hot = (0..n_wires)
        .max_by(|&a, &b| {
            means[a * n_times + steps]
                .partial_cmp(&means[b * n_times + steps])
                .expect("finite")
        })
        .expect("wires exist");
    let e_hot: Vec<f64> = (0..n_times).map(|i| means[j_hot * n_times + i]).collect();
    let s_hot: Vec<f64> = (0..n_times).map(|i| stds[j_hot * n_times + i]).collect();
    let sigma_mc = s_hot[steps];
    let error_mc = sigma_mc / (m as f64).sqrt();

    // Crossing of E + 6σ with the critical temperature.
    let upper: Vec<f64> = e_hot.iter().zip(&s_hot).map(|(e, s)| e + 6.0 * s).collect();
    let crossing = first_crossing(&times, &upper, T_CRITICAL);

    // ---- render -----------------------------------------------------------
    let mut chart = LineChart::new(ChartOptions {
        width: 70,
        height: 24,
        x_label: "time (s)".into(),
        y_label: "temperature (K), hottest wire, ±6σ_MC".into(),
    });
    let bars: Vec<f64> = s_hot.iter().map(|s| 6.0 * s).collect();
    chart.add_series_with_bars(&times, &e_hot, &bars, '*');
    chart.add_threshold(T_CRITICAL, "T_crit = 523 K");
    println!("{}", chart.render());

    println!("Fig. 7 reproduction (M = {m}, {steps} implicit-Euler steps to {t_end} s)");
    println!("  hottest wire: #{j_hot} (E_max at t = {t_end} s)");
    println!("  E_max(50 s)          = {:.2} K   (paper: just below 523 K)", e_max[steps]);
    println!("  sigma_MC(50 s)       = {sigma_mc:.3} K   (paper: 4.65 K)");
    println!("  error_MC = s/sqrt(M) = {error_mc:.3} K   (paper: 0.147 K)");
    match crossing {
        Some(t) => println!("  E+6sigma crosses T_crit at t = {t:.1} s  (paper: t > 26 s)"),
        None => println!("  E+6sigma never crosses T_crit  (paper: crossing for t > 26 s)"),
    }
    println!("  (shape check) E settles: E(30)/E(50) rel. rise = {:.3}",
        (e_hot[(30 * steps) / 50] - 300.0) / (e_hot[steps] - 300.0));

    // Per-wire summary: shortest wires must be the hottest.
    println!("\n  wire  L_nominal[mm]  E(50s)[K]  sigma[K]");
    for j in 0..n_wires {
        println!(
            "  {:4}  {:12.3}  {:9.2}  {:7.3}",
            j,
            built.nominal_lengths[j] * 1e3,
            means[j * n_times + steps],
            stds[j * n_times + steps]
        );
    }

    if let Some(path) = arg_value("csv") {
        let mut csv = CsvWriter::new();
        csv.add_column("t", &times);
        csv.add_column("E_hottest", &e_hot);
        csv.add_column("sigma_hottest", &s_hot);
        csv.add_column("E_max", &e_max);
        csv.write_to(std::path::Path::new(&path)).expect("write csv");
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg_value("svg") {
        let mut svg = SvgChart::new(SvgOptions {
            x_label: "time (s)".into(),
            y_label: "temperature (K)".into(),
            title: format!("Fig. 7: hottest-wire E(t) ± 6σ_MC (M = {m})"),
            ..SvgOptions::default()
        });
        svg.add_series_with_bars(&times, &e_hot, &bars, "#0057b8", "E(t) hottest wire");
        svg.add_threshold(T_CRITICAL, "#d62728", "T_crit = 523 K");
        std::fs::write(&path, svg.render()).expect("write svg");
        eprintln!("wrote {path}");
    }
    let _ = arg_f64("unused", 0.0);
}
