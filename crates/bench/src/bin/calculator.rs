//! **A8** — the "bonding wire calculator" baseline.
//!
//! The paper's introduction motivates wire design via simple calculators
//! (refs. \[3\], \[6\]): given material and thickness, estimate the maximum
//! temperature and the allowable current. This binary runs the closed-form
//! fin baseline for a sweep of diameters/materials and compares against the
//! Preece fusing rule and the full field-circuit model's operating point.

use etherm_bench::{build_paper_package, run_paper_transient};
use etherm_bondwire::analytic::{allowable_current, preece_fusing_current, FinModel};
use etherm_bondwire::{BondWire, T_CRITICAL};
use etherm_materials::library;
use etherm_report::TextTable;

fn main() {
    println!("A8: bonding-wire calculator (1D fin baseline, T_pads = 300 K, insulated mantle)\n");

    let mut t = TextTable::new(&[
        "material",
        "d [um]",
        "R(300K) [mOhm]",
        "I_allow(T_crit) [A]",
        "I_preece [A]",
    ]);
    for (mat_name, mat) in [
        ("copper", library::copper()),
        ("gold", library::gold()),
        ("aluminum", library::aluminum()),
    ] {
        for d_um in [15.0, 25.4, 50.0] {
            let d = d_um * 1e-6;
            let wire = BondWire::new("calc", 1.55e-3, d, mat.clone()).expect("valid wire");
            let i_allow = allowable_current(&wire, 300.0, 300.0, 0.0, T_CRITICAL, 20.0);
            t.add_row_owned(vec![
                mat_name.into(),
                format!("{d_um}"),
                format!("{:.1}", wire.resistance(300.0) * 1e3),
                format!("{i_allow:.3}"),
                format!("{:.3}", preece_fusing_current(d)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("sanity: I_allow grows ~d^2 (area); Preece grows d^1.5; thicker wire of a better");
    println!("conductor carries more current — the designer tradeoff from the paper's intro.\n");

    // Compare the calculator against the coupled field simulation at the
    // paper's operating point.
    println!("cross-check vs the coupled field-circuit model (paper operating point):");
    let built = build_paper_package();
    let sol = run_paper_transient(&built, &[]);
    let steps = sol.times.len() - 1;
    let hottest = sol.hottest_wire().expect("wires");
    let wire = &built.model.wires()[hottest.0].wire;
    // Current through the hottest wire from its dissipated power P = I²R.
    let p = sol.wire_powers[hottest.0][steps];
    let r = wire.resistance(hottest.1);
    let i_field = (p / r).sqrt();
    println!("  field model: hottest wire #{} at {:.1} K carries {:.3} A", hottest.0, hottest.1, i_field);

    let mut fin = FinModel::new(
        wire.clone(),
        hottest.1, // pad-side boundary ≈ reported endpoint temperature
        hottest.1,
        300.0,
        0.0,
        i_field,
    );
    let (_, t_max) = fin.solve_self_consistent(1e-9, 100);
    println!("  fin baseline with those endpoint temperatures: mid-span T = {t_max:.1} K");
    println!("  interior excess over the endpoints: {:.2} K — what the paper's two-terminal", t_max - hottest.1);
    println!("  element (and therefore Fig. 7) does not resolve; cf. ablation A1.");
}
