//! **bench_failure** — correctness + efficiency benchmark of the rare-event
//! reliability engine on the paper package.
//!
//! The scenario: wire elongations `δⱼ ~ N(0.17, 0.048)` (the paper's
//! metrology fit), the paper transient at a benchmark-sized horizon, and a
//! failure threshold on `Y = max_t maxⱼ T_bw,j`. To make the reference
//! tail-shape-proof, the threshold is **calibrated from the seeded
//! brute-force Monte Carlo reference itself**: `b = k`-th largest of the
//! `N_mc` reference responses, so the reference estimate is `k/N_mc` (for
//! the full profile `4/4000 = 1e-3` — the paper's ≤ 1e-3 regime) by
//! construction. Subset simulation then estimates the same exceedance
//! through the session/ensemble stack with in-run early exit.
//!
//! Gates (full profile):
//! * agreement: `|p_ss − p_mc| ≤ 3·√(σ_mc² + σ_ss²)` (3 combined CoVs),
//! * efficiency: ≥ 5× fewer transient solves than a plain-MC campaign
//!   would spend to reach the subset run's CoV at the reference
//!   probability,
//! * determinism: the subset estimate is bit-identical when the ensemble
//!   evaluates on a different thread count,
//! * fusing search: the critical wire current stays below the Onderdonk
//!   adiabatic melt current for the horizon.
//!
//! Flags: `--quick` (CI smoke: tiny horizon/populations, gates relaxed to
//! determinism + sanity), `--samples-mc M`, `--n-level N`, `--tail-k K`,
//! `--steps S`, `--t-end T`, `--threads T`, `--seed S`, `--mesh-xy`,
//! `--mesh-z`, `--out PATH`.

use etherm_bench::{arg_f64, arg_flag, arg_usize, arg_value};
use etherm_bondwire::analytic::{
    allowable_current, onderdonk_fusing_current, preece_fusing_current,
};
use etherm_core::{run_ensemble, EnsembleOptions, Session, SolverOptions};
use etherm_package::{
    build_model, paper_elongation_distribution, BuildOptions, FailureScenario, PackageGeometry,
};
use etherm_reliability::{
    find_critical_load, EnsembleLimitState, FailureEstimate, FailureEstimator,
    FusingSearchOptions, SubsetSimulation,
};
use etherm_uq::{draw_samples, Distribution, MonteCarloSampler};
use std::sync::Arc;
use std::time::Instant;

const MOLD_T_CRITICAL: f64 = 523.0;

fn json_f64(v: f64) -> String {
    if v.is_nan() {
        "null".into()
    } else if v.is_infinite() {
        if v > 0.0 { "1e308".into() } else { "-1e308".into() }
    } else {
        format!("{v:.6e}")
    }
}

fn levels_json(estimate: &FailureEstimate, indent: &str) -> String {
    estimate
        .levels
        .iter()
        .map(|l| {
            format!(
                "{indent}{{\"threshold_k\": {}, \"conditional_probability\": {}, \
                 \"acceptance_rate\": {}, \"gamma\": {}, \"n_chains\": {}, \"n_samples\": {}}}",
                json_f64(l.threshold),
                json_f64(l.conditional_probability),
                json_f64(l.acceptance_rate),
                json_f64(l.gamma),
                l.n_chains,
                l.n_samples
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

#[allow(clippy::too_many_arguments)]
fn estimate_json(
    method: &str,
    estimate: &FailureEstimate,
    wall_s: f64,
    thermal_solves: usize,
    indent: &str,
) -> String {
    format!(
        "{indent}{{\n{indent}  \"method\": \"{method}\",\n\
         {indent}  \"probability\": {},\n{indent}  \"cov\": {},\n\
         {indent}  \"evaluations\": {},\n{indent}  \"thermal_solves\": {thermal_solves},\n\
         {indent}  \"wall_s\": {wall_s:.3},\n{indent}  \"levels\": [\n{}\n{indent}  ]\n{indent}}}",
        json_f64(estimate.probability),
        json_f64(estimate.cov),
        estimate.n_evaluations,
        levels_json(estimate, &format!("{indent}    ")),
    )
}

fn main() {
    let quick = arg_flag("quick");
    let (d_xy, d_z, d_steps, d_tend, d_mc, d_k, d_level) = if quick {
        (1.3e-3, 0.7e-3, 4, 8.0, 80, 8, 40)
    } else {
        (0.9e-3, 0.5e-3, 8, 16.0, 4000, 4, 500)
    };
    let mesh_xy = arg_f64("mesh-xy", d_xy);
    let mesh_z = arg_f64("mesh-z", d_z);
    let steps = arg_usize("steps", d_steps);
    let t_end = arg_f64("t-end", d_tend);
    let n_mc = arg_usize("samples-mc", d_mc);
    let tail_k = arg_usize("tail-k", d_k).max(1);
    let n_level = arg_usize("n-level", d_level);
    let threads = arg_usize("threads", 1);
    let seed = arg_usize("seed", 2016) as u64;

    let build = BuildOptions {
        target_spacing_xy: mesh_xy,
        target_spacing_z: mesh_z,
        ..BuildOptions::paper_fig7()
    };
    let built = build_model(&PackageGeometry::paper(), &build).expect("package builds");
    let compiled = Arc::new(built.compile(SolverOptions::fast()).expect("compiles"));
    let dofs = compiled.layout().n_total();
    let delta = paper_elongation_distribution();
    eprintln!(
        "bench_failure: {dofs} DoFs, {steps} steps over {t_end} s, {threads} thread(s), \
         MC {n_mc} (tail k = {tail_k}), subset N = {n_level}"
    );

    // ---- 1. Brute-force MC reference: full transients, no early exit ----
    // (threshold-free exploration — exactly what the repo could do before
    // this engine: run everything, assess afterwards).
    let explore = built.failure_scenario(t_end, steps, f64::INFINITY);
    let dists: Vec<&dyn Distribution> = (0..12).map(|_| &delta as &dyn Distribution).collect();
    let mut generator = MonteCarloSampler::new(seed);
    let inputs = draw_samples(&mut generator, &dists, n_mc);
    let start = Instant::now();
    let reference = run_ensemble(
        &compiled,
        &explore,
        &inputs,
        &EnsembleOptions {
            n_threads: threads,
            ..EnsembleOptions::default()
        },
    )
    .expect("MC reference campaign");
    let wall_mc = start.elapsed().as_secs_f64();
    let mc_solves = reference.counters.thermal_solves;
    let mut ys: Vec<f64> = reference
        .outputs
        .iter()
        .map(|q| q[FailureScenario::QOI_PEAK])
        .collect();
    ys.sort_by(|a, b| b.partial_cmp(a).expect("finite responses"));
    assert!(tail_k < ys.len(), "--tail-k must be below --samples-mc");
    // Calibrated threshold: k-th largest response ⇒ the reference sees
    // exactly k failures (Y ≥ b).
    let threshold = ys[tail_k - 1];
    let p_mc = tail_k as f64 / n_mc as f64;
    let cov_mc = ((1.0 - p_mc) / (n_mc as f64 * p_mc)).sqrt();
    let mc_estimate = FailureEstimate {
        probability: p_mc,
        cov: cov_mc,
        n_evaluations: n_mc,
        levels: vec![],
        quarantined: 0,
    };
    eprintln!(
        "mc reference:   {wall_mc:.1} s, threshold {threshold:.3} K, p = {p_mc:.3e} (cov {cov_mc:.2})"
    );

    // ---- 2. Subset simulation at the calibrated threshold --------------
    let scenario = built.failure_scenario(t_end, steps, threshold);
    let marginals = || -> Vec<Box<dyn Distribution>> {
        (0..12)
            .map(|_| Box::new(delta) as Box<dyn Distribution>)
            .collect()
    };
    // p0 = 0.35: shorter chains than the 0.25 default — on this package the
    // lower per-level correlation buys more than the extra levels cost (the
    // crate default stays at the more conservative 0.25).
    let subset = SubsetSimulation {
        p0: 0.35,
        ..SubsetSimulation::new(n_level, seed.wrapping_add(1))
    };
    let run_subset = |n_threads: usize| -> (FailureEstimate, usize, f64) {
        let mut state = EnsembleLimitState::new(
            &compiled,
            &scenario,
            marginals(),
            threshold,
            EnsembleOptions {
                n_threads,
                ..EnsembleOptions::default()
            },
        );
        let start = Instant::now();
        let estimate = subset.estimate(&mut state).expect("subset simulation");
        (
            estimate,
            state.counters().thermal_solves,
            start.elapsed().as_secs_f64(),
        )
    };
    let (ss, ss_solves, wall_ss) = run_subset(threads);
    eprintln!(
        "subset:         {wall_ss:.1} s, p = {:.3e} (cov {:.2}), {} evaluations, {} levels",
        ss.probability,
        ss.cov,
        ss.n_evaluations,
        ss.levels.len()
    );

    // Determinism across worker counts: bit-identical estimate.
    let other_threads = if threads == 1 { 2 } else { 1 };
    let (ss_other, _, wall_det) = run_subset(other_threads);
    assert_eq!(
        format!("{ss:?}"),
        format!("{ss_other:?}"),
        "subset estimate must be bit-identical for any n_threads"
    );
    eprintln!("determinism:    {other_threads}-thread re-run bit-identical ({wall_det:.1} s)");

    // ---- 3. Gates -------------------------------------------------------
    let combined =
        (mc_estimate.std_error().powi(2) + ss.std_error().powi(2)).sqrt();
    let agreement_z = (ss.probability - p_mc).abs() / combined;
    // Equal-CoV yardstick at the reference probability: transients a plain
    // MC campaign needs for the subset run's CoV, in solve units.
    let mc_solves_per_run = mc_solves as f64 / n_mc as f64;
    let equal_cov_mc_runs = (1.0 - p_mc) / (p_mc * ss.cov * ss.cov);
    let eval_reduction = equal_cov_mc_runs / ss.n_evaluations as f64;
    let solve_reduction = equal_cov_mc_runs * mc_solves_per_run / ss_solves as f64;
    eprintln!(
        "agreement: {agreement_z:.2} combined CoVs; equal-CoV MC would need {equal_cov_mc_runs:.0} \
         transients -> reduction {eval_reduction:.1}x (evaluations), {solve_reduction:.1}x (solves)"
    );
    assert!(
        ss.probability > 0.0 && ss.probability < 1.0,
        "degenerate subset estimate"
    );
    assert!(
        agreement_z <= 3.0,
        "subset vs MC disagree: {} vs {p_mc} ({agreement_z:.2} combined CoVs)",
        ss.probability
    );
    if !quick {
        assert!(
            solve_reduction >= 5.0,
            "subset must use >= 5x fewer transient solves at equal CoV, got {solve_reduction:.2}x"
        );
        assert!(
            (1e-4..=1e-2).contains(&p_mc),
            "calibrated probability {p_mc} left the rare-event band"
        );
    }

    // ---- 4. Fusing-current search at nominal elongations ----------------
    let mut session = Session::new(Arc::clone(&compiled));
    let fusing_options = FusingSearchOptions {
        t_end,
        n_steps: steps,
        threshold: MOLD_T_CRITICAL,
        scale_lo: 1.0,
        scale_hi: 64.0,
        tol_rel: 1e-2,
        max_iter: 40,
    };
    let start = Instant::now();
    let critical = find_critical_load(&mut session, &fusing_options).expect("fusing search");
    let wall_fusing = start.elapsed().as_secs_f64();
    // Wire current at the critical (safe) scale: hottest wire at the end of
    // a fresh run.
    session.reset();
    let sol = session.run_transient(t_end, steps, &[]).expect("critical-load transient");
    let (hot_wire, _) = sol.hottest_wire().expect("package has wires");
    let p_wire = *sol.wire_powers[hot_wire].last().unwrap();
    let t_wire = *sol.wire_series(hot_wire).last().unwrap();
    let wire = &compiled.model().wires()[hot_wire].wire;
    let i_critical = (p_wire / wire.resistance(t_wire)).sqrt();
    let i_preece = preece_fusing_current(wire.diameter());
    let i_onderdonk = onderdonk_fusing_current(wire.cross_section(), t_end, 300.0);
    let i_fin = allowable_current(wire, 300.0, 300.0, 0.0, MOLD_T_CRITICAL, 10.0);
    eprintln!(
        "fusing search:  critical scale {:.2} ({} runs, {} early exits, {wall_fusing:.1} s); \
         wire current {i_critical:.3} A vs fin {i_fin:.3} / preece {i_preece:.3} / onderdonk {i_onderdonk:.3} A",
        critical.scale, critical.runs, critical.early_exits
    );
    assert!(critical.scale > 0.0, "paper drive must be safe at 523 K");
    assert!(critical.early_exits > 0, "failing probes must early-exit");
    assert!(
        i_critical < i_onderdonk,
        "degradation-limited current {i_critical} A must undercut the Onderdonk melt bound {i_onderdonk} A"
    );

    // ---- 5. Report ------------------------------------------------------
    let estimates = [
        estimate_json("monte-carlo reference", &mc_estimate, wall_mc, mc_solves, "    "),
        estimate_json("subset-simulation", &ss, wall_ss, ss_solves, "    "),
    ];
    let json = format!(
        "{{\n  \"bench\": \"failure\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"dofs\": {dofs},\n  \"steps\": {steps},\n  \"t_end_s\": {t_end},\n  \
         \"threads\": {threads},\n  \"seed\": {seed},\n  \
         \"mesh_xy_m\": {mesh_xy:e},\n  \"mesh_z_m\": {mesh_z:e},\n  \
         \"threshold_k\": {},\n  \"tail_k\": {tail_k},\n  \
         \"estimates\": [\n{}\n  ],\n  \
         \"agreement_combined_cov_multiple\": {},\n  \
         \"equal_cov_mc_transients\": {},\n  \
         \"evaluation_reduction_vs_equal_cov_mc\": {},\n  \
         \"solve_reduction_vs_equal_cov_mc\": {},\n  \
         \"deterministic_across_threads\": true,\n  \
         \"fusing\": {{\n    \"threshold_k\": {MOLD_T_CRITICAL},\n    \
         \"critical_drive_scale\": {},\n    \"bracket\": [{}, {}],\n    \
         \"runs\": {},\n    \"early_exits\": {},\n    \
         \"failing_crossing_time_s\": {},\n    \
         \"wire_current_a\": {},\n    \"fin_allowable_current_a\": {},\n    \
         \"preece_fusing_current_a\": {},\n    \"onderdonk_fusing_current_a\": {}\n  }}\n}}\n",
        json_f64(threshold),
        estimates.join(",\n"),
        json_f64(agreement_z),
        json_f64(equal_cov_mc_runs),
        json_f64(eval_reduction),
        json_f64(solve_reduction),
        json_f64(critical.scale),
        json_f64(critical.bracket.0),
        json_f64(critical.bracket.1),
        critical.runs,
        critical.early_exits,
        json_f64(critical.failing_crossing_time.unwrap_or(f64::NAN)),
        json_f64(i_critical),
        json_f64(i_fin),
        json_f64(i_preece),
        json_f64(i_onderdonk),
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_failure.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!(
        "subset {:.1}x fewer transient solves than equal-CoV MC -> {out}",
        solve_reduction
    );
}
