//! **Fig. 4** — variability of the bonding-wire length due to construction
//! tolerances: `L = d + Δs + Δh`.
//!
//! Demonstrates the three-part decomposition on one wire and sweeps the
//! tolerance parameters to show how each contributes to the relative
//! elongation `δ = (L − d)/L`.

use etherm_package::{PackageGeometry, XrayMetrology};

fn main() {
    let geometry = PackageGeometry::paper();
    let plan = geometry.wire_plan();
    let w = &plan[0];

    println!("Fig. 4: wire-length variability decomposition (wire 0)");
    println!();
    println!("(a) exact position on the contact pad:");
    println!("    pad bond  = ({:.3}, {:.3}, {:.3}) mm",
        w.pad_bond.0 * 1e3, w.pad_bond.1 * 1e3, w.pad_bond.2 * 1e3);
    println!("    chip bond = ({:.3}, {:.3}, {:.3}) mm",
        w.chip_bond.0 * 1e3, w.chip_bond.1 * 1e3, w.chip_bond.2 * 1e3);
    println!("    direct distance d = {:.4} mm", w.direct_distance * 1e3);
    println!();
    println!("(b) misplacement elongation ds (bond lands beyond the planned spot):");
    for ds_um in [0.0, 50.0, 100.0, 160.0] {
        let ds = ds_um * 1e-6;
        let cap_d = w.direct_distance + ds;
        println!("    ds = {ds_um:5.0} um -> D = d + ds = {:.4} mm", cap_d * 1e3);
    }
    println!();
    println!("(c) bending elongation dh (loop height):");
    for dh_um in [0.0, 100.0, 200.0, 300.0] {
        let dh = dh_um * 1e-6;
        let l = w.direct_distance + 0.08e-3 + dh;
        let delta = (l - w.direct_distance) / l;
        println!(
            "    dh = {dh_um:5.0} um -> L = {:.4} mm, delta = {:.4}",
            l * 1e3,
            delta
        );
    }
    println!();

    // Tolerance sensitivity: how the fitted (mu, sigma) react to the two
    // tolerance knobs — the calibration logic behind the defaults.
    println!("tolerance sweep (ensemble over 40 virtual chips each):");
    println!("  s_max[um]  dh_mean[um]  ->  mu_delta  sigma_delta");
    for (s_max, dh_mean) in [
        (0.08e-3, 0.15e-3),
        (0.16e-3, 0.20e-3),
        (0.24e-3, 0.25e-3),
    ] {
        let mut mu_sum = 0.0;
        let mut sg_sum = 0.0;
        let n = 40;
        for seed in 0..n {
            let xr = XrayMetrology {
                s_max,
                dh_mean,
                seed,
                ..XrayMetrology::default()
            };
            let fit = XrayMetrology::fit(&xr.measure(&geometry));
            mu_sum += fit.mu();
            sg_sum += fit.sigma();
        }
        println!(
            "  {:9.0}  {:11.0}      {:.4}    {:.4}",
            s_max * 1e6,
            dh_mean * 1e6,
            mu_sum / n as f64,
            sg_sum / n as f64
        );
    }
    println!("\ndefaults (160 um, 200 um) reproduce the paper's N(0.17, 0.048).");
}
