//! **bench_uq** — wall-time benchmark of a Fig. 7-style UQ campaign:
//! session-reuse (the compile-once/run-many ensemble engine) against the
//! historical rebuild-per-sample driver.
//!
//! Four configurations evaluate the *same* elongation design (same seed) on
//! the paper package at the same thread count, all with tight (default)
//! solver tolerances so their physics must agree to ~1e-7 K:
//!
//! 1. `rebuild ic(1)` — the pre-refactor path: `apply_elongations` +
//!    `Simulator::new(SolverOptions::default())` per sample. This is what
//!    a UQ campaign cost before this change.
//! 2. `rebuild amg` — the same per-sample rebuild with the UQ solver
//!    profile (`SolverOptions::uq()`): isolates the preconditioner effect.
//! 3. `session exact` — the ensemble engine in exact mode: compiled once,
//!    one session per worker, `reset()` between samples. Must be
//!    *bit-identical* to configuration 2 (asserted).
//! 4. `session warm` — the ensemble engine with warm sessions:
//!    preconditioners refreshed across samples and thermal CG warm-started
//!    from the previous sample's trajectory. The headline configuration
//!    before batching.
//! 5. (`--batched`) `ensemble batched` — the multi-RHS fast path:
//!    samples grouped into panels of `--batch-width`, each group advanced
//!    in lock-step with one fused block-Krylov thermal solve per Picard
//!    iterate over a group-shared preconditioner
//!    (`etherm_core::BatchSession`).
//!
//! Gates (full profile): `session warm` ≥ 1.5× faster than `rebuild ic(1)`
//! and max |ΔQoI| between them ≤ 1.5e-7 K; `session exact` ≡ `rebuild amg`
//! bitwise; with `--batched`, batched ≥ 1.8× faster than `session warm`,
//! max |ΔQoI| batched vs warm ≤ 1.5e-7 K, batched outputs bit-identical
//! across 1/2/4 worker threads, and the k = 1 block solver bit-identical
//! to the scalar PCG.
//!
//! Flags: `--samples M` (64) / `--steps N` (50) / `--threads T` (1) /
//! `--seed S` / `--mesh-xy`, `--mesh-z` / `--batched` / `--batch-width K`
//! (16, quick: 4) / `--quick` (CI smoke: tiny mesh, 5 steps, 8 samples,
//! speedups reported but not gated) / `--out PATH`.

use etherm_bench::{
    arg_f64, arg_flag, arg_usize, arg_value, flatten_wire_series, iid_inputs, RunRecord,
};
use etherm_core::{
    run_ensemble, run_ensemble_batched, EnsembleOptions, Simulator, SolveCounters,
    SolverOptions,
};
use etherm_package::{
    build_model, paper_elongation_distribution, BuildOptions, BuiltPackage, PackageGeometry,
};
use etherm_uq::{draw_samples, MonteCarloSampler};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pre-refactor campaign: fresh `Simulator` per sample, same
/// contiguous-chunk split as the ensemble engine. Returns sample-ordered
/// QoIs, merged counters and the wall time.
fn rebuild_campaign(
    built: &BuiltPackage,
    inputs: &[Vec<f64>],
    t_end: f64,
    steps: usize,
    threads: usize,
    options: &SolverOptions,
) -> (Vec<Vec<f64>>, SolveCounters, f64) {
    let n = inputs.len();
    let chunk = n.div_ceil(threads).max(1);
    let counters = Mutex::new(SolveCounters::default());
    let start = Instant::now();
    let mut outputs: Vec<Option<Vec<f64>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, block) in inputs.chunks(chunk).enumerate() {
            let counters = &counters;
            handles.push(scope.spawn(move || {
                let mut local = built.clone();
                let mut out = Vec::with_capacity(block.len());
                for (k, deltas) in block.iter().enumerate() {
                    local.apply_elongations(deltas).expect("valid deltas");
                    let sim =
                        Simulator::new(&local.model, options.clone()).expect("simulator");
                    let sol = sim.run_transient(t_end, steps, &[]).expect("transient");
                    counters.lock().unwrap().merge(&sim.counters());
                    out.push((c * chunk + k, flatten_wire_series(&sol)));
                }
                out
            }));
        }
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("rebuild worker panicked"))
            .collect();
        for (i, y) in results.into_iter().flatten() {
            outputs[i] = Some(y);
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("all samples evaluated"))
        .collect();
    (outputs, counters.into_inner().unwrap(), wall)
}

fn max_abs_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0, f64::max)
}

/// In-process witness for the `k = 1` contract of the block solver: on a
/// small SPD system, `block_pcg_with` with a one-column panel must
/// reproduce the scalar `pcg_with` bit for bit (same iterations, same
/// residual bits, same solution bits).
fn block_k1_matches_scalar_bitwise() -> bool {
    use etherm_numerics::solvers::{
        block_pcg_with, pcg_with, BlockKrylovWorkspace, CgOptions, JacobiPrecond,
        KrylovWorkspace,
    };
    use etherm_numerics::{Coo, Csr, MultiVec};
    let n = 64;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.5 + (i as f64).sqrt());
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    let a = Csr::from_coo(&coo);
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64).sin() + 0.2).collect();
    let precond = JacobiPrecond::new(&a).expect("jacobi");
    let options = CgOptions::default();
    let mut x_scalar = vec![0.0; n];
    let mut ws = KrylovWorkspace::new();
    let scalar = pcg_with(&a, &b, &mut x_scalar, &precond, &options, &mut ws).expect("pcg");
    let mut b_panel = MultiVec::zeros(n, 1);
    b_panel.copy_col_from(0, &b);
    let mut x_panel = MultiVec::zeros(n, 1);
    let mut bws = BlockKrylovWorkspace::new();
    let mut reports = Vec::new();
    block_pcg_with(&a, &b_panel, &mut x_panel, &precond, &options, &mut bws, &mut reports)
        .expect("block pcg");
    reports[0].iterations == scalar.iterations
        && reports[0].residual.to_bits() == scalar.residual.to_bits()
        && x_panel
            .col_vec(0)
            .iter()
            .zip(&x_scalar)
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

fn main() {
    let quick = arg_flag("quick");
    let (default_xy, default_z, default_steps, default_samples) = if quick {
        (0.9e-3, 0.5e-3, 5, 8)
    } else {
        (0.42e-3, 0.22e-3, 50, 64)
    };
    let samples = arg_usize("samples", default_samples);
    let steps = arg_usize("steps", default_steps);
    let threads = arg_usize("threads", 1);
    let batched_flag = arg_flag("batched");
    let batch_width = arg_usize("batch-width", if quick { 4 } else { 16 });
    let seed = arg_usize("seed", 2016) as u64;
    let t_end = steps as f64;
    let mesh_xy = arg_f64("mesh-xy", default_xy);
    let mesh_z = arg_f64("mesh-z", default_z);

    let build = BuildOptions {
        target_spacing_xy: mesh_xy,
        target_spacing_z: mesh_z,
        ..BuildOptions::paper_fig7()
    };
    let built = build_model(&PackageGeometry::paper(), &build).expect("package builds");
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);
    let mut gen = MonteCarloSampler::new(seed);
    let inputs = draw_samples(&mut gen, &dists, samples);

    // Campaign solver profile, applied to all four configurations:
    //
    // * Fixed outer iteration count (picard_tol = 0, 6 iterates per step,
    //   fully converged: the update contracts ~16× per iterate on this
    //   package). An update-threshold stop lets a 1e-9-level CG difference
    //   flip one step's Picard count somewhere in 64 × 50 steps, which
    //   moves that sample by the outer-update scale (~1e-6 K) and makes
    //   the 1.5e-7 K agreement gate a coin toss. With the outer structure
    //   pinned, the remaining config-to-config spread is pure inner-solver
    //   tolerance.
    // * Inner CG tolerance one decade below default (1e-10): the iterate
    //   spread between different preconditioner states scales with the
    //   residual tolerance; 1e-10 keeps the worst case over the whole
    //   campaign safely under the gate.
    //
    // Every configuration pays identically, so the speedups are unaffected.
    let campaign = |mut o: SolverOptions| {
        o.linear.tol_rel = 1e-10;
        o.picard_tol = 0.0;
        o.picard_max_iter = 6;
        o
    };
    let opts_ic = campaign(SolverOptions::default());
    let opts_uq = campaign(SolverOptions::uq());
    let dofs = {
        let probe = Simulator::new(&built.model, opts_ic.clone()).expect("simulator");
        probe.layout().n_total()
    };
    eprintln!(
        "bench_uq: {samples}-sample campaign, {dofs} DoFs, {steps} steps over {t_end} s, \
         {threads} thread(s)"
    );

    // 1. Rebuild-per-sample with the repo default solver (the old path).
    let (q_rebuild_ic, c_rebuild_ic, w_rebuild_ic) =
        rebuild_campaign(&built, &inputs, t_end, steps, threads, &opts_ic);
    eprintln!("rebuild ic(1):  {w_rebuild_ic:.2} s");
    // 2. Rebuild-per-sample with the UQ profile (AMG).
    let (q_rebuild_amg, c_rebuild_amg, w_rebuild_amg) =
        rebuild_campaign(&built, &inputs, t_end, steps, threads, &opts_uq);
    eprintln!("rebuild amg:    {w_rebuild_amg:.2} s");

    // 3. + 4. Session reuse through the ensemble engine.
    let compiled = Arc::new(built.compile(opts_uq.clone()).expect("compiles"));
    let scenario = built.elongation_scenario(t_end, steps, flatten_wire_series);
    let start = Instant::now();
    let exact = run_ensemble(
        &compiled,
        &scenario,
        &inputs,
        &EnsembleOptions {
            n_threads: threads,
            warm_start: false,
            progress: None,
            ..EnsembleOptions::default()
        },
    )
    .expect("exact ensemble");
    let w_exact = start.elapsed().as_secs_f64();
    eprintln!("session exact:  {w_exact:.2} s");
    let start = Instant::now();
    let warm = run_ensemble(
        &compiled,
        &scenario,
        &inputs,
        &EnsembleOptions {
            n_threads: threads,
            warm_start: true,
            progress: None,
            ..EnsembleOptions::default()
        },
    )
    .expect("warm ensemble");
    let w_warm = start.elapsed().as_secs_f64();
    eprintln!("session warm:   {w_warm:.2} s");

    // 5. The batched block-Krylov fast path (opt-in).
    let batched = batched_flag.then(|| {
        let opts_batched = SolverOptions {
            batch_width,
            ..opts_uq.clone()
        };
        let compiled_b = Arc::new(built.compile(opts_batched).expect("compiles"));
        let scenario_b = built.elongation_scenario(t_end, steps, flatten_wire_series);
        let start = Instant::now();
        let result = run_ensemble_batched(
            &compiled_b,
            &scenario_b,
            &inputs,
            &EnsembleOptions {
                n_threads: threads,
                ..EnsembleOptions::default()
            },
        )
        .expect("batched ensemble");
        let wall = start.elapsed().as_secs_f64();
        eprintln!("batched w{batch_width}:     {wall:.2} s");
        // Worker-count bit-identity: groups are formed globally, so the
        // first two groups of the campaign are reproducible standalone —
        // re-run just those with 2 and 4 workers and compare bitwise.
        let subset = &inputs[..inputs.len().min(2 * batch_width)];
        let mut threads_identical = true;
        for t in [2usize, 4] {
            let sub = run_ensemble_batched(
                &compiled_b,
                &scenario_b,
                subset,
                &EnsembleOptions {
                    n_threads: t,
                    ..EnsembleOptions::default()
                },
            )
            .expect("batched subset ensemble");
            threads_identical &=
                sub.outputs.as_slice() == &result.outputs[..subset.len()];
        }
        (result, wall, threads_identical)
    });

    // Physics gates.
    assert_eq!(
        exact.outputs, q_rebuild_amg,
        "session exact mode must be bit-identical to rebuild-per-sample at equal options"
    );
    let diff_warm_vs_ic = max_abs_diff(&warm.outputs, &q_rebuild_ic);
    let diff_warm_vs_exact = max_abs_diff(&warm.outputs, &exact.outputs);
    eprintln!(
        "max |dQoI|: warm vs rebuild-ic {diff_warm_vs_ic:.3e} K, warm vs exact {diff_warm_vs_exact:.3e} K"
    );
    let qoi_gate = if quick { 1e-3 } else { 1.5e-7 };
    assert!(
        diff_warm_vs_ic < qoi_gate,
        "warm session physics diverged from the rebuild reference: {diff_warm_vs_ic} K"
    );

    let speedup = w_rebuild_ic / w_warm;
    let speedup_amg = w_rebuild_ic / w_rebuild_amg;
    let speedup_session = w_rebuild_amg / w_warm;
    eprintln!(
        "speedup: session-warm vs rebuild-default {speedup:.2}x \
         (= amg {speedup_amg:.2}x · session {speedup_session:.2}x)"
    );
    if !quick {
        assert!(
            speedup >= 1.5,
            "session-reuse campaign must be >= 1.5x faster than rebuild-per-sample, got {speedup:.2}x"
        );
    }

    // Batched gates: throughput over the warm baseline, physics agreement,
    // worker-count bit-identity, and the k = 1 scalar-equivalence witness.
    let mut batched_extra = String::new();
    if let Some((result, w_batched, threads_identical)) = &batched {
        let k1_identical = block_k1_matches_scalar_bitwise();
        let diff_batched_vs_warm = max_abs_diff(&result.outputs, &warm.outputs);
        let diff_batched_vs_exact = max_abs_diff(&result.outputs, &exact.outputs);
        let speedup_batched = w_warm / w_batched;
        eprintln!(
            "batched: {speedup_batched:.2}x vs warm, max |dQoI| vs warm \
             {diff_batched_vs_warm:.3e} K, threads-identical {threads_identical}, \
             k=1 scalar-identical {k1_identical}"
        );
        assert!(
            k1_identical,
            "k = 1 block solve must be bit-identical to the scalar PCG"
        );
        assert!(
            threads_identical,
            "batched outputs must be bit-identical across 1/2/4 worker threads"
        );
        assert!(
            diff_batched_vs_warm < qoi_gate,
            "batched physics diverged from the warm reference: {diff_batched_vs_warm} K"
        );
        if !quick {
            assert!(
                speedup_batched >= 1.8,
                "batched campaign must be >= 1.8x faster than warm session reuse, \
                 got {speedup_batched:.2}x"
            );
        }
        batched_extra = format!(
            ",\n  \"batch_width\": {batch_width},\n  \
             \"max_qoi_diff_batched_vs_warm_k\": {diff_batched_vs_warm:.3e},\n  \
             \"max_qoi_diff_batched_vs_exact_k\": {diff_batched_vs_exact:.3e},\n  \
             \"speedup_batched_vs_warm_session\": {speedup_batched:.3},\n  \
             \"batched_bit_identical_across_1_2_4_threads\": {threads_identical},\n  \
             \"block_k1_bit_identical_to_scalar\": {k1_identical}"
        );
    }

    let mut runs = vec![
        RunRecord::from_counters(
            "rebuild-per-sample ic(1) (pre-session default path)",
            &opts_ic,
            w_rebuild_ic,
            c_rebuild_ic,
        ),
        RunRecord::from_counters(
            "rebuild-per-sample amg (uq profile)",
            &opts_uq,
            w_rebuild_amg,
            c_rebuild_amg,
        ),
        RunRecord::from_counters(
            "ensemble session-reuse exact (uq profile)",
            &opts_uq,
            w_exact,
            exact.counters,
        ),
        RunRecord::from_counters(
            "ensemble session-reuse warm (uq profile)",
            &opts_uq,
            w_warm,
            warm.counters,
        ),
    ];
    if let Some((result, w_batched, _)) = &batched {
        runs.push(RunRecord::from_counters(
            format!("ensemble batched block-krylov (uq profile, width {batch_width})"),
            &opts_uq,
            *w_batched,
            result.counters,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"uq\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"dofs\": {dofs},\n  \"samples\": {samples},\n  \"steps\": {steps},\n  \
         \"t_end_s\": {t_end},\n  \"threads\": {threads},\n  \
         \"mesh_xy_m\": {mesh_xy:e},\n  \"mesh_z_m\": {mesh_z:e},\n  \"runs\": [\n{}\n  ],\n  \
         \"session_exact_bit_identical_to_rebuild\": true,\n  \
         \"max_qoi_diff_warm_vs_rebuild_k\": {diff_warm_vs_ic:.3e},\n  \
         \"max_qoi_diff_warm_vs_exact_k\": {diff_warm_vs_exact:.3e},\n  \
         \"speedup_amg_vs_ic_rebuild\": {speedup_amg:.3},\n  \
         \"speedup_warm_session_vs_amg_rebuild\": {speedup_session:.3},\n  \
         \"speedup_session_vs_rebuild\": {speedup:.3}{batched_extra}\n}}\n",
        runs.iter()
            .map(|r| r.to_json("    "))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_uq.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!("session-reuse vs rebuild-per-sample: {speedup:.2}x -> {out}");
}
