//! **Table II** — simulation parameters, cross-checked against the built
//! package model (the table is not just printed: every row is verified
//! against what the solver will actually use).

use etherm_package::{build_model, BuildOptions, PackageGeometry, PaperParameters};
use etherm_report::TextTable;

fn main() {
    let p = PaperParameters::default();
    let geometry = PackageGeometry::paper();
    let built = build_model(&geometry, &BuildOptions::paper_fig7()).expect("package builds");

    // Cross-checks.
    let mean_len: f64 =
        built.nominal_lengths.iter().sum::<f64>() / built.nominal_lengths.len() as f64;
    let bc = built.model.thermal_boundary();
    let all_dirichlet_magnitudes_ok = built
        .model
        .electric_dirichlet()
        .iter()
        .all(|&(_, v)| (v.abs() - p.v_dc()).abs() < 1e-15);

    let mut t = TextTable::new(&["Parameter", "Paper", "Model", "ok"]);
    let mut row = |name: &str, paper: String, model: String, ok: bool| {
        t.add_row_owned(vec![name.into(), paper, model, if ok { "yes" } else { "NO" }.into()]);
    };
    row(
        "Bonding wire voltage V_bw",
        "40 mV".into(),
        format!("{:.0} mV (±{:.0} mV PEC)", p.wire_voltage * 1e3, p.v_dc() * 1e3),
        all_dirichlet_magnitudes_ok,
    );
    row("End time", "50 s".into(), format!("{} s", p.end_time), p.end_time == 50.0);
    row(
        "No. of time steps",
        "51 points".into(),
        format!("{} steps + t=0", p.n_steps()),
        p.n_steps() == 50,
    );
    row(
        "No. of MC samples",
        "1000".into(),
        format!("{}", p.n_mc_samples),
        p.n_mc_samples == 1000,
    );
    row(
        "Wires' diameter",
        "25.4 um".into(),
        format!("{:.1} um", built.model.wires()[0].wire.diameter() * 1e6),
        (built.model.wires()[0].wire.diameter() - 25.4e-6).abs() < 1e-12,
    );
    row(
        "Average wires' length",
        "1.55 mm".into(),
        format!("{:.4} mm (nominal, mu_delta = 0.17)", mean_len * 1e3),
        (mean_len - 1.55e-3).abs() < 1e-5,
    );
    row(
        "Ambient temperature",
        "300 K".into(),
        format!("{} K", built.model.ambient()),
        built.model.ambient() == 300.0,
    );
    row(
        "Heat transfer coefficient",
        "25 W/m2/K".into(),
        format!("{} W/m2/K", bc.heat_transfer_coefficient),
        bc.heat_transfer_coefficient == 25.0,
    );
    row(
        "Emissivity",
        "0.2475".into(),
        format!("{}", bc.emissivity),
        bc.emissivity == 0.2475,
    );
    println!("Table II: simulation parameters (paper vs built model)");
    println!("{}", t.render());
    println!(
        "12 wires on {} pads, {} PEC contact nodes, grid {} nodes.",
        geometry.n_pads(),
        built.model.electric_dirichlet().len(),
        built.model.grid().n_nodes()
    );
    println!(
        "calibrated environment (DESIGN.md §4): cooled-area fraction {}, mold rho_c {:.1e} J/K/m3.",
        bc.area_scale,
        built.model.materials().get(0).rho_c()
    );
}
