//! **A4** — mesh-refinement convergence of the hottest-wire temperature.
//!
//! Runs the nominal (mean elongation) transient on a sequence of mesh
//! targets and reports the hottest-wire end temperature, validating the MC
//! production mesh.

use etherm_bench::arg_usize;
use etherm_core::{Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, PackageGeometry};
use etherm_report::TextTable;

fn main() {
    let steps = arg_usize("steps", 25);
    let geometry = PackageGeometry::paper();
    let levels: [(f64, f64, &str); 4] = [
        (0.60e-3, 0.30e-3, "coarse"),
        (0.42e-3, 0.22e-3, "MC production"),
        (0.30e-3, 0.15e-3, "default"),
        (0.22e-3, 0.11e-3, "fine"),
    ];

    println!("A4: mesh convergence of the nominal hottest-wire temperature (t = 50 s)\n");
    let mut t = TextTable::new(&["mesh", "h_xy [mm]", "nodes", "E_hot(50s) [K]", "diff to finest [K]"]);
    let mut results = Vec::new();
    for &(hxy, hz, name) in &levels {
        let opts = BuildOptions {
            target_spacing_xy: hxy,
            target_spacing_z: hz,
            ..BuildOptions::paper_fig7()
        };
        let built = build_model(&geometry, &opts).expect("build");
        let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        let e = sol.max_wire_series()[steps];
        results.push((name, hxy, built.model.grid().n_nodes(), e));
        eprintln!("  {name} done ({} nodes)", built.model.grid().n_nodes());
    }
    let finest = results.last().expect("levels ran").3;
    for &(name, hxy, nodes, e) in &results {
        t.add_row_owned(vec![
            name.into(),
            format!("{:.2}", hxy * 1e3),
            format!("{nodes}"),
            format!("{e:.2}"),
            format!("{:.3}", (e - finest).abs()),
        ]);
    }
    println!("{}", t.render());
    println!("the MC production mesh must sit within a small fraction of sigma_MC (≈4-5 K) of the finest level.");
}
