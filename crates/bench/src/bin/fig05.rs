//! **Fig. 5** — probability density function of the relative elongation δ.
//!
//! Runs the synthetic X-ray metrology on the exemplary chip (12 wires),
//! fits a normal distribution by moment matching exactly as the paper does,
//! renders the histogram with the fitted pdf overlaid, and reports a
//! Kolmogorov–Smirnov goodness of fit.

use etherm_bench::arg_usize;
use etherm_package::{paper_elongation_distribution, PackageGeometry, XrayMetrology};
use etherm_report::{ChartOptions, LineChart};
use etherm_uq::dist::Distribution;
use etherm_uq::stats::{ks_p_value, ks_statistic};
use etherm_uq::Histogram;

fn main() {
    let seed = arg_usize("seed", 2016) as u64;
    let geometry = PackageGeometry::paper();
    let xray = XrayMetrology {
        seed,
        ..XrayMetrology::default()
    };
    let measurements = xray.measure(&geometry);
    let deltas = XrayMetrology::elongations(&measurements);
    let fit = XrayMetrology::fit(&measurements);

    println!("Fig. 5: pdf of the relative elongation delta (12 wires, seed {seed})\n");
    println!("samples: {:?}\n", deltas.iter().map(|d| (d * 1e4).round() / 1e4).collect::<Vec<_>>());

    // Histogram (paper uses ~7 bins over [0, 0.4]).
    let hist = {
        let mut h = Histogram::new(0.0, 0.4, 8);
        for &d in &deltas {
            h.add(d);
        }
        h
    };
    let centers: Vec<f64> = (0..hist.n_bins()).map(|b| hist.bin_center(b)).collect();
    let densities: Vec<f64> = (0..hist.n_bins()).map(|b| hist.density(b)).collect();
    let pdf: Vec<f64> = centers.iter().map(|&x| fit.pdf(x)).collect();

    let mut chart = LineChart::new(ChartOptions {
        width: 60,
        height: 16,
        x_label: "relative elongation delta".into(),
        y_label: "probability density".into(),
    });
    chart.add_series(&centers, &densities, '#');
    chart.add_series(&centers, &pdf, '*');
    println!("{}", chart.render());
    println!("  '#' histogram of the 12 measurements, '*' fitted normal pdf\n");

    let d_stat = ks_statistic(&deltas, &fit);
    let p = ks_p_value(d_stat, deltas.len());
    println!("fitted:  mu = {:.4}, sigma = {:.4}", fit.mu(), fit.sigma());
    let paper = paper_elongation_distribution();
    println!("paper:   mu = {:.4}, sigma = {:.4}", paper.mean(), paper.std_dev());
    println!("KS test against the fit: D = {d_stat:.3}, p = {p:.3} (normality not rejected for p > 0.05)");
    println!("\nNote (paper §IV-B): 12 samples are 'rather small'; the Fig. 7 experiment");
    println!("therefore uses the paper's published N(0.17, 0.048) verbatim.");
}
