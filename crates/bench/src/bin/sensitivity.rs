//! **A9** — global sensitivity of the hottest wire's temperature to the
//! 12 elongations.
//!
//! Reuses a Monte Carlo sample set to estimate Pearson correlations and
//! standardized regression coefficients (SRC) between each wire's `δ_j`
//! and the hottest wire's end temperature — quantifying the paper's
//! "global sensitivity of the bonding wires' temperatures w.r.t. their
//! geometric parameters". Runs on the session-reuse ensemble engine
//! (compile once, `--threads N` workers).

use etherm_bench::{arg_usize, build_paper_package, iid_inputs};
use etherm_core::{run_ensemble, EnsembleOptions, SolverOptions};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::sensitivity::{pearson, standardized_regression_coefficients};
use etherm_uq::{draw_samples, McOptions, McResult, MonteCarloSampler};
use std::sync::Arc;

fn progress(done: usize, total: usize) {
    if done.is_multiple_of(10) || done == total {
        eprintln!("  sample {done}/{total}");
    }
}

fn main() {
    let m = arg_usize("samples", 48);
    let steps = arg_usize("steps", 25);
    let threads = arg_usize("threads", 1);
    let built = build_paper_package();
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);

    eprintln!("sensitivity: M = {m} samples, {threads} thread(s)");
    let mut gen = MonteCarloSampler::new(31);
    let inputs = draw_samples(&mut gen, &dists, m);
    let compiled = Arc::new(
        built
            .compile(SolverOptions::fast())
            .expect("package compiles"),
    );
    // Outputs: all 12 wire end temperatures.
    let scenario = built.elongation_scenario(50.0, steps, move |sol| {
        (0..12).map(|j| sol.wire_series(j)[steps]).collect()
    });
    let ensemble = run_ensemble(
        &compiled,
        &scenario,
        &inputs,
        &EnsembleOptions {
            n_threads: threads,
            warm_start: false,
            progress: Some(progress),
            ..EnsembleOptions::default()
        },
    )
    .expect("mc run");
    let result = McResult::from_ordered(
        inputs,
        ensemble.outputs,
        McOptions {
            keep_samples: true,
            ..Default::default()
        },
    );

    // Hottest wire by mean end temperature.
    let means = result.means();
    let j_hot = (0..12)
        .max_by(|&a, &b| means[a].partial_cmp(&means[b]).expect("finite"))
        .expect("wires");
    let samples = result.samples.as_ref().expect("kept");
    let y: Vec<f64> = samples.iter().map(|s| s[j_hot]).collect();

    let src = standardized_regression_coefficients(&result.inputs, &y);
    println!("A9: sensitivity of wire #{j_hot}'s end temperature to the 12 elongations (M = {m})\n");
    let mut t = TextTable::new(&["input delta_j", "pearson r", "SRC"]);
    for j in 0..12 {
        let xj: Vec<f64> = result.inputs.iter().map(|x| x[j]).collect();
        let r = pearson(&xj, &y);
        t.add_row_owned(vec![
            format!("wire {j}{}", if j == j_hot { "  <- hottest" } else { "" }),
            format!("{r:+.3}"),
            format!("{:+.3}", src[j]),
        ]);
    }
    println!("{}", t.render());
    let r2: f64 = src.iter().map(|s| s * s).sum();
    println!("sum of SRC^2 (≈ R^2 of the linear surrogate): {r2:.3}");
    println!("expected pattern: the hottest wire's own elongation dominates with a NEGATIVE");
    println!("coefficient (longer wire → higher resistance → less current/power at fixed");
    println!("voltage → cooler), while the package-level coupling gives every other wire a");
    println!("similar-signed, smaller contribution through the shared thermal bath.");
}
