//! **A9** — global sensitivity of the hottest wire's temperature to the
//! 12 elongations.
//!
//! Reuses a Monte Carlo sample set to estimate Pearson correlations and
//! standardized regression coefficients (SRC) between each wire's `δ_j`
//! and the hottest wire's end temperature — quantifying the paper's
//! "global sensitivity of the bonding wires' temperatures w.r.t. their
//! geometric parameters".

use etherm_bench::{arg_usize, build_paper_package, iid_inputs};
use etherm_package::paper_elongation_distribution;
use etherm_report::TextTable;
use etherm_uq::sensitivity::{pearson, standardized_regression_coefficients};
use etherm_uq::{run_monte_carlo, McOptions, MonteCarloSampler};

fn main() {
    let m = arg_usize("samples", 48);
    let steps = arg_usize("steps", 25);
    let mut built = build_paper_package();
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);

    eprintln!("sensitivity: M = {m} samples");
    let mut gen = MonteCarloSampler::new(31);
    let result = run_monte_carlo(
        &mut gen,
        &dists,
        m,
        McOptions { keep_samples: true },
        |i, deltas| -> Result<Vec<f64>, String> {
            if i % 10 == 0 {
                eprintln!("  sample {i}/{m}");
            }
            built.apply_elongations(deltas).map_err(|e| e.to_string())?;
            let sim = etherm_core::Simulator::new(&built.model, etherm_core::SolverOptions::fast())
                .map_err(|e| e.to_string())?;
            let sol = sim.run_transient(50.0, steps, &[]).map_err(|e| e.to_string())?;
            // Outputs: all 12 wire end temperatures.
            Ok((0..12).map(|j| sol.wire_series(j)[steps]).collect())
        },
    )
    .expect("mc run");

    // Hottest wire by mean end temperature.
    let means = result.means();
    let j_hot = (0..12)
        .max_by(|&a, &b| means[a].partial_cmp(&means[b]).expect("finite"))
        .expect("wires");
    let samples = result.samples.as_ref().expect("kept");
    let y: Vec<f64> = samples.iter().map(|s| s[j_hot]).collect();

    let src = standardized_regression_coefficients(&result.inputs, &y);
    println!("A9: sensitivity of wire #{j_hot}'s end temperature to the 12 elongations (M = {m})\n");
    let mut t = TextTable::new(&["input delta_j", "pearson r", "SRC"]);
    for j in 0..12 {
        let xj: Vec<f64> = result.inputs.iter().map(|x| x[j]).collect();
        let r = pearson(&xj, &y);
        t.add_row_owned(vec![
            format!("wire {j}{}", if j == j_hot { "  <- hottest" } else { "" }),
            format!("{r:+.3}"),
            format!("{:+.3}", src[j]),
        ]);
    }
    println!("{}", t.render());
    let r2: f64 = src.iter().map(|s| s * s).sum();
    println!("sum of SRC^2 (≈ R^2 of the linear surrogate): {r2:.3}");
    println!("expected pattern: the hottest wire's own elongation dominates with a NEGATIVE");
    println!("coefficient (longer wire → higher resistance → less current/power at fixed");
    println!("voltage → cooler), while the package-level coupling gives every other wire a");
    println!("similar-signed, smaller contribution through the shared thermal bath.");
}
