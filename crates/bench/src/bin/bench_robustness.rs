//! **bench_robustness** — the solver-resilience gate: deterministic fault
//! injection against the recovery ladder and the quarantine policy, plus
//! the clean-path overhead budget of the whole machinery.
//!
//! Three campaigns on the paper package, all at tight tolerances:
//!
//! 1. `clean` — the same elongation campaign with recovery **disabled**
//!    (`RecoveryPolicy::disabled()`) and with the **default** ladder. No
//!    fault fires, so the ladder must never engage: the outputs are
//!    asserted bit-identical, and the wall-time overhead of carrying the
//!    resilience machinery is gated below 2 % (full profile; reported but
//!    not gated under `--quick`).
//! 2. `recoverable` — every sample carries a one-shot NaN or breakdown
//!    [`FaultPlan`] that corrupts an early linear solve. The retry rung
//!    restarts each poisoned solve from its saved initial guess, so the
//!    campaign must complete with **zero** quarantined samples, a non-zero
//!    recovery ledger, and QoIs bit-identical to the fault-free run.
//! 3. `quarantine` — `k` samples are poisoned with saturating NaN plans
//!    (every operator application corrupted: unrecoverable). Under
//!    `FailurePolicy::Quarantine` the campaign completes, reports exactly
//!    those `k` indices, leaves the surviving `n − k` samples bit-identical
//!    to the fault-free run, and the whole outcome (outputs, counters,
//!    failure list) is bit-identical for 1, 2 and 4 worker threads.
//!
//! Flags: `--samples M` / `--steps N` / `--repeats R` (wall-time best-of) /
//! `--seed S` / `--mesh-xy`, `--mesh-z` / `--quick` (CI smoke: tiny mesh,
//! overhead reported but not gated) / `--out PATH`.

use etherm_bench::{
    arg_f64, arg_flag, arg_usize, arg_value, flatten_wire_series, iid_inputs, RunRecord,
};
use etherm_core::{
    run_ensemble, CompiledModel, CoreError, EnsembleOptions, EnsembleResult, Fault, FailurePolicy,
    FaultKind, FaultPlan, RecoveryPolicy, Scenario, Session, SolverOptions,
};
use etherm_package::{
    build_model, paper_elongation_distribution, BuildOptions, PackageGeometry,
};
use etherm_uq::{draw_samples, MonteCarloSampler};
use std::sync::Arc;
use std::time::Instant;

/// Wraps a scenario with a per-sample-index [`FaultPlan`] table: the
/// injection side of the fault campaigns. Clean samples install `None`,
/// clearing whatever the previous sample on that worker left behind.
struct FaultCampaign<'a, S> {
    inner: &'a S,
    plans: Vec<Option<FaultPlan>>,
}

impl<S: Scenario> Scenario for FaultCampaign<'_, S> {
    fn apply(&self, session: &mut Session, sample: &[f64]) -> Result<(), CoreError> {
        self.inner.apply(session, sample)
    }
    fn apply_indexed(
        &self,
        session: &mut Session,
        sample: &[f64],
        index: usize,
    ) -> Result<(), CoreError> {
        session.set_fault_plan(self.plans.get(index).cloned().flatten());
        self.inner.apply(session, sample)
    }
    fn evaluate(&self, session: &mut Session) -> Result<Vec<f64>, CoreError> {
        self.inner.evaluate(session)
    }
}

fn main() {
    let quick = arg_flag("quick");
    let (default_xy, default_z, default_steps, default_samples) = if quick {
        (1.3e-3, 0.7e-3, 4, 8)
    } else {
        (0.9e-3, 0.5e-3, 10, 24)
    };
    let samples = arg_usize("samples", default_samples);
    let steps = arg_usize("steps", default_steps);
    let repeats = arg_usize("repeats", 3).max(1);
    let seed = arg_usize("seed", 2016) as u64;
    let mesh_xy = arg_f64("mesh-xy", default_xy);
    let mesh_z = arg_f64("mesh-z", default_z);
    let t_end = steps as f64;
    assert!(samples >= 6, "--samples must be >= 6 for the quarantine split");

    let build = BuildOptions {
        target_spacing_xy: mesh_xy,
        target_spacing_z: mesh_z,
        ..BuildOptions::paper_fig7()
    };
    let built = build_model(&PackageGeometry::paper(), &build).expect("package builds");
    let delta = paper_elongation_distribution();
    let dists = iid_inputs(&delta, 12);
    let mut gen = MonteCarloSampler::new(seed);
    let inputs = draw_samples(&mut gen, &dists, samples);

    let opts_default = SolverOptions::fast();
    let opts_disabled = {
        let mut o = SolverOptions::fast();
        o.recovery = RecoveryPolicy::disabled();
        o
    };
    let compiled_default: Arc<CompiledModel> =
        Arc::new(built.compile(opts_default.clone()).expect("compiles"));
    let compiled_disabled: Arc<CompiledModel> =
        Arc::new(built.compile(opts_disabled.clone()).expect("compiles"));
    let scenario = built.elongation_scenario(t_end, steps, flatten_wire_series);
    let dofs = compiled_default.layout().n_total();
    eprintln!(
        "bench_robustness: {samples}-sample campaign, {dofs} DoFs, {steps} steps over {t_end} s, \
         best of {repeats}"
    );

    let campaign = |compiled: &Arc<CompiledModel>, n_threads: usize| -> (EnsembleResult, f64) {
        let start = Instant::now();
        let r = run_ensemble(
            compiled,
            &scenario,
            &inputs,
            &EnsembleOptions {
                n_threads,
                ..EnsembleOptions::default()
            },
        )
        .expect("clean campaign");
        (r, start.elapsed().as_secs_f64())
    };

    // ---- 1. Clean campaign: ladder disabled vs default ------------------
    // Interleaved best-of-R walls so systematic machine drift hits both
    // configurations equally.
    let mut w_disabled = f64::INFINITY;
    let mut w_default = f64::INFINITY;
    let mut clean_disabled = None;
    let mut clean_default = None;
    for _ in 0..repeats {
        let (r, w) = campaign(&compiled_disabled, 1);
        w_disabled = w_disabled.min(w);
        clean_disabled = Some(r);
        let (r, w) = campaign(&compiled_default, 1);
        w_default = w_default.min(w);
        clean_default = Some(r);
    }
    let clean_disabled = clean_disabled.expect("repeats >= 1");
    let clean_default = clean_default.expect("repeats >= 1");
    assert_eq!(
        clean_default.outputs, clean_disabled.outputs,
        "a clean run must be bit-identical with and without the recovery ladder"
    );
    assert!(
        !clean_default.counters.recovery.any(),
        "the ladder engaged on a fault-free campaign: {:?}",
        clean_default.counters.recovery
    );
    let overhead = w_default / w_disabled - 1.0;
    eprintln!(
        "clean:        disabled {w_disabled:.2} s, default {w_default:.2} s \
         (overhead {:+.2} %)",
        overhead * 100.0
    );
    if !quick {
        assert!(
            overhead < 0.02,
            "recovery machinery costs {:.2} % on the clean path (gate: 2 %)",
            overhead * 100.0
        );
    }

    // ---- 2. Recoverable one-shot faults ---------------------------------
    // Every sample gets one early poisoned solve, alternating NaN
    // contamination and a symmetry-breaking sign flip. Both are one-shot:
    // the retry rung re-runs the solve from its saved initial guess against
    // the pristine operator, which must reproduce the fault-free QoIs bit
    // for bit. Sign flips are kept off apply 0: negating the initial
    // residual computation is *undetectable* (CG faithfully solves the
    // perturbed system) — the one fault class the guards intentionally
    // cannot see.
    let recoverable_plans: Vec<Option<FaultPlan>> = (0..samples)
        .map(|i| {
            let (kind, apply) = if i % 2 == 0 {
                (FaultKind::Nan, i % 3)
            } else {
                (FaultKind::Breakdown, 1 + i % 2)
            };
            Some(FaultPlan::new(vec![Fault {
                solve: i % 4,
                apply,
                kind,
            }]))
        })
        .collect();
    let faulty = FaultCampaign {
        inner: &scenario,
        plans: recoverable_plans,
    };
    let start = Instant::now();
    let recovered = run_ensemble(
        &compiled_default,
        &faulty,
        &inputs,
        &EnsembleOptions::default(),
    )
    .expect("recoverable campaign completes");
    let w_recovered = start.elapsed().as_secs_f64();
    assert!(recovered.failures.is_empty(), "one-shot faults must recover");
    assert_eq!(
        recovered.outputs, clean_default.outputs,
        "recovered QoIs must be bit-identical to the fault-free campaign"
    );
    let ledger = recovered.counters.recovery;
    assert!(
        ledger.recovered_solves >= samples,
        "every sample carried a fault; ledger says {ledger:?}"
    );
    eprintln!(
        "recoverable:  {w_recovered:.2} s, {} retries, {} recovered solves, outputs exact",
        ledger.solve_retries, ledger.recovered_solves
    );

    // ---- 3. Quarantine under saturating faults --------------------------
    // k poisoned samples whose every operator application is corrupted: no
    // ladder can save them. The campaign must complete under quarantine,
    // report exactly those indices, keep the survivors bit-identical, and
    // the whole outcome must not depend on the thread count.
    let poisoned: Vec<usize> = vec![1, samples / 2, samples - 2];
    let quarantine_plans: Vec<Option<FaultPlan>> = (0..samples)
        .map(|i| {
            poisoned
                .contains(&i)
                .then(|| FaultPlan::saturating(FaultKind::Nan))
        })
        .collect();
    let poisoned_campaign = FaultCampaign {
        inner: &scenario,
        plans: quarantine_plans,
    };
    let mut quarantine_runs = Vec::new();
    let mut w_quarantine = f64::NAN;
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let r = run_ensemble(
            &compiled_default,
            &poisoned_campaign,
            &inputs,
            &EnsembleOptions {
                n_threads: threads,
                failure_policy: FailurePolicy::Quarantine {
                    max_failures: poisoned.len(),
                },
                ..EnsembleOptions::default()
            },
        )
        .expect("quarantine campaign completes");
        if threads == 1 {
            w_quarantine = start.elapsed().as_secs_f64();
        }
        let reported: Vec<usize> = r.failures.iter().map(|f| f.sample).collect();
        assert_eq!(reported, poisoned, "threads = {threads}");
        for (i, out) in r.outputs.iter().enumerate() {
            if poisoned.contains(&i) {
                assert!(out.is_empty(), "poisoned sample {i} produced output");
            } else {
                assert_eq!(
                    out, &clean_default.outputs[i],
                    "surviving sample {i} moved (threads = {threads})"
                );
            }
        }
        quarantine_runs.push((threads, r));
    }
    let (_, reference) = &quarantine_runs[0];
    for (threads, r) in &quarantine_runs[1..] {
        assert_eq!(r.outputs, reference.outputs, "threads = {threads}");
        assert_eq!(r.counters, reference.counters, "threads = {threads}");
        assert_eq!(r.failures, reference.failures, "threads = {threads}");
    }
    eprintln!(
        "quarantine:   {w_quarantine:.2} s, {}/{} samples quarantined at {poisoned:?}, \
         deterministic across 1/2/4 threads",
        poisoned.len(),
        samples
    );

    // ---- report ---------------------------------------------------------
    let runs = [
        RunRecord::from_counters(
            "clean campaign, recovery disabled",
            &opts_disabled,
            w_disabled,
            clean_disabled.counters,
        ),
        RunRecord::from_counters(
            "clean campaign, default recovery ladder",
            &opts_default,
            w_default,
            clean_default.counters,
        ),
        RunRecord::from_counters(
            "one-shot fault campaign, ladder recovers every sample",
            &opts_default,
            w_recovered,
            recovered.counters,
        ),
        RunRecord::from_counters(
            "saturating-fault campaign under quarantine",
            &opts_default,
            w_quarantine,
            reference.counters,
        ),
    ];
    let poisoned_json = poisoned
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"robustness\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"dofs\": {dofs},\n  \"samples\": {samples},\n  \"steps\": {steps},\n  \
         \"t_end_s\": {t_end},\n  \"mesh_xy_m\": {mesh_xy:e},\n  \"mesh_z_m\": {mesh_z:e},\n  \
         \"runs\": [\n{}\n  ],\n  \
         \"clean_bit_identical_with_ladder\": true,\n  \
         \"clean_overhead_pct\": {:.3},\n  \
         \"clean_overhead_gated\": {},\n  \
         \"recoverable_solve_retries\": {},\n  \
         \"recoverable_recovered_solves\": {},\n  \
         \"recoverable_outputs_bit_identical\": true,\n  \
         \"quarantined_samples\": [{poisoned_json}],\n  \
         \"quarantine_survivors_bit_identical\": true,\n  \
         \"quarantine_deterministic_across_threads\": [1, 2, 4]\n}}\n",
        runs.iter()
            .map(|r| r.to_json("    "))
            .collect::<Vec<_>>()
            .join(",\n"),
        overhead * 100.0,
        !quick,
        ledger.solve_retries,
        ledger.recovered_solves,
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_robustness.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!(
        "resilience gate passed: clean overhead {:+.2} %, {} recoveries, \
         {} quarantined -> {out}",
        overhead * 100.0,
        ledger.recovered_solves,
        poisoned.len()
    );
}
