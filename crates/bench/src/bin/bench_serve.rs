//! **bench_serve** — serving-layer benchmark: warm multi-tenant pool vs
//! compile-or-reset-per-request, scheduler determinism, and admission
//! control under pressure.
//!
//! The scenario: 8 concurrent clients firing a seeded mixed workload —
//! latency-class `wire_sizing` traffic with `campaign` and `fusing`
//! requests sprinkled in, alternating across two hot models. The warm
//! path answers from the resident compiled models and the per-model
//! session pools; the cold baseline is the pre-serving world — every
//! request a serialized one-shot CLI invocation paying process spawn,
//! model build, compile and a fresh simulator, as the seed's per-figure
//! binary design does (compile-or-reset-per-request, no registry, no
//! pool, no scheduler). Both paths must answer bit-identically.
//!
//! Gates (both profiles):
//! * throughput: the warm pool clears the 8-client workload ≥ 2× faster
//!   than compile-per-request,
//! * determinism: every response is bit-identical across 1-, 4- and
//!   8-worker engines,
//! * admission: an over-budget request is rejected with a structured
//!   `budget-exhausted` error and a queue-overflow burst sheds with
//!   structured `shed` frames, while concurrent well-behaved requests
//!   complete.
//!
//! Flags: `--quick` (CI smoke: smaller model and workload), `--requests N`,
//! `--clients N`, `--workers N`, `--steps S`, `--t-end T`, `--out PATH`.

use etherm_bench::{arg_f64, arg_flag, arg_usize, arg_value};
use etherm_serve::{
    ClassBudgets, Engine, ErrorKind, JobParams, ManualClock, ModelSpec, RequestClass, Response,
    ServeConfig, ServeHandle, SolverProfile, SpecKind,
};
use std::sync::Arc;
use std::time::Instant;

fn terminal_of(ticket: &etherm_serve::JobTicket) -> Response {
    ticket.wait_terminal().expect("job reached a terminal frame")
}

fn qoi_of(frame: Response) -> Vec<f64> {
    match frame {
        Response::Result { qoi, .. } => qoi,
        other => panic!("expected a result frame, got {other:?}"),
    }
}

/// One deterministic mixed-workload request: index `i` maps to
/// `(seed, class, model, params)` — 10/12 wire-sizing, 1/12 fusing,
/// 1/12 campaign, alternating across the two hot models. Shared by the
/// warm clients, the cold one-shot child (`--index`) and the
/// determinism section, so all three replay exactly the same traffic.
fn job_of(
    i: usize,
    hot: &[ModelSpec; 2],
    params: &JobParams,
) -> (u64, RequestClass, ModelSpec, JobParams) {
    let seed = 1000 + i as u64;
    let model = hot[i % 2];
    match i % 12 {
        // Fusing is a bracket-and-bisect search (up to 17 transients per
        // request), so its latency-class form probes with a single step.
        10 => (
            seed,
            RequestClass::Fusing,
            model,
            JobParams {
                n_steps: 1,
                ..params.clone()
            },
        ),
        11 => (
            seed,
            RequestClass::Campaign,
            model,
            JobParams {
                n_samples: 2,
                ..params.clone()
            },
        ),
        _ => (seed, RequestClass::WireSizing, model, params.clone()),
    }
}

fn workload(
    n: usize,
    hot: &[ModelSpec; 2],
    params: &JobParams,
) -> Vec<(u64, RequestClass, ModelSpec, JobParams)> {
    (0..n).map(|i| job_of(i, hot, params)).collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() {
    let quick = arg_flag("quick");
    let (d_requests, d_steps, d_tend, spec) = if quick {
        // CI smoke: a smaller latency-class block and fewer requests.
        (
            48,
            1,
            0.5,
            ModelSpec {
                kind: SpecKind::Block {
                    nx: 8,
                    ny: 4,
                    nz: 2,
                    wire_um: 1500,
                },
                profile: SolverProfile::Default,
            },
        )
    } else {
        // The latency-class block model: short seeded solves are exactly
        // the traffic a resident pool exists for — per-request process
        // spawn + model build + compile dominates the solve itself.
        (
            96,
            1,
            0.5,
            ModelSpec {
                kind: SpecKind::Block {
                    nx: 8,
                    ny: 4,
                    nz: 2,
                    wire_um: 1500,
                },
                profile: SolverProfile::Default,
            },
        )
    };
    let spec = match arg_value("model").as_deref() {
        Some("paper") => ModelSpec::paper_coarse(),
        Some("paper-fast") => ModelSpec {
            kind: SpecKind::Paper { xy_um: 900, z_um: 500 },
            profile: SolverProfile::Fast,
        },
        Some("block") | None => spec,
        Some(other) => panic!("unknown --model {other} (expected block, paper, paper-fast)"),
    };
    let n_requests = arg_usize("requests", d_requests);
    let clients = arg_usize("clients", 8);
    let workers = arg_usize("workers", 8);
    let steps = arg_usize("steps", d_steps);
    let t_end = arg_f64("t-end", d_tend);
    let params = JobParams {
        t_end,
        n_steps: steps,
        ..JobParams::default()
    };
    // The two hot models the mixed workload alternates across: the
    // primary spec plus a second, larger latency-class block.
    let hot = [
        spec,
        ModelSpec {
            kind: SpecKind::Block {
                nx: 10,
                ny: 5,
                nz: 2,
                wire_um: 1500,
            },
            profile: SolverProfile::Default,
        },
    ];

    // Hidden child mode for the cold baseline: this process IS one
    // pre-serving invocation — pay binary load, model build, compile and
    // a fresh simulator for a single request, print the qoi bits, exit.
    // `--index` picks the same mixed-workload job the warm pool ran.
    if arg_flag("one-shot") {
        let index = arg_usize("index", 0);
        let (seed, class, model, params) = job_of(index, &hot, &params);
        let engine = Engine::with_clock(
            ServeConfig {
                workers: 1,
                registry_capacity: 1,
                ..ServeConfig::default()
            },
            ManualClock::new(),
        );
        let handle = ServeHandle::new(Arc::clone(&engine));
        let ticket = handle.submit(class, model, params, seed);
        let qoi = qoi_of(terminal_of(&ticket));
        let bits: Vec<String> = qoi.iter().map(|x| format!("{:016x}", x.to_bits())).collect();
        println!("QOI {}", bits.join(" "));
        engine.shutdown_and_join();
        return;
    }

    eprintln!(
        "bench_serve: {n_requests} mixed requests, {clients} clients, {workers} workers, \
         {steps} steps over {t_end} s, hot models [{}, {}]",
        hot[0].canonical(),
        hot[1].canonical()
    );

    // ---- 1. Warm pool: resident engine, 8 concurrent clients ------------
    let engine = Engine::with_clock(
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
        ManualClock::new(),
    );
    let handle = ServeHandle::new(Arc::clone(&engine));
    // Pre-warm both hot models with one compile each (the registry would
    // single-flight the burst anyway; this keeps the timed section pure
    // serving).
    for (w, model) in hot.iter().enumerate() {
        let warmup = handle.submit(RequestClass::WireSizing, *model, params.clone(), 1 + w as u64);
        let _ = qoi_of(terminal_of(&warmup));
    }

    let jobs = workload(n_requests, &hot, &params);
    let start = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(n_requests);
    let mut client_threads = Vec::new();
    for c in 0..clients {
        let handle = handle.clone();
        let mine: Vec<(u64, RequestClass, ModelSpec, JobParams)> = jobs
            .iter()
            .skip(c)
            .step_by(clients)
            .cloned()
            .collect();
        client_threads.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for (seed, class, model, params) in mine {
                let t0 = Instant::now();
                let ticket = handle.submit(class, model, params, seed);
                let qoi = qoi_of(terminal_of(&ticket));
                out.push((seed, qoi, t0.elapsed().as_secs_f64() * 1e3));
            }
            out
        }));
    }
    let mut warm_results: Vec<(u64, Vec<f64>)> = Vec::new();
    for t in client_threads {
        for (seed, qoi, ms) in t.join().expect("client thread") {
            warm_results.push((seed, qoi));
            latencies_ms.push(ms);
        }
    }
    let warm_wall = start.elapsed().as_secs_f64();
    warm_results.sort_by_key(|(seed, _)| *seed);
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = n_requests as f64 / warm_wall;
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);
    engine.shutdown_and_join();
    eprintln!(
        "warm pool:      {warm_wall:.2} s for {n_requests} requests -> {throughput:.1} req/s \
         (p50 {p50:.1} ms, p99 {p99:.1} ms)"
    );

    // ---- 2. Cold baseline: compile-or-reset per request -----------------
    // The pre-serving world the engine replaces: every request is a
    // one-shot CLI invocation — spawn the binary, build + compile the
    // model, solve on a fresh simulator, tear down — exactly the seed's
    // per-figure binary design. Same workload, same determinism (the
    // child prints its qoi bits and they must match the pool's answers
    // exactly); no resident registry, no pool, no scheduler.
    let exe = std::env::current_exe().expect("own binary path");
    let start = Instant::now();
    for (i, (seed, _class, _model, _params)) in jobs.iter().enumerate() {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--one-shot")
            .arg("--index")
            .arg(i.to_string())
            .arg("--steps")
            .arg(steps.to_string())
            .arg("--t-end")
            .arg(t_end.to_string());
        if quick {
            cmd.arg("--quick");
        }
        if let Some(model) = arg_value("model") {
            cmd.arg("--model").arg(model);
        }
        let output = cmd.output().expect("spawn one-shot child");
        assert!(output.status.success(), "one-shot child failed for seed {seed}");
        let stdout = String::from_utf8_lossy(&output.stdout);
        let bits_line = stdout
            .lines()
            .find_map(|l| l.strip_prefix("QOI "))
            .expect("one-shot child printed its qoi bits");
        let cold_qoi: Vec<f64> = bits_line
            .split_whitespace()
            .map(|hex| f64::from_bits(u64::from_str_radix(hex, 16).expect("hex qoi bits")))
            .collect();
        let warm_qoi = &warm_results
            .iter()
            .find(|(s, _)| s == seed)
            .expect("warm result for every seed")
            .1;
        assert_eq!(
            &cold_qoi, warm_qoi,
            "warm pool must answer bit-identically to a one-shot solve"
        );
    }
    let cold_wall = start.elapsed().as_secs_f64();
    let speedup = cold_wall / warm_wall;
    eprintln!(
        "cold baseline:  {cold_wall:.2} s (one-shot process per request) -> \
         warm pool {speedup:.1}x faster"
    );

    // ---- 3. Determinism across worker counts ----------------------------
    let mut fingerprints: Vec<Vec<(u64, Vec<u64>)>> = Vec::new();
    for &w in &[1usize, 4, 8] {
        let engine = Engine::with_clock(
            ServeConfig {
                workers: w,
                ..ServeConfig::default()
            },
            ManualClock::new(),
        );
        let handle = ServeHandle::new(Arc::clone(&engine));
        let tickets: Vec<_> = jobs
            .iter()
            .take(12.min(n_requests))
            .map(|(seed, class, model, params)| {
                (*seed, handle.submit(*class, *model, params.clone(), *seed))
            })
            .collect();
        let mut results: Vec<(u64, Vec<u64>)> = tickets
            .iter()
            .map(|(seed, t)| {
                (
                    *seed,
                    qoi_of(terminal_of(t)).iter().map(|x| x.to_bits()).collect(),
                )
            })
            .collect();
        results.sort_by_key(|(seed, _)| *seed);
        engine.shutdown_and_join();
        fingerprints.push(results);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "responses must be bit-identical for 1 vs 4 workers"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "responses must be bit-identical for 1 vs 8 workers"
    );
    eprintln!("determinism:    1/4/8-worker responses bit-identical");

    // ---- 4. Admission control under pressure ----------------------------
    // A starved class (1-iteration budget) must fail structurally while
    // well-behaved concurrent traffic completes; a burst past the queue
    // bound must shed structurally.
    let engine = Engine::with_clock(
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            budgets: ClassBudgets {
                fusing: 1,
                ..ClassBudgets::default()
            },
            ..ServeConfig::default()
        },
        ManualClock::new(),
    );
    let handle = ServeHandle::new(Arc::clone(&engine));
    let over_budget = handle.submit(RequestClass::Fusing, spec, params.clone(), 2);
    let burst: Vec<_> = (0..10)
        .map(|i| {
            handle.submit(
                RequestClass::WireSizing,
                spec,
                params.clone(),
                100 + i,
            )
        })
        .collect();
    let mut budget_errors = 0u64;
    let mut shed_count = 0u64;
    let mut completed = 0u64;
    match terminal_of(&over_budget) {
        Response::Error {
            kind: ErrorKind::BudgetExhausted,
            ..
        } => budget_errors += 1,
        other => panic!("over-budget request must fail with budget-exhausted, got {other:?}"),
    }
    for ticket in &burst {
        match terminal_of(ticket) {
            Response::Result { .. } => completed += 1,
            Response::Shed { .. } => shed_count += 1,
            other => panic!("unexpected terminal frame {other:?}"),
        }
    }
    engine.shutdown_and_join();
    assert!(budget_errors == 1, "exactly one budget rejection expected");
    assert!(
        completed >= 1,
        "well-behaved requests must complete alongside the shed burst"
    );
    assert!(shed_count >= 1, "a 10-deep burst past a 2-slot queue must shed");
    eprintln!(
        "admission:      {budget_errors} budget rejection, {shed_count} shed, \
         {completed} completed under pressure"
    );

    // ---- 5. Gates -------------------------------------------------------
    assert!(
        speedup >= 2.0,
        "warm pool must be >= 2x faster than compile-per-request at \
         {clients} concurrent clients, got {speedup:.2}x"
    );

    // ---- 6. Report ------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"model\": \"{}\",\n  \
         \"hot_models\": [\"{}\", \"{}\"],\n  \
         \"class_mix\": \"10 wire_sizing : 1 fusing : 1 campaign\",\n  \"profile\": \"{}\",\n  \
         \"requests\": {n_requests},\n  \"clients\": {clients},\n  \"workers\": {workers},\n  \
         \"steps\": {steps},\n  \"t_end_s\": {t_end},\n  \
         \"warm\": {{\"wall_s\": {warm_wall:.3}, \"throughput_rps\": {throughput:.2}, \
         \"p50_ms\": {p50:.2}, \"p99_ms\": {p99:.2}}},\n  \
         \"cold\": {{\"wall_s\": {cold_wall:.3}, \"mode\": \"one-shot-process-per-request\"}},\n  \
         \"speedup_warm_over_cold\": {speedup:.2},\n  \
         \"admission\": {{\"budget_rejections\": {budget_errors}, \"shed\": {shed_count}, \
         \"completed_under_pressure\": {completed}}},\n  \
         \"deterministic_across_workers\": true,\n  \
         \"gates\": {{\"speedup_min\": 2.0, \"workers_checked\": [1, 4, 8]}}\n}}\n",
        spec.canonical(),
        hot[0].canonical(),
        hot[1].canonical(),
        if quick { "quick" } else { "full" },
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_serve.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!("warm pool {speedup:.1}x over cold baseline -> {out}");
}
