//! **bench_surrogate** — correctness + efficiency benchmark of the
//! error-controlled surrogate fast path on the paper package.
//!
//! The scenario: wire elongations `δⱼ ~ N(0.17, 0.048)`, the paper
//! transient at a benchmark-sized horizon, QoI `Y = max_t maxⱼ T_bw,j`.
//! A seeded training campaign fits a per-QoI PCE surrogate through the
//! batched ensemble engine; the same Monte Carlo population that
//! calibrates the failure threshold (`b = k`-th largest response, so the
//! reference probability is `k/N_mc` by construction) doubles as the
//! served-accuracy oracle. Subset simulation then runs twice at the
//! calibrated threshold over identical seeds — once on full solves only,
//! once screened through [`SurrogateWithFallback`] with a near-threshold
//! guard, so full transients are reserved for samples the error model
//! cannot certify or that land within one tolerance of the threshold.
//!
//! Gates (full profile):
//! * speed: one surrogate evaluation is ≥ 1000× faster than one full
//!   transient solve,
//! * accuracy: `max |served − full solve|` over the oracle population is
//!   within the serving tolerance,
//! * efficiency: the screened subset run reaches the reference probability
//!   (≤ 3 combined CoVs, CoV within 25 % of the unscreened run) with
//!   ≥ 3× fewer full transient solves,
//! * determinism: the screened estimate and its serving ledger are
//!   bit-identical for 1, 2 and 4 worker threads.
//!
//! Flags: `--quick` (CI smoke: tiny populations, efficiency gates relaxed
//! to determinism + sanity), `--samples-mc M`, `--n-train N`,
//! `--degree D`, `--n-level N`, `--tail-k K`, `--steps S`, `--t-end T`,
//! `--threads T`, `--seed S`, `--mesh-xy`, `--mesh-z`, `--out PATH`.

use etherm_bench::{arg_f64, arg_flag, arg_usize, arg_value};
use etherm_core::{
    run_ensemble, EnsembleOptions, FullSolve, QoiEvaluator, SolverOptions, TransientSolution,
};
use etherm_package::{build_model, paper_elongation_distribution, BuildOptions, PackageGeometry};
use etherm_reliability::{
    train_surrogates, FailureEstimate, FailureEstimator, QoiLimitState, SubsetSimulation,
    SurrogateTrainingPlan, SurrogateWithFallback,
};
use etherm_uq::{draw_samples, Distribution, MonteCarloSampler, SurrogateOptions};
use std::sync::Arc;
use std::time::Instant;

const N_WIRES: usize = 12;

fn json_f64(v: f64) -> String {
    if v.is_nan() {
        "null".into()
    } else if v.is_infinite() {
        if v > 0.0 { "1e308".into() } else { "-1e308".into() }
    } else {
        format!("{v:.6e}")
    }
}

fn estimate_json(method: &str, e: &FailureEstimate, full_solves: usize, wall_s: f64) -> String {
    format!(
        "    {{\"method\": \"{method}\", \"probability\": {}, \"cov\": {}, \
         \"evaluations\": {}, \"full_solves\": {full_solves}, \"levels\": {}, \
         \"wall_s\": {wall_s:.3}}}",
        json_f64(e.probability),
        json_f64(e.cov),
        e.n_evaluations,
        e.levels.len(),
    )
}

/// Campaign QoI: the peak bond-wire temperature over the whole transient.
fn peak(sol: &TransientSolution) -> Vec<f64> {
    let mut m = f64::NEG_INFINITY;
    for j in 0..sol.n_wires() {
        for &t in sol.wire_series(j) {
            m = m.max(t);
        }
    }
    vec![m]
}

fn main() {
    let quick = arg_flag("quick");
    let (d_xy, d_z, d_steps, d_tend, d_mc, d_k, d_train, d_deg, d_level) = if quick {
        (1.3e-3, 0.7e-3, 4, 8.0, 40, 4, 40, 1, 60)
    } else {
        (1.1e-3, 0.6e-3, 5, 10.0, 400, 4, 160, 2, 400)
    };
    let mesh_xy = arg_f64("mesh-xy", d_xy);
    let mesh_z = arg_f64("mesh-z", d_z);
    let steps = arg_usize("steps", d_steps);
    let t_end = arg_f64("t-end", d_tend);
    let n_mc = arg_usize("samples-mc", d_mc);
    let tail_k = arg_usize("tail-k", d_k).max(1);
    let n_train = arg_usize("n-train", d_train);
    let degree = arg_usize("degree", d_deg);
    let n_level = arg_usize("n-level", d_level);
    let threads = arg_usize("threads", 1);
    let seed = arg_usize("seed", 2016) as u64;

    let build = BuildOptions {
        target_spacing_xy: mesh_xy,
        target_spacing_z: mesh_z,
        ..BuildOptions::paper_fig7()
    };
    let built = build_model(&PackageGeometry::paper(), &build).expect("package builds");
    let compiled = Arc::new(built.compile(SolverOptions::fast()).expect("compiles"));
    let dofs = compiled.layout().n_total();
    let delta = paper_elongation_distribution();
    let marginals = || -> Vec<Box<dyn Distribution>> {
        (0..N_WIRES)
            .map(|_| Box::new(delta) as Box<dyn Distribution>)
            .collect()
    };
    let options = |n_threads: usize| EnsembleOptions {
        n_threads,
        ..EnsembleOptions::default()
    };
    let scenario = built.elongation_scenario(t_end, steps, peak);
    eprintln!(
        "bench_surrogate: {dofs} DoFs, {steps} steps over {t_end} s, {threads} thread(s), \
         train {n_train} (degree {degree}), MC {n_mc} (tail k = {tail_k}), subset N = {n_level}"
    );

    // ---- 1. Training: batched DoE -> per-QoI surrogate + error model ----
    let plan = SurrogateTrainingPlan {
        n_train,
        seed: seed.wrapping_add(7),
        surrogate: SurrogateOptions {
            degree,
            ..SurrogateOptions::default()
        },
    };
    let start = Instant::now();
    let trained = train_surrogates(&compiled, &scenario, &marginals(), &plan, &options(threads))
        .expect("surrogate training");
    let wall_train = start.elapsed().as_secs_f64();
    let train_solves = trained.counters.thermal_solves;
    let cv = trained.surrogates[0].cv_error();
    let tolerance = 5.0 * cv;
    assert!(cv > 0.0 && cv.is_finite(), "degenerate cv error {cv}");
    eprintln!(
        "training:       {wall_train:.1} s, {train_solves} thermal solves, cv error {cv:.3e} K \
         -> tolerance {tolerance:.3e} K"
    );

    // ---- 2. MC reference: threshold calibration + serving oracle --------
    let dists: Vec<&dyn Distribution> = (0..N_WIRES).map(|_| &delta as &dyn Distribution).collect();
    let mut generator = MonteCarloSampler::new(seed);
    let inputs = draw_samples(&mut generator, &dists, n_mc);
    let start = Instant::now();
    let reference =
        run_ensemble(&compiled, &scenario, &inputs, &options(threads)).expect("MC reference");
    let wall_mc = start.elapsed().as_secs_f64();
    let oracle: Vec<f64> = reference.outputs.iter().map(|q| q[0]).collect();
    let mut ys = oracle.clone();
    ys.sort_by(|a, b| b.partial_cmp(a).expect("finite responses"));
    assert!(tail_k < ys.len(), "--tail-k must be below --samples-mc");
    // Calibrated threshold: k-th largest response ⇒ the reference sees
    // exactly k failures (Y ≥ b).
    let threshold = ys[tail_k - 1];
    let p_mc = tail_k as f64 / n_mc as f64;
    let cov_mc = ((1.0 - p_mc) / (n_mc as f64 * p_mc)).sqrt();
    let mc_estimate = FailureEstimate {
        probability: p_mc,
        cov: cov_mc,
        n_evaluations: n_mc,
        levels: vec![],
        quarantined: 0,
    };
    eprintln!(
        "mc reference:   {wall_mc:.1} s, threshold {threshold:.3} K, p = {p_mc:.3e} (cov {cov_mc:.2})"
    );

    // ---- 3. Serving accuracy + speed on the oracle population -----------
    let full = FullSolve::new(&compiled, &scenario, N_WIRES, options(threads));
    let mut server =
        SurrogateWithFallback::new(full, trained.surrogates.clone(), marginals(), tolerance)
            .expect("serving tier");
    let start = Instant::now();
    let served_outputs = server.evaluate(&inputs).expect("serving sweep");
    let wall_serve = start.elapsed().as_secs_f64();
    let mut max_abs_error = 0.0f64;
    for (out, truth) in served_outputs.iter().zip(&oracle) {
        max_abs_error = max_abs_error.max((out[0] - truth).abs());
    }
    let served = server.served();
    let fallbacks = server.full_solves();
    let max_served_estimate = server.max_served_error();
    // Raw prediction latency: many evaluations of the fitted chaos at the
    // oracle germ points (cheap enough to time in bulk).
    let germs: Vec<Vec<f64>> = inputs
        .iter()
        .map(|x| x.iter().map(|&v| delta.to_std_normal(v)).collect())
        .collect();
    let reps = 20_000usize.div_ceil(germs.len());
    let start = Instant::now();
    for _ in 0..reps {
        for g in &germs {
            std::hint::black_box(trained.surrogates[0].predict_with_error(g));
        }
    }
    let surrogate_eval_s = start.elapsed().as_secs_f64() / (reps * germs.len()) as f64;
    let full_solve_s = wall_mc / n_mc as f64;
    let speedup = full_solve_s / surrogate_eval_s;
    eprintln!(
        "serving:        {served} served / {fallbacks} full ({wall_serve:.1} s), \
         max |dQoI| {max_abs_error:.3e} K vs tolerance {tolerance:.3e} K"
    );
    eprintln!(
        "speed:          surrogate {surrogate_eval_s:.2e} s/eval vs transient {full_solve_s:.2e} \
         s/solve -> {speedup:.0}x"
    );

    // ---- 4. Subset simulation: full solves vs surrogate-screened --------
    let subset = SubsetSimulation {
        p0: 0.35,
        ..SubsetSimulation::new(n_level, seed.wrapping_add(1))
    };
    let run_full = |n_threads: usize| {
        let full = FullSolve::new(&compiled, &scenario, N_WIRES, options(n_threads));
        let mut state = QoiLimitState::new(full, marginals(), threshold);
        let start = Instant::now();
        let estimate = subset.estimate(&mut state).expect("full subset");
        let solves = state.evaluator().full_solves();
        (estimate, solves, start.elapsed().as_secs_f64())
    };
    // The screened run: guarded serving (full solves reserved for the
    // near-threshold band), fallback points folded back into the chaos
    // every 64 solves.
    let run_screened = |n_threads: usize| {
        let full = FullSolve::new(&compiled, &scenario, N_WIRES, options(n_threads));
        let tier =
            SurrogateWithFallback::new(full, trained.surrogates.clone(), marginals(), tolerance)
                .expect("serving tier")
                .with_near_threshold_guard(threshold, tolerance)
                .with_auto_refine(64);
        let mut state = QoiLimitState::new(tier, marginals(), threshold);
        let start = Instant::now();
        let estimate = subset.estimate(&mut state).expect("screened subset");
        let wall = start.elapsed().as_secs_f64();
        (estimate, state.into_evaluator(), wall)
    };
    let (ss_full, ss_full_solves, wall_ss_full) = run_full(threads);
    eprintln!(
        "subset (full):  {wall_ss_full:.1} s, p = {:.3e} (cov {:.2}), {} full solves",
        ss_full.probability, ss_full.cov, ss_full_solves
    );
    let (ss_scr, screened_tier, wall_ss_scr) = run_screened(threads);
    let scr_solves = screened_tier.full_solves();
    let solve_reduction = ss_full_solves as f64 / scr_solves.max(1) as f64;
    eprintln!(
        "subset (screened): {wall_ss_scr:.1} s, p = {:.3e} (cov {:.2}), {} full solves \
         + {} served, {} refinement pass(es) -> {solve_reduction:.1}x fewer solves",
        ss_scr.probability,
        ss_scr.cov,
        scr_solves,
        screened_tier.served(),
        screened_tier.refinements()
    );

    // Determinism: the screened estimate and its serving ledger across
    // 1/2/4 worker threads.
    let reference_fp = format!(
        "{ss_scr:?} served={} solves={}",
        screened_tier.served(),
        screened_tier.full_solves()
    );
    for other in [2usize, 4] {
        let (e, tier, _) = run_screened(other);
        let fp = format!("{e:?} served={} solves={}", tier.served(), tier.full_solves());
        assert_eq!(
            reference_fp, fp,
            "screened subset must be bit-identical for any n_threads"
        );
    }
    eprintln!("determinism:    2- and 4-thread re-runs bit-identical");

    // ---- 5. Gates -------------------------------------------------------
    let combined = (mc_estimate.std_error().powi(2) + ss_scr.std_error().powi(2)).sqrt();
    let agreement_z = (ss_scr.probability - p_mc).abs() / combined;
    assert!(
        ss_scr.probability > 0.0 && ss_scr.probability < 1.0,
        "degenerate screened estimate"
    );
    assert!(
        max_abs_error <= tolerance,
        "served answer drifted {max_abs_error} K > tolerance {tolerance} K"
    );
    assert!(served > 0, "serving tier answered nothing");
    if !quick {
        assert!(
            speedup >= 1000.0,
            "surrogate must be >= 1000x faster per eval, got {speedup:.0}x"
        );
        assert!(
            agreement_z <= 3.0,
            "screened subset vs MC disagree: {} vs {p_mc} ({agreement_z:.2} combined CoVs)",
            ss_scr.probability
        );
        assert!(
            ss_scr.cov <= 1.25 * ss_full.cov,
            "screened CoV {} vs full {} is not equal-CoV",
            ss_scr.cov,
            ss_full.cov
        );
        assert!(
            solve_reduction >= 3.0,
            "screening must save >= 3x full solves at equal CoV, got {solve_reduction:.2}x"
        );
    }

    // ---- 6. Report ------------------------------------------------------
    let estimates = [
        estimate_json("monte-carlo reference", &mc_estimate, n_mc, wall_mc),
        estimate_json("subset-full-solver", &ss_full, ss_full_solves, wall_ss_full),
        estimate_json("subset-surrogate-screened", &ss_scr, scr_solves, wall_ss_scr),
    ];
    let json = format!(
        "{{\n  \"bench\": \"surrogate\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"dofs\": {dofs},\n  \"steps\": {steps},\n  \"t_end_s\": {t_end},\n  \
         \"threads\": {threads},\n  \"seed\": {seed},\n  \
         \"mesh_xy_m\": {mesh_xy:e},\n  \"mesh_z_m\": {mesh_z:e},\n  \
         \"threshold_k\": {},\n  \"tail_k\": {tail_k},\n  \"tolerance_k\": {},\n  \
         \"training\": {{\"n_train\": {n_train}, \"degree\": {degree}, \
         \"quarantined\": {}, \"thermal_solves\": {train_solves}, \
         \"cv_error_k\": {}, \"wall_s\": {wall_train:.3}}},\n  \
         \"serving\": {{\"n\": {n_mc}, \"served\": {served}, \"full_solves\": {fallbacks}, \
         \"max_served_error_estimate_k\": {}, \"max_abs_error_k\": {}, \
         \"surrogate_eval_s\": {}, \"full_solve_s\": {}, \"speedup\": {}}},\n  \
         \"estimates\": [\n{}\n  ],\n  \
         \"screened\": {{\"served\": {}, \"full_solves\": {scr_solves}, \
         \"refinements\": {}, \"solve_reduction_vs_full_subset\": {}}},\n  \
         \"agreement_combined_cov_multiple\": {},\n  \
         \"deterministic_across_threads\": true\n}}\n",
        json_f64(threshold),
        json_f64(tolerance),
        trained.quarantined,
        json_f64(cv),
        json_f64(max_served_estimate),
        json_f64(max_abs_error),
        json_f64(surrogate_eval_s),
        json_f64(full_solve_s),
        json_f64(speedup),
        estimates.join(",\n"),
        screened_tier.served(),
        screened_tier.refinements(),
        json_f64(solve_reduction),
        json_f64(agreement_z),
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_surrogate.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!(
        "screened subset: {solve_reduction:.1}x fewer full solves, surrogate {speedup:.0}x \
         faster per eval -> {out}"
    );
}
