//! **Fig. 6** — model of the investigated chip and its hexahedral mesh.
//!
//! Prints the package layout (top view) as ASCII, the conforming-mesh
//! statistics, and the material census — the textual equivalent of the
//! paper's 3D renders.

use etherm_bench::mc_build_options;
use etherm_package::builder::{MAT_COPPER, MAT_EPOXY};
use etherm_package::{build_model, PackageGeometry};
use etherm_report::{HeatMap, TextTable};

fn main() {
    let geometry = PackageGeometry::paper();
    let built = build_model(&geometry, &mc_build_options()).expect("package builds");
    let grid = built.model.grid();
    let paint = built.model.paint();

    println!("Fig. 6a: package top view (copper density per x-y column)\n");
    // Render copper occupancy: fraction of z-cells that are copper per column.
    let (cx, cy, cz) = grid.cell_dims();
    let mut occupancy = vec![0.0f64; cx * cy];
    for j in 0..cy {
        for i in 0..cx {
            let mut cu = 0;
            for k in 0..cz {
                if paint.material(grid.cell_index(i, j, k)) == MAT_COPPER {
                    cu += 1;
                }
            }
            occupancy[j * cx + i] = cu as f64 / cz as f64;
        }
    }
    let map = HeatMap::new(cx, cy, occupancy).expect("valid map");
    println!("{}", map.render());

    println!("Fig. 6b: hexahedral mesh statistics\n");
    let mut t = TextTable::new(&["axis", "nodes", "min h [mm]", "max h [mm]"]);
    for (name, ax) in [("x", grid.x()), ("y", grid.y()), ("z", grid.z())] {
        t.add_row_owned(vec![
            name.into(),
            format!("{}", ax.n_nodes()),
            format!("{:.4}", ax.min_spacing() * 1e3),
            format!("{:.4}", ax.max_spacing() * 1e3),
        ]);
    }
    println!("{}", t.render());
    println!(
        "total: {} nodes, {} edges, {} cells",
        grid.n_nodes(),
        grid.n_edges(),
        grid.n_cells()
    );
    println!(
        "materials: {} copper cells ({:.3} mm^3), {} epoxy cells ({:.3} mm^3)",
        paint.material_cells(MAT_COPPER),
        paint.material_volume(grid, MAT_COPPER) * 1e9,
        paint.material_cells(MAT_EPOXY),
        paint.material_volume(grid, MAT_EPOXY) * 1e9,
    );
    println!(
        "wires: {} lumped elements; mean nominal length {:.4} mm",
        built.model.wires().len(),
        built.nominal_lengths.iter().sum::<f64>() / 12.0 * 1e3
    );
    println!(
        "mesh conforms to every pad/chip face: staircase materials are exact for box geometry."
    );
}
