//! **A13** — material-law ablation: first-order copper models vs tabulated
//! literature curves.
//!
//! The paper's conclusion calls for "more sophisticated bonding wire
//! models"; the simplest upgrade is replacing the first-order
//! `σ(T) = σ₀/(1+α ΔT)`, `λ(T) = λ₀(1−α' ΔT)` laws by tabulated σ(T)/λ(T)
//! data (`library::copper_tabulated`). This experiment runs the nominal
//! package transient under both models and reports how much the headline
//! QoI moves — i.e. whether the model-form error matters relative to the
//! geometric uncertainty (σ_MC ≈ a few K).
//!
//! Usage: `cargo run --release -p etherm-bench --bin ablation_materials --
//!         [--steps S]`

use etherm_bench::{arg_usize, mc_build_options};
use etherm_core::{Simulator, SolverOptions};
use etherm_materials::library;
use etherm_package::{build_model, PackageGeometry};
use etherm_report::TextTable;

fn main() {
    let steps = arg_usize("steps", 25);
    println!("A13: copper material-law ablation, nominal transient, {steps} steps to 50 s\n");

    let geometry = PackageGeometry::paper();
    let mut rows = TextTable::new(&["copper model", "E_hot(50 s) [K]", "Δ vs first-order [K]"]);
    let mut reference = None;
    for tabulated in [false, true] {
        let mut built = build_model(&geometry, &mc_build_options()).expect("package builds");
        if tabulated {
            // Swap every copper wire to the tabulated material; the field
            // copper (pads/chip) stays identical so the comparison isolates
            // the wire model, which dominates the QoI.
            let n_wires = built.model.wires().len();
            for j in 0..n_wires {
                let length = built.model.wires()[j].wire.length();
                let wire = etherm_bondwire::BondWire::new(
                    format!("w{j}-tab"),
                    length,
                    25.4e-6,
                    library::copper_tabulated(),
                )
                .expect("wire");
                built.model.replace_wire(j, wire).expect("replace wire");
            }
        }
        let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        let hot = sol
            .hottest_wire()
            .map(|(_, t)| t)
            .expect("wires exist");
        let delta = reference.map(|r: f64| hot - r).unwrap_or(0.0);
        if reference.is_none() {
            reference = Some(hot);
        }
        rows.add_row_owned(vec![
            if tabulated {
                "tabulated σ(T)/λ(T) (literature)".into()
            } else {
                "first-order laws (α = 3.93e-3)".into()
            },
            format!("{hot:.2}"),
            format!("{delta:+.3}"),
        ]);
    }
    println!("{}", rows.render());
    println!("Finding: the tabulated curves move the headline QoI by only ~0.1 K — an order");
    println!("of magnitude below σ_MC from the length uncertainty. The paper's first-order");
    println!("copper laws are adequate below T_crit; the geometric tolerance dominates.");
}
