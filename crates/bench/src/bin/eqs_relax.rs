//! **A12** — electroquasistatic charge relaxation (paper §II-A).
//!
//! The paper solves the *stationary* current problem and remarks that "a
//! generalization to electroquasistatics is straightforward". This
//! experiment quantifies why the stationary assumption is valid for the
//! package: the mold compound's charge-relaxation time `τ = ε/σ` is tens of
//! microseconds, six orders of magnitude below the 50 s thermal transient.
//! A two-layer copper/epoxy bar is stepped through its Maxwell–Wagner
//! relaxation and compared with the analytic RC solution.
//!
//! Usage: `cargo run --release -p etherm-bench --bin eqs_relax`

use etherm_fit::eqs::{charge_relaxation_time, EqsSolver, EPSILON_0};
use etherm_fit::DofMap;
use etherm_grid::{Axis, Grid3};
use etherm_report::TextTable;

fn main() {
    println!("A12: electroquasistatic relaxation times (paper §II-A)\n");

    // Table I materials with standard relative permittivities.
    let mut t = TextTable::new(&["material", "σ [S/m]", "ε_r", "τ = ε/σ [s]"]);
    for (name, sigma, eps_r) in [
        ("epoxy resin (mold)", 1e-6, 4.0),
        ("copper", 5.80e7, 1.0),
    ] {
        let tau = charge_relaxation_time(eps_r * EPSILON_0, sigma);
        t.add_row_owned(vec![
            name.into(),
            format!("{sigma:.2e}"),
            format!("{eps_r:.1}"),
            format!("{tau:.3e}"),
        ]);
    }
    println!("{}", t.render());
    println!("thermal transient timescale: 5e1 s  →  τ_mold/τ_thermal ≈ 7e-7");
    println!("⇒ displacement currents decay ~10⁶× faster than the heat front moves;");
    println!("  the paper's stationary-current model is justified.\n");

    // Maxwell–Wagner demo: epoxy/epoxy bar with contrasting σ, ε.
    println!("two-layer Maxwell–Wagner relaxation (FIT implicit Euler vs analytic):");
    let n = 16;
    let grid = Grid3::new(
        Axis::uniform(0.0, 1.0, n).unwrap(),
        Axis::uniform(0.0, 1.0, 1).unwrap(),
        Axis::uniform(0.0, 1.0, 1).unwrap(),
    );
    let (s1, s2, e1, e2) = (1.0, 4.0, 3.0, 1.0);
    let sigma: Vec<f64> = (0..grid.n_cells())
        .map(|c| if grid.cell_center(c).0 < 0.5 { s1 } else { s2 })
        .collect();
    let eps: Vec<f64> = (0..grid.n_cells())
        .map(|c| if grid.cell_center(c).0 < 0.5 { e1 } else { e2 })
        .collect();
    let solver = EqsSolver::new(&grid, &sigma, &eps);
    let v = 1.0;
    let (nx, _, _) = grid.node_dims();
    let fixed: Vec<(usize, f64)> = (0..grid.n_nodes())
        .filter_map(|node| match grid.node_coords_of(node).0 {
            0 => Some((node, 0.0)),
            i if i == nx - 1 => Some((node, v)),
            _ => None,
        })
        .collect();
    let map = DofMap::new(grid.n_nodes(), &fixed);

    let (g1, g2) = (s1 / 0.5, s2 / 0.5);
    let (c1, c2) = (e1 / 0.5, e2 / 0.5);
    let u0 = v * c2 / (c1 + c2);
    let u_inf = v * g2 / (g1 + g2);
    let tau = (c1 + c2) / (g1 + g2);
    let interface = grid.nearest_node(0.5, 0.0, 0.0);

    let dt = tau / 200.0;
    let mut phi = vec![0.0; grid.n_nodes()];
    let mut time = 0.0;
    let mut rows = TextTable::new(&["t/τ", "FIT u(t)", "analytic", "error"]);
    for step in 1..=600 {
        let (next, _) = solver.step(&map, &phi, dt).expect("EQS step");
        phi = next;
        time += dt;
        if step % 100 == 0 {
            let exact = u_inf + (u0 - u_inf) * (-time / tau).exp();
            rows.add_row_owned(vec![
                format!("{:.2}", time / tau),
                format!("{:.5}", phi[interface]),
                format!("{exact:.5}"),
                format!("{:.2e}", (phi[interface] - exact).abs()),
            ]);
        }
    }
    println!("{}", rows.render());
    println!("u0 (capacitive divider) = {u0:.4}, u∞ (resistive divider) = {u_inf:.4}, τ = {tau:.4}");
    println!("Expectation: the FIT interface potential tracks the analytic exponential to");
    println!("O(Δt); the stationary solver reproduces u∞ exactly.");
}
