//! **Table I** — material properties at `T = 300 K`.
//!
//! Prints the paper's table from the material library (the library is the
//! single source of truth used by every simulation) plus the
//! temperature-dependence metadata the solver relies on.

use etherm_materials::{library, T_REFERENCE};
use etherm_report::TextTable;

fn main() {
    let mut table = TextTable::new(&["Region", "Material", "lambda [W/K/m]", "sigma [S/m]"]);
    let epoxy = library::epoxy_resin();
    let copper = library::copper();
    for (region, material) in [
        ("Compound", &epoxy),
        ("Contact pad", &copper),
        ("Chip", &copper),
        ("Bonding wire", &copper),
    ] {
        table.add_row_owned(vec![
            region.into(),
            material.name().into(),
            format!("{:.3}", material.lambda(T_REFERENCE)),
            format!("{:.3e}", material.sigma(T_REFERENCE)),
        ]);
    }
    println!("Table I: material properties @ T = 300 K");
    println!("{}", table.render());

    println!("temperature dependence used by the solver:");
    let mut dep = TextTable::new(&["Material", "nonlinear", "sigma(400K)/sigma(300K)", "rho_c [J/K/m^3]"]);
    for m in [&epoxy, &copper] {
        dep.add_row_owned(vec![
            m.name().into(),
            format!("{}", m.is_nonlinear()),
            format!("{:.4}", m.sigma(400.0) / m.sigma(300.0)),
            format!("{:.3e}", m.rho_c()),
        ]);
    }
    println!("{}", dep.render());
    println!("paper values: epoxy lambda 0.87, sigma 1e-6; copper lambda 398, sigma 5.80e7.");
}
