//! **A3** — boundary-condition ablation: adiabatic / convection-only /
//! convection + radiation.
//!
//! The paper's §V-D credits convection and radiation for the stationary
//! limit ("Thanks to convection and radiation at the chip's boundaries, a
//! stationary situation is observed after t ≈ 50 s"). This ablation shows
//! the transient under each boundary variant.

use etherm_bench::{arg_usize, build_paper_package};
use etherm_core::{Simulator, SolverOptions};
use etherm_fit::boundary::ThermalBoundary;
use etherm_grid::Face;
use etherm_package::builder::PAPER_FIG7_AREA_SCALE;
use etherm_report::TextTable;

fn main() {
    let steps = arg_usize("steps", 25);
    let scale = PAPER_FIG7_AREA_SCALE;
    let variants: Vec<(&str, ThermalBoundary)> = vec![
        ("adiabatic", ThermalBoundary::adiabatic()),
        ("convection only", {
            let mut b = ThermalBoundary::convective(25.0, 300.0);
            b.area_scale = scale;
            b
        }),
        ("convection + radiation (paper)", {
            let mut b = ThermalBoundary::paper_default();
            b.area_scale = scale;
            b
        }),
        ("top face only", {
            let mut b = ThermalBoundary::paper_default();
            b.faces = vec![Face::ZMax];
            b.area_scale = scale * 6.0_f64.min(1.0 / scale);
            b
        }),
    ];

    println!("A3: thermal boundary-condition ablation (E_hot over time)\n");
    let mut t = TextTable::new(&["boundary", "E(10s)", "E(30s)", "E(50s)", "dE/dt at 50s [K/s]"]);
    for (name, boundary) in variants {
        let mut built = build_paper_package();
        built.model.set_thermal_boundary(boundary);
        let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        let series = sol.max_wire_series();
        let i10 = steps * 10 / 50;
        let i30 = steps * 30 / 50;
        let slope = (series[steps] - series[steps - 1]) / (50.0 / steps as f64);
        t.add_row_owned(vec![
            name.into(),
            format!("{:.1}", series[i10]),
            format!("{:.1}", series[i30]),
            format!("{:.1}", series[steps]),
            format!("{slope:.2}"),
        ]);
        eprintln!("  {name} done");
    }
    println!("{}", t.render());
    println!("adiabatic: temperature keeps climbing (no stationary state, positive dE/dt);");
    println!("with convection(+radiation) the system settles — the paper's §V-D observation.");
    println!("radiation contributes a visible share at elevated temperatures (T^4 growth).");
}
