//! **bench_scaling** — mesh-refinement scaling of IC(1)-PCG vs AMG-PCG.
//!
//! Sweeps the paper 28-pad/12-wire package over a ladder of FIT mesh
//! refinements and runs the implicit-Euler transient once per
//! preconditioner (both under the default lazily-refreshed cache). The
//! point of the sweep: incomplete-Cholesky CG iteration counts grow
//! super-linearly as the mesh is refined, while the smoothed-aggregation
//! AMG V-cycle keeps them near-constant — so AMG takes over past the paper
//! resolution. Per mesh the final temperature fields of the two runs are
//! compared (they must agree within solver tolerance; the preconditioner
//! never changes the physics).
//!
//! Emits `BENCH_scaling.json` with per-mesh run records in the same schema
//! as `BENCH_transient.json` plus the headline scaling metrics
//! (`finest_amg_speedup_vs_ic`, `iteration_growth_ic`,
//! `iteration_growth_amg`).
//!
//! Flags:
//! - `--quick`: two coarse meshes + 3 steps for CI smoke runs
//! - `--steps N`: transient steps per run (default 10; dt stays the paper's
//!   1 s)
//! - `--fill K` / `--droptol T`: knobs of the IC reference configuration
//! - `--threads N`: `SolverOptions::n_threads` for both configurations
//! - `--out PATH`: output path (default `BENCH_scaling.json`)

use etherm_bench::{arg_f64, arg_flag, arg_usize, arg_value, timed_transient_run, RunRecord};
use etherm_core::{PrecondKind, Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, PackageGeometry};

struct MeshResult {
    label: &'static str,
    mesh_xy: f64,
    mesh_z: f64,
    dofs: usize,
    ic: RunRecord,
    amg: RunRecord,
    max_diff_k: f64,
}

fn main() {
    let quick = arg_flag("quick");
    // Refinement ladder: (target xy spacing, target z spacing, label). L2 is
    // the paper/BENCH_transient mesh; L3 roughly doubles the resolution per
    // axis, which is where IC's iteration growth starts to dominate.
    let meshes: &[(f64, f64, &'static str)] = if quick {
        &[(0.9e-3, 0.5e-3, "Q0"), (0.6e-3, 0.3e-3, "Q1")]
    } else {
        &[
            (0.9e-3, 0.5e-3, "L0"),
            (0.6e-3, 0.3e-3, "L1"),
            (0.42e-3, 0.22e-3, "L2 (paper)"),
            (0.21e-3, 0.11e-3, "L3"),
            (0.15e-3, 0.08e-3, "L4 (finest)"),
        ]
    };
    let steps = arg_usize("steps", if quick { 3 } else { 10 });
    // dt stays the paper's 1 s regardless of the step count, so every mesh
    // solves the same physics per step.
    let t_end = arg_f64("t-end", steps as f64);
    let threads = arg_usize("threads", 1);

    let ic_options = SolverOptions {
        preconditioner: PrecondKind::Ic(arg_usize("fill", 1)),
        precond_droptol: arg_f64("droptol", SolverOptions::default().precond_droptol),
        n_threads: threads,
        ..SolverOptions::default()
    };
    let amg_options = SolverOptions {
        preconditioner: PrecondKind::amg(),
        n_threads: threads,
        ..SolverOptions::default()
    };

    let geometry = PackageGeometry::paper();
    let mut results: Vec<MeshResult> = Vec::new();
    for &(mesh_xy, mesh_z, label) in meshes {
        let opts = BuildOptions {
            target_spacing_xy: mesh_xy,
            target_spacing_z: mesh_z,
            ..BuildOptions::paper_fig7()
        };
        let built = build_model(&geometry, &opts).expect("package builds");
        let probe = Simulator::new(&built.model, ic_options.clone()).expect("simulator");
        let dofs = probe.layout().n_total();
        drop(probe);
        eprintln!("== {label}: {dofs} DoFs ({steps} steps over {t_end} s) ==");

        let (ic, sol_ic) = timed_transient_run(
            &built,
            ic_options.clone(),
            format!("{label} ic"),
            t_end,
            steps,
        );
        eprintln!(
            "  ic:  {:.3} s | cg {} ({:.1}/solve) | rebuilds {}",
            ic.wall_s,
            ic.cg_iterations,
            ic.iters_per_solve(),
            ic.precond_rebuilds
        );
        let (amg, sol_amg) = timed_transient_run(
            &built,
            amg_options.clone(),
            format!("{label} amg"),
            t_end,
            steps,
        );
        eprintln!(
            "  amg: {:.3} s | cg {} ({:.1}/solve) | rebuilds {} | coarse {}",
            amg.wall_s,
            amg.cg_iterations,
            amg.iters_per_solve(),
            amg.precond_rebuilds,
            amg.peak_coarse_dim
        );

        // The preconditioner must not change the physics.
        let (_, t_ic) = &sol_ic.snapshots[sol_ic.snapshots.len() - 1];
        let (_, t_amg) = &sol_amg.snapshots[sol_amg.snapshots.len() - 1];
        let max_diff_k = t_ic
            .iter()
            .zip(t_amg)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff_k < 1e-3,
            "{label}: IC and AMG temperatures diverged by {max_diff_k} K"
        );
        eprintln!(
            "  speedup {:.2}x | max |ΔT| {max_diff_k:.2e} K",
            ic.wall_s / amg.wall_s
        );
        results.push(MeshResult {
            label,
            mesh_xy,
            mesh_z,
            dofs,
            ic,
            amg,
            max_diff_k,
        });
    }

    let first = results.first().expect("at least one mesh");
    let last = results.last().expect("at least one mesh");
    let finest_speedup = last.ic.wall_s / last.amg.wall_s;
    let growth_ic = last.ic.iters_per_solve() / first.ic.iters_per_solve().max(1e-30);
    let growth_amg = last.amg.iters_per_solve() / first.amg.iters_per_solve().max(1e-30);

    let mesh_blocks: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"label\": \"{}\", \"mesh_xy_m\": {:e}, \"mesh_z_m\": {:e}, \
                 \"dofs\": {}, \"max_temperature_diff_k\": {:.3e}, \
                 \"amg_speedup_vs_ic\": {:.3}, \"runs\": [\n{},\n{}\n    ]}}",
                m.label,
                m.mesh_xy,
                m.mesh_z,
                m.dofs,
                m.max_diff_k,
                m.ic.wall_s / m.amg.wall_s,
                m.ic.to_json("      "),
                m.amg.to_json("      "),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"package\": \"paper 28-pad / 12-wire\",\n  \
         \"steps\": {steps},\n  \"t_end_s\": {t_end},\n  \"meshes\": [\n{}\n  ],\n  \
         \"finest_amg_speedup_vs_ic\": {finest_speedup:.3},\n  \
         \"iteration_growth_ic\": {growth_ic:.3},\n  \
         \"iteration_growth_amg\": {growth_amg:.3}\n}}\n",
        mesh_blocks.join(",\n"),
    );
    let out = arg_value("out").unwrap_or_else(|| "BENCH_scaling.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!(
        "finest mesh ({} DoFs): AMG {finest_speedup:.2}x vs IC | iters/solve growth \
         ic {growth_ic:.2}x amg {growth_amg:.2}x -> {out}",
        last.dofs
    );
}
