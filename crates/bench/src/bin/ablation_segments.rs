//! **A1** — single lumped element vs multi-segment wires.
//!
//! The paper (§III-B) notes that a wire can be modeled "by a number of
//! concatenated lumped elements resulting in a piecewise linear temperature
//! distribution". This ablation compares 1/2/4/8 segments per wire on the
//! nominal package: reported endpoint temperatures `T_bw = XᵀT` (Eq. 5)
//! must be nearly unchanged, while the wire's *interior* hot spot only
//! becomes visible with internal nodes.

use etherm_bench::arg_usize;
use etherm_core::{Simulator, SolverOptions};
use etherm_package::{build_model, BuildOptions, PackageGeometry};
use etherm_report::TextTable;

fn main() {
    let steps = arg_usize("steps", 25);
    let geometry = PackageGeometry::paper();

    println!("A1: lumped-element segmentation of the bonding wires\n");
    let mut t = TextTable::new(&[
        "segments",
        "extra DoFs",
        "E_hot endpoint [K]",
        "wire max (incl. interior) [K]",
        "interior excess [K]",
    ]);
    for segments in [1usize, 2, 4, 8] {
        let opts = BuildOptions {
            wire_segments: segments,
            ..BuildOptions::paper_fig7()
        };
        let mut opts = opts;
        opts.target_spacing_xy = 0.42e-3;
        opts.target_spacing_z = 0.22e-3;
        let built = build_model(&geometry, &opts).expect("build");
        let sim = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol = sim.run_transient(50.0, steps, &[]).expect("transient");
        let endpoint = sol.max_wire_series()[steps];

        // Interior hot spot: inspect the final snapshot through the layout.
        let sim2 = Simulator::new(&built.model, SolverOptions::fast()).expect("simulator");
        let sol2 = sim2.run_transient(50.0, steps, &[50.0]).expect("transient");
        let (_, state) = &sol2.snapshots[0];
        let mut wire_max = f64::NEG_INFINITY;
        for j in 0..12 {
            wire_max = wire_max.max(sim2.layout().topology(j).max_temperature(state));
        }
        let extra = (segments - 1) * 12;
        t.add_row_owned(vec![
            format!("{segments}"),
            format!("{extra}"),
            format!("{endpoint:.2}"),
            format!("{wire_max:.2}"),
            format!("{:.2}", wire_max - endpoint),
        ]);
        eprintln!("  {segments} segment(s) done");
    }
    println!("{}", t.render());
    println!("expected: the endpoint QoI (the paper's Eq. 5) is insensitive to segmentation,");
    println!("while internal nodes expose the wire's mid-span excess temperature that the");
    println!("paper's two-terminal element cannot represent.");
}
